"""Campaign service smoke: dedup, byte-identity, and kill+resume.

Exercises ``m2hew serve`` the way CI does, as a real subprocess over
real HTTP (stdlib ``urllib`` only):

1. run a campaign directly with ``m2hew batch`` as the byte reference,
   and check it with ``m2hew verify-archive --json``;
2. start the service, submit the same campaign, wait for it to finish,
   and assert every served archive file is byte-identical to the
   direct run;
3. resubmit the identical campaign and assert it is answered from the
   store (``cache_hit`` true, no new job);
4. submit a longer campaign, SIGKILL the server after the first
   progress event, restart it on the same data directory, and assert
   the requeued job completes with trials restored from its checkpoint
   journal — and that the archive still byte-matches a direct run.

Run:  python examples/service_smoke.py
"""

from __future__ import annotations

import json
import os
import queue
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

SCENARIO = "single_common_channel"
PROTOCOL = "algorithm3"
MAX_SLOTS = 50_000

#: Campaign used for the dedup/byte-identity legs: small and quick.
QUICK_TRIALS = 3
#: Campaign used for the kill+resume leg: long enough that the server
#: cannot finish it before we kill it after the first progress event.
LONG_TRIALS = 16

STARTUP_TIMEOUT = 30.0
JOB_TIMEOUT = 180.0


def cli(*args: str) -> List[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def run_direct_batch(output: Path, trials: int) -> None:
    subprocess.run(
        cli(
            "batch",
            SCENARIO,
            "--protocols",
            PROTOCOL,
            "--trials",
            str(trials),
            "--max-slots",
            str(MAX_SLOTS),
            "--output",
            str(output),
        ),
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def verify_direct_archive(archive: Path) -> None:
    proc = subprocess.run(
        cli("verify-archive", str(archive), "--json"),
        check=True,
        capture_output=True,
        text=True,
    )
    report = json.loads(proc.stdout)
    assert report["ok"] is True, f"direct archive failed verification: {report}"
    assert report["issues"] == [], report


class Server:
    """One ``m2hew serve`` subprocess with stdout-based port discovery."""

    def __init__(self, data_dir: Path) -> None:
        self.data_dir = data_dir
        self.proc: Optional["subprocess.Popen[str]"] = None
        self.base_url = ""
        self._lines: "queue.Queue[str]" = queue.Queue()

    def start(self) -> None:
        self.proc = subprocess.Popen(
            cli(
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--data-dir",
                str(self.data_dir),
            ),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        thread = threading.Thread(target=self._pump, daemon=True)
        thread.start()
        deadline = time.monotonic() + STARTUP_TIMEOUT
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError("server exited during startup")
            try:
                line = self._lines.get(timeout=0.2)
            except queue.Empty:
                continue
            marker = "listening on "
            if marker in line:
                self.base_url = line.split(marker, 1)[1].split(" ", 1)[0]
                return
        raise RuntimeError("server never announced its listening address")

    def _pump(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        for line in self.proc.stdout:
            self._lines.put(line)

    def kill(self) -> None:
        """SIGKILL: the crash the resume leg is about."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


def http_json(
    method: str, url: str, payload: Optional[Dict[str, Any]] = None
) -> Tuple[int, Dict[str, Any]]:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def http_bytes(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=30) as response:
        body: bytes = response.read()
    return body


def campaign_payload(trials: int) -> Dict[str, Any]:
    return {
        "scenario": SCENARIO,
        "protocols": [PROTOCOL],
        "trials": trials,
        "max_slots": MAX_SLOTS,
        "client": "smoke",
    }


def wait_for_state(base_url: str, job_id: str, wanted: str) -> Dict[str, Any]:
    deadline = time.monotonic() + JOB_TIMEOUT
    while time.monotonic() < deadline:
        status, body = http_json("GET", f"{base_url}/campaigns/{job_id}")
        assert status == 200, body
        job = body["job"]
        if job["state"] == wanted:
            return job
        if job["state"] in ("failed", "cancelled"):
            raise AssertionError(f"job {job_id} ended {job['state']}: {job}")
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never reached {wanted!r}")


def wait_for_progress(base_url: str, job_id: str) -> None:
    """Block until the job has journaled at least one trial."""
    deadline = time.monotonic() + JOB_TIMEOUT
    while time.monotonic() < deadline:
        status, body = http_json(
            "GET", f"{base_url}/campaigns/{job_id}?since=0"
        )
        assert status == 200, body
        for event in body["events"]:
            if event["kind"] == "progress":
                return
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} produced no progress events")


def assert_served_matches_direct(
    base_url: str, job_id: str, direct: Path
) -> None:
    status, result = http_json("GET", f"{base_url}/campaigns/{job_id}/result")
    assert status == 200, result
    assert result["verification"]["ok"] is True, result
    served_names = sorted(result["files"])
    direct_names = sorted(p.name for p in direct.iterdir())
    assert served_names == direct_names, (served_names, direct_names)
    for name in served_names:
        served = http_bytes(f"{base_url}/campaigns/{job_id}/files/{name}")
        expected = (direct / name).read_bytes()
        assert served == expected, f"{name}: served bytes differ from direct run"
    print(f"  byte-identical to direct run: {', '.join(served_names)}")


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="m2hew-service-smoke-"))
    server = Server(work / "data")
    restarted: Optional[Server] = None
    try:
        print("== direct reference run ==")
        direct_quick = work / "direct_quick"
        run_direct_batch(direct_quick, QUICK_TRIALS)
        verify_direct_archive(direct_quick)
        print(f"  archived + verified: {direct_quick}")

        print("== service: submit, complete, byte-compare ==")
        server.start()
        print(f"  serving at {server.base_url}")
        status, health = http_json("GET", f"{server.base_url}/health")
        assert status == 200 and health["status"] == "ok", health

        status, first = http_json(
            "POST", f"{server.base_url}/campaigns", campaign_payload(QUICK_TRIALS)
        )
        assert status == 202, first
        assert first["created"] is True and first["cache_hit"] is False, first
        job_id = first["job"]["job_id"]
        done = wait_for_state(server.base_url, job_id, "done")
        assert done["cached"] is False, done
        assert_served_matches_direct(server.base_url, job_id, direct_quick)

        print("== service: identical resubmission is a cache hit ==")
        status, again = http_json(
            "POST", f"{server.base_url}/campaigns", campaign_payload(QUICK_TRIALS)
        )
        assert status == 200, again
        assert again["cache_hit"] is True and again["created"] is False, again
        assert again["job"]["job_id"] == job_id, again
        print(f"  {job_id} served from store, no recompute")

        print("== service: SIGKILL mid-campaign, restart, resume ==")
        status, long_submit = http_json(
            "POST", f"{server.base_url}/campaigns", campaign_payload(LONG_TRIALS)
        )
        assert status == 202, long_submit
        long_id = long_submit["job"]["job_id"]
        wait_for_progress(server.base_url, long_id)
        server.kill()
        print("  server killed after first journaled trial")

        restarted = Server(work / "data")
        restarted.start()
        print(f"  restarted at {restarted.base_url}")
        resumed = wait_for_state(restarted.base_url, long_id, "done")
        assert resumed["restored"] > 0, (
            f"expected journal-restored trials, got {resumed}"
        )
        print(f"  completed with {resumed['restored']} trial(s) restored")

        direct_long = work / "direct_long"
        run_direct_batch(direct_long, LONG_TRIALS)
        assert_served_matches_direct(restarted.base_url, long_id, direct_long)

        print("\nOK: dedup, byte-identity, and kill+resume all hold.")
    finally:
        server.stop()
        if restarted is not None:
            restarted.stop()
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
