"""Asynchronous discovery with drifting clocks (Algorithm 4, §IV).

No slot synchronization, no common start time, clocks that speed up and
slow down within the paper's ±1/7 drift bound. This example:

1. runs Algorithm 4 over several drift levels and clock models;
2. verifies Lemma 4 (frame overlap ≤ 3) and Lemma 7 (aligned pairs)
   on the recorded execution trace;
3. compares completion against the Theorem 9 frame budget and the
   Theorem 10 real-time bound.

Run:  python examples/async_clock_drift.py
"""

from __future__ import annotations

import numpy as np

from repro import net, sim
from repro.analysis import alignment
from repro.analysis.tables import format_table
from repro.core import bounds
from repro.sim.trace import ExecutionTrace


def build_network():
    rng = np.random.default_rng(11)
    topo = net.topology.random_geometric(
        12, radius=0.45, rng=rng, require_connected=True
    )
    assignment = net.channels.common_channel_plus_random(
        topo.num_nodes, universal_size=6, set_size=3, rng=rng
    )
    return net.build_network(topo, assignment)


def main() -> None:
    network = build_network()
    delta_est = max(2, network.max_degree)
    epsilon = 0.2
    frame_length = 1.0

    frame_budget = bounds.theorem9_frame_budget(
        network.max_channel_set_size,
        delta_est,
        network.min_span_ratio,
        network.num_nodes,
        epsilon,
    )

    rows = []
    for drift, model in (
        (0.0, "perfect"),
        (1e-4, "constant"),   # realistic crystal-oscillator drift
        (0.05, "random_walk"),
        (1.0 / 7.0, "constant"),  # the assumption's edge
    ):
        trace = ExecutionTrace()
        result = sim.run_asynchronous(
            network,
            seed=21,
            delta_est=delta_est,
            frame_length=frame_length,
            max_frames_per_node=frame_budget,
            drift_bound=drift,
            clock_model=model,
            start_spread=15.0,
            trace=trace,
        )
        lemma4 = alignment.check_lemma4_trace(trace)
        # Spot-check Lemma 7 on the first pair of nodes.
        v, u = trace.node_ids[0], trace.node_ids[1]
        holds, checked, _ = alignment.scan_lemma7(
            trace.frames_of(v),
            trace.frames_of(u),
            np.linspace(15.0, 60.0, 30),
        )
        realtime_bound = (
            bounds.theorem10_realtime_bound(
                network.max_channel_set_size,
                delta_est,
                network.min_span_ratio,
                network.num_nodes,
                epsilon,
                frame_length,
                drift,
            )
            if drift <= 1.0 / 7.0
            else None
        )
        rows.append(
            {
                "drift": drift,
                "clock_model": model,
                "completed": result.completed,
                "time_after_Ts": round(result.completion_after_all_started or -1, 1),
                "thm10_bound": round(realtime_bound, 1) if realtime_bound else None,
                "lemma4_max_overlap": lemma4.max_overlap,
                "lemma7": f"{holds}/{checked}",
            }
        )

    print(
        format_table(
            rows,
            title=(
                f"Algorithm 4 on N={network.num_nodes}, "
                f"Delta_est={delta_est}, eps={epsilon}, "
                f"Theorem 9 budget = {frame_budget} frames/node"
            ),
        )
    )

    # Reproduce the paper's Figure 2: frames of several nodes against
    # real time — misaligned starts, drift-stretched durations
    # (T = transmitting frame, L = listening, | = frame boundary,
    # . = slot boundary).
    from repro.analysis.timeline import render_trace

    print("\nExecution timeline (paper Figure 2), last trace, first 3 nodes:")
    print(render_trace(trace, 15.0, 27.0, width=96, nodes=trace.node_ids[:3]))

    assert all(r["completed"] for r in rows)
    assert all(r["lemma4_max_overlap"] <= 3 for r in rows)
    print(
        "\nOK: discovery completed under every drift model, and the "
        "paper's frame-structure lemmas held on every trace."
    )


if __name__ == "__main__":
    main()
