"""Campus cognitive-radio deployment: primary users carve up the spectrum.

The paper's motivating scenario (§I-II): secondary (CR) nodes may only
use channels not occupied by nearby licensed *primary users*, so
availability varies across space. This example:

1. builds the ``campus_cr`` scenario — 30 CR nodes, a 12-channel
   spectrum, 18 primary users with interference footprints;
2. shows how heterogeneous the availability actually is;
3. runs Algorithms 1, 2 and 3 and compares their discovery times with
   the theorem budgets;
4. archives the network instance to JSON for exact reproducibility.

Run:  python examples/campus_cognitive_radio.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import sim
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core import bounds
from repro.net import save_network
from repro.workloads.scenarios import scenario


def main() -> None:
    campus = scenario("campus_cr")
    network = campus.build(seed=3)

    # --- how heterogeneous is availability? ---
    sizes = Counter(len(network.channels_of(n)) for n in network.node_ids)
    rows = [
        {"available_channels": k, "nodes": v} for k, v in sorted(sizes.items())
    ]
    print(format_table(rows, title=f"{campus.description}"))
    print()
    print(format_table([network.parameter_summary()], title="Paper parameters"))

    s = network.max_channel_set_size
    d = network.max_degree
    rho = network.min_span_ratio
    n = network.num_nodes
    epsilon = 0.1
    delta_est = campus.delta_est

    # --- run the three synchronous algorithms ---
    comparison = []
    for protocol, de, budget in (
        ("algorithm1", delta_est,
         bounds.theorem1_slot_budget(s, d, rho, n, epsilon, delta_est)),
        ("algorithm2", None,
         bounds.theorem2_slot_budget(s, d, rho, n, epsilon)),
        ("algorithm3", delta_est,
         bounds.theorem3_slot_budget(s, delta_est, rho, n, epsilon)),
    ):
        results = sim.run_trials(
            lambda seed, p=protocol, e=de: sim.run_synchronous(
                network, p, seed=seed, max_slots=4 * budget, delta_est=e
            ),
            num_trials=10,
            base_seed=100,
        )
        times = [r.completion_time for r in results if r.completion_time is not None]
        summary = summarize(times)
        comparison.append(
            {
                "protocol": protocol,
                "completed": f"{sum(r.completed for r in results)}/10",
                "mean_slots": round(summary.mean, 1),
                "p90_slots": round(summary.p90, 1),
                "theorem_budget": budget,
                "bound/mean": round(budget / summary.mean, 1),
            }
        )
    print()
    print(
        format_table(
            comparison,
            title=f"Discovery on campus_cr (eps={epsilon}, delta_est={delta_est})",
        )
    )

    # --- archive the exact instance ---
    out = Path(tempfile.gettempdir()) / "campus_cr_seed3.json"
    save_network(network, out)
    print(f"\nNetwork instance archived to {out}")


if __name__ == "__main__":
    main()
