"""Robustness sweep: discovery under escalating jamming (fault injection).

The paper assumes a static spectrum; real cognitive-radio deployments
face jammers, returning primary users and bursty links. This example
sweeps the jamming duty cycle against both extremes of the protocol
family — Algorithm 1 (synchronous, full knowledge) and Algorithm 4
(asynchronous, drifting clocks) — and tabulates the degradation curves
from :mod:`repro.analysis.robustness`:

1. completion slows monotonically as the jammer's duty cycle grows;
2. discovery still *completes* whenever the jammer leaves any air time
   (the protocols are oblivious but the randomization is resilient);
3. after a jamming burst ends, re-discovery resumes immediately
   (re-discovery delays from the fault event log).

Run:  PYTHONPATH=src python examples/robustness_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import net
from repro.analysis.robustness import (
    degradation_curve,
    degradation_table,
    is_monotone_non_improving,
    rediscovery_delays,
)
from repro.analysis.tables import format_table
from repro.faults import FaultPlan, FixedWindows, JammingBursts
from repro.sim.runner import run_asynchronous, run_synchronous

DUTIES = (0.0, 0.2, 0.4, 0.6)
TRIALS = 5


def build_network():
    rng = np.random.default_rng(23)
    topo = net.topology.random_geometric(
        10, radius=0.5, rng=rng, require_connected=True
    )
    assignment = net.channels.common_channel_plus_random(
        topo.num_nodes, universal_size=5, set_size=3, rng=rng
    )
    return net.build_network(topo, assignment)


def jamming_plan(duty: float, mean_burst: float):
    if duty == 0.0:
        return None
    return FaultPlan(
        models=(JammingBursts.from_duty_cycle(duty, mean_burst=mean_burst),)
    )


def main() -> None:
    network = build_network()
    delta_est = max(2, network.max_degree)

    def sync_trial(duty: float, seed: np.random.SeedSequence):
        return run_synchronous(
            network,
            "algorithm1",
            seed=seed,
            max_slots=100_000,
            delta_est=delta_est,
            faults=jamming_plan(duty, mean_burst=150.0),
        )

    def async_trial(duty: float, seed: np.random.SeedSequence):
        return run_asynchronous(
            network,
            seed=seed,
            delta_est=delta_est,
            max_frames_per_node=20_000,
            drift_bound=1e-3,
            faults=jamming_plan(duty, mean_burst=40.0),
        )

    curves = {}
    for label, trial_fn in (
        ("algorithm1 (sync)", sync_trial),
        ("algorithm4 (async)", async_trial),
    ):
        points = degradation_curve(DUTIES, trial_fn, trials=TRIALS, base_seed=5)
        curves[label] = points
        print(
            format_table(
                degradation_table(points),
                title=f"{label}: jamming duty sweep on N={network.num_nodes}",
            )
        )
        print()

    # A targeted burst: jam everything for the first 500 slots, then
    # measure how fast discovery resumes once the spectrum clears.
    burst = FaultPlan(models=(JammingBursts(FixedWindows(((0.0, 500.0),))),))
    result = run_synchronous(
        network,
        "algorithm1",
        seed=9,
        max_slots=100_000,
        delta_est=delta_est,
        faults=burst,
    )
    delays = [d for d in rediscovery_delays(result) if d is not None]
    print(
        f"Total blackout over slots [0, 500): completed={result.completed}, "
        f"first re-discovery {min(delays):.0f} slot(s) after the burst ends."
    )

    for label, points in curves.items():
        assert is_monotone_non_improving(points), label
        assert all(p.completed_fraction == 1.0 for p in points), label
    print(
        "\nOK: both algorithms completed at every jamming level, and "
        "degradation was monotone in the duty cycle."
    )


if __name__ == "__main__":
    main()
