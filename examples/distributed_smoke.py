"""Distributed sharding smoke: two workers, one SIGKILL, bytes hold.

Exercises the lease-based work queue the way CI does, with real
``m2hew worker`` subprocesses sharing a file-backed queue directory:

1. run the campaign serially with ``m2hew batch`` as the byte
   reference, and check it with ``m2hew verify-archive --json``;
2. start two workers, run the same campaign with ``--queue`` (one
   trial per chunk so both workers stay busy);
3. after the first chunk-completion marker lands, SIGKILL one worker —
   preferring whichever currently holds a lease — while the campaign
   is still running;
4. assert the campaign completes anyway (dead lease reclaimed after
   its TTL, surviving worker and coordinator absorb the load), the
   sharded archive is byte-identical to the serial one, and
   ``verify-archive`` passes on it.

Run:  python examples/distributed_smoke.py
"""

from __future__ import annotations

import json
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

SCENARIO = "single_common_channel"
PROTOCOL = "algorithm3"
TRIALS = 12
MAX_SLOTS = 50_000
LEASE_TTL = 3.0
POLL_INTERVAL = 0.05

STARTUP_TIMEOUT = 30.0
CAMPAIGN_TIMEOUT = 300.0


def cli(*args: str) -> List[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def batch_args(output: Path) -> List[str]:
    return [
        SCENARIO,
        "--protocols",
        PROTOCOL,
        "--trials",
        str(TRIALS),
        "--max-slots",
        str(MAX_SLOTS),
        "--output",
        str(output),
    ]


def run_serial_reference(output: Path) -> None:
    subprocess.run(
        cli("batch", *batch_args(output)),
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def verify_archive(archive: Path) -> None:
    proc = subprocess.run(
        cli("verify-archive", str(archive), "--json"),
        check=True,
        capture_output=True,
        text=True,
    )
    report = json.loads(proc.stdout)
    assert report["ok"] is True, f"archive failed verification: {report}"
    assert report["issues"] == [], report


def spawn_worker(queue_dir: Path, index: int) -> "subprocess.Popen[str]":
    return subprocess.Popen(
        cli(
            "worker",
            "--queue",
            str(queue_dir),
            "--worker-id",
            f"smoke-{index}",
            "--idle-exit",
            "15.0",
            "--lease-ttl",
            str(LEASE_TTL),
            "--poll-interval",
            str(POLL_INTERVAL),
        ),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        text=True,
    )


def await_heartbeats(queue_dir: Path, count: int) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT
    workers = queue_dir / "workers"
    while time.monotonic() < deadline:
        if workers.is_dir() and len(list(workers.glob("*.json"))) >= count:
            return
        time.sleep(POLL_INTERVAL)
    raise RuntimeError("workers never announced their heartbeats")


def read_sidecar(path: Path) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def done_marker_count(queue_dir: Path) -> int:
    return len(list(queue_dir.glob("tasks/*/chunk-*.done.json")))


def current_lease_owners(queue_dir: Path) -> List[str]:
    owners = []
    for lease_path in sorted(queue_dir.glob("tasks/*/chunk-*.lease.json")):
        lease = read_sidecar(lease_path)
        if lease is not None and lease.get("worker"):
            owners.append(str(lease["worker"]))
    return owners


def archive_bytes(directory: Path) -> Dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(directory.iterdir())}


def main() -> None:
    work = Path(tempfile.mkdtemp(prefix="m2hew-dist-smoke-"))
    queue_dir = work / "queue"
    workers: List["subprocess.Popen[str]"] = []
    campaign: Optional["subprocess.Popen[str]"] = None
    try:
        print("== serial reference run ==")
        serial_dir = work / "serial"
        run_serial_reference(serial_dir)
        verify_archive(serial_dir)
        print(f"  archived + verified: {serial_dir}")

        print("== sharded run: 2 workers on one lease queue ==")
        workers = [spawn_worker(queue_dir, i) for i in range(2)]
        await_heartbeats(queue_dir, 2)
        print("  both workers heartbeating")

        sharded_dir = work / "sharded"
        campaign = subprocess.Popen(
            cli(
                "batch",
                *batch_args(sharded_dir),
                "--queue",
                str(queue_dir),
                "--chunk-size",
                "1",
                "--lease-ttl",
                str(LEASE_TTL),
                "--retries",
                "3",
            ),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

        deadline = time.monotonic() + CAMPAIGN_TIMEOUT
        while done_marker_count(queue_dir) == 0:
            if campaign.poll() is not None:
                raise RuntimeError(
                    "campaign finished before any chunk marker was observed"
                )
            if time.monotonic() > deadline:
                raise RuntimeError("no chunk completed within the timeout")
            time.sleep(POLL_INTERVAL)
        completed_at_kill = done_marker_count(queue_dir)

        # Prefer killing a worker that holds a live lease so the run
        # must actually reclaim abandoned work, not just lose capacity.
        owners = current_lease_owners(queue_dir)
        victim_index = 0
        for index in range(len(workers)):
            if f"smoke-{index}" in owners:
                victim_index = index
                break
        victim = workers[victim_index]
        assert campaign.poll() is None, (
            "campaign already over; nothing left to survive the kill"
        )
        assert victim.poll() is None, "victim worker died on its own"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)
        print(
            f"  SIGKILLed smoke-{victim_index} after "
            f"{completed_at_kill}/{TRIALS} chunk(s) "
            f"(held lease: {f'smoke-{victim_index}' in owners})"
        )

        output, _ = campaign.communicate(timeout=CAMPAIGN_TIMEOUT)
        assert campaign.returncode == 0, (
            f"sharded campaign failed ({campaign.returncode}):\n{output}"
        )
        if "reclaimed chunk" in output:
            print("  dead lease reclaimed after TTL expiry")
        print("  campaign completed despite the kill")

        print("== byte-compare sharded vs serial ==")
        serial_bytes = archive_bytes(serial_dir)
        sharded_bytes = archive_bytes(sharded_dir)
        assert sorted(sharded_bytes) == sorted(serial_bytes), (
            sorted(sharded_bytes),
            sorted(serial_bytes),
        )
        for name, expected in serial_bytes.items():
            assert sharded_bytes[name] == expected, (
                f"{name}: sharded bytes differ from serial run"
            )
        verify_archive(sharded_dir)
        print(f"  byte-identical + verified: {', '.join(sorted(serial_bytes))}")

        print("\nOK: kill-tolerant sharding holds the byte-identity invariant.")
    finally:
        if campaign is not None and campaign.poll() is None:
            campaign.kill()
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
                try:
                    worker.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    worker.kill()
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
