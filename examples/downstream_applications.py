"""From discovery to a working network: the §I pipeline.

The paper motivates neighbor discovery as the enabler for "medium
access control, clustering, collision-free scheduling, and topology
control". This example runs the full pipeline:

1. discover neighbors with Algorithm 3 on a campus-style CR network;
2. build lowest-id clusters from the *discovered* tables;
3. compute a collision-free link TDMA schedule from the *discovered*
   tables and their common channels;
4. replay the schedule against the true network to certify that zero
   collisions occur — the end-to-end proof that discovery output is
   sufficient to operate the network.

Run:  python examples/downstream_applications.py
"""

from __future__ import annotations

from collections import Counter

from repro.apps import lowest_id_clusters, schedule_links
from repro.analysis.tables import format_table
from repro.sim.runner import run_synchronous
from repro.workloads.scenarios import scenario


def main() -> None:
    campus = scenario("campus_cr")
    network = campus.build(seed=7)

    # --- 1. discovery ---
    result = run_synchronous(
        network,
        "algorithm3",
        seed=11,
        max_slots=300_000,
        delta_est=campus.delta_est,
    )
    assert result.completed, "discovery incomplete; increase the budget"
    tables = result.neighbor_tables

    # --- 2. clustering on discovered tables ---
    clusters = lowest_id_clusters(tables)
    sizes = Counter(len(m) for m in clusters.members_of.values())
    print(
        format_table(
            [
                {
                    "nodes": network.num_nodes,
                    "discovery_slots": result.completion_time,
                    "clusters": clusters.num_clusters,
                    "largest_cluster": max(
                        len(m) for m in clusters.members_of.values()
                    ),
                    "singletons": sizes.get(1, 0),
                }
            ],
            title=f"Clustering over discovered tables ({campus.name})",
        )
    )

    # --- 3. link scheduling on discovered tables ---
    schedule = schedule_links(tables)
    print()
    print(
        format_table(
            [
                {
                    "directed_links": len(schedule.assignment),
                    "tdma_slots": schedule.num_slots,
                    "links_per_slot": round(schedule.throughput, 2),
                }
            ],
            title="Collision-free TDMA over discovered links",
        )
    )

    # --- 4. certification against the true network ---
    violations = 0
    for slot in range(schedule.num_slots):
        per_channel: dict = {}
        for (t, r), c in schedule.links_in_slot(slot):
            per_channel.setdefault(c, []).append((t, r))
        for c, links in per_channel.items():
            transmitters = {t for t, _ in links}
            for t, r in links:
                if network.hears_on(r, c) & transmitters != {t}:
                    violations += 1
    print(
        f"\nSchedule replayed on the true network: {violations} collisions "
        f"across {schedule.num_slots} slots."
    )
    assert violations == 0
    print(
        "OK: the discovered neighbor tables were sufficient to cluster "
        "the network and run a provably collision-free link schedule."
    )


if __name__ == "__main__":
    main()
