"""Quickstart: discover neighbors in a heterogeneous multi-channel network.

Builds a 20-node cognitive-radio-style network (random geometric
placement, random channel subsets with a common control channel), runs
the paper's Algorithm 3, and prints what each node discovered next to
the theoretical budget from Theorem 3.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import net, sim
from repro.analysis.tables import format_table
from repro.core import bounds
from repro.sim.rng import RngFactory


def main() -> None:
    # All randomness flows through one factory: the whole run replays
    # from the single integer 7 (see docs/static_analysis.md, D-series).
    rngs = RngFactory(7)

    # 1. Radio topology: who is in range of whom.
    topo = net.topology.random_geometric(
        num_nodes=20, radius=0.35, rng=rngs.stream("topology"),
        require_connected=True
    )

    # 2. Channel availability: each node sees 3 of 8 channels (all share
    #    channel 0, a common control channel).
    assignment = net.channels.common_channel_plus_random(
        topo.num_nodes, universal_size=8, set_size=3,
        rng=rngs.stream("channels")
    )
    network = net.build_network(topo, assignment)

    params = network.parameter_summary()
    print(format_table([params], title="Network parameters (paper notation)"))

    # 3. Run Algorithm 3 (synchronous, variable start times allowed).
    delta_est = max(2, network.max_degree)
    result = sim.run_synchronous(
        network,
        "algorithm3",
        seed=42,
        max_slots=100_000,
        delta_est=delta_est,
    )

    # 4. Compare with Theorem 3's slot budget.
    budget = bounds.theorem3_slot_budget(
        network.max_channel_set_size,
        delta_est,
        network.min_span_ratio,
        network.num_nodes,
        epsilon=0.1,
    )
    print()
    print(
        format_table(
            [
                {
                    "completed": result.completed,
                    "slots_used": result.completion_time,
                    "theorem3_budget(eps=0.1)": budget,
                    "links": result.num_links,
                }
            ],
            title="Discovery outcome",
        )
    )

    # 5. A few rows of the actual output: who each node discovered.
    rows = []
    for nid in network.node_ids[:5]:
        table = result.neighbor_tables[nid]
        rows.append(
            {
                "node": nid,
                "available_channels": sorted(network.channels_of(nid)),
                "neighbors_found": len(table),
                "example_entry": (
                    f"{min(table)} via {sorted(table[min(table)])}" if table else "-"
                ),
            }
        )
    print()
    print(format_table(rows, title="Sample neighbor tables (first 5 nodes)"))

    assert result.completed, "discovery did not finish within the budget"
    print("\nOK: every node discovered all of its neighbors on all channels.")


if __name__ == "__main__":
    main()
