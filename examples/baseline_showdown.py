"""Baseline showdown: why the paper's algorithms beat the alternatives.

Reproduces the §I arguments head to head on the adversarial
single-common-channel workload: a large licensed spectrum of which every
node can use only a few channels, and any two nodes share exactly one.

Contestants:

* ``universal_sweep`` — one single-channel birthday instance per agreed
  universal channel, time-multiplexed (the related-work construction);
* ``deterministic_scan`` — the Θ(N_max·|U|) deterministic schedule of
  [20]-[22] with a realistic id space;
* ``algorithm3`` — the paper's flat randomized algorithm.

Also demonstrates the sweep's fatal stagger sensitivity (§I, third
disadvantage).

Run:  python examples/baseline_showdown.py
"""

from __future__ import annotations

import numpy as np

from repro import sim
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.net import build_network, channels, topology

NUM_NODES = 8
UNIVERSAL = 33  # licensed spectrum size
SET_SIZE = 4    # channels available per node
ID_SPACE = 256  # agreed id space for the deterministic baseline
TRIALS = 10


def build():
    rng = np.random.default_rng(5)
    topo = topology.clique(NUM_NODES)
    assignment = channels.single_common_channel(
        NUM_NODES, UNIVERSAL, SET_SIZE, rng
    )
    return build_network(topo, assignment)


def main() -> None:
    network = build()
    print(
        format_table(
            [network.parameter_summary()],
            title=(
                f"{NUM_NODES}-node clique, |U|={UNIVERSAL}, every pair "
                "shares exactly one channel"
            ),
        )
    )
    universal_order = list(range(1, UNIVERSAL)) + [0]  # shared channel last

    rows = []

    # Universal sweep (synchronized starts — its best case).
    sweep = sim.run_trials(
        lambda seed: sim.run_synchronous(
            network,
            "universal_sweep",
            seed=seed,
            max_slots=500_000,
            delta_est=8,
            engine="reference",
            universal_channels=universal_order,
        ),
        num_trials=TRIALS,
        base_seed=50,
    )
    s = summarize([r.completion_time for r in sweep])
    rows.append(
        {
            "protocol": "universal_sweep (synced)",
            "mean_slots": round(s.mean, 1),
            "p90_slots": round(s.p90, 1),
        }
    )

    # Deterministic scan: one pass is guaranteed, but the pass is long.
    det = sim.run_synchronous(
        network,
        "deterministic_scan",
        seed=0,
        max_slots=UNIVERSAL * ID_SPACE,
        engine="reference",
        universal_channels=universal_order,
        id_space_size=ID_SPACE,
    )
    rows.append(
        {
            "protocol": f"deterministic_scan (N_max={ID_SPACE})",
            "mean_slots": det.completion_time,
            "p90_slots": det.completion_time,
        }
    )

    # Algorithm 3.
    alg3 = sim.run_trials(
        lambda seed: sim.run_synchronous(
            network, "algorithm3", seed=seed, max_slots=500_000, delta_est=8
        ),
        num_trials=TRIALS,
        base_seed=51,
    )
    s3 = summarize([r.completion_time for r in alg3])
    rows.append(
        {
            "protocol": "algorithm3 (paper)",
            "mean_slots": round(s3.mean, 1),
            "p90_slots": round(s3.p90, 1),
        }
    )

    print()
    print(format_table(rows, title="Discovery time, identical start times"))

    # The stagger experiment: offset node starts by a single slot.
    staggered_sweep = sim.run_synchronous(
        network,
        "universal_sweep",
        seed=60,
        max_slots=100_000,
        delta_est=8,
        engine="reference",
        universal_channels=universal_order,
        start_offsets={nid: nid % 2 for nid in network.node_ids},
    )
    staggered_alg3 = sim.run_synchronous(
        network,
        "algorithm3",
        seed=60,
        max_slots=100_000,
        delta_est=8,
        start_offsets={nid: nid % 2 for nid in network.node_ids},
    )
    print()
    print(
        format_table(
            [
                {
                    "protocol": "universal_sweep",
                    "stagger": "1 slot",
                    "coverage": f"{staggered_sweep.coverage_fraction:.0%}",
                    "completed": staggered_sweep.completed,
                },
                {
                    "protocol": "algorithm3",
                    "stagger": "1 slot",
                    "coverage": f"{staggered_alg3.coverage_fraction:.0%}",
                    "completed": staggered_alg3.completed,
                },
            ],
            title="One slot of start-time stagger (Section I, disadvantage 3)",
        )
    )

    assert staggered_alg3.completed
    print(
        "\nTakeaway: the sweep pays for dead spectrum and collapses under "
        "stagger; the deterministic scan pays N_max x |U|; Algorithm 3 "
        "pays only for actual contention."
    )


if __name__ == "__main__":
    main()
