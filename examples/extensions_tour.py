"""Tour of the paper's §V extensions and the practical add-ons.

Four things the ICDCS paper mentions but defers (to [23] and [22]),
all implemented here:

1. **Asymmetric communication graphs** — per-node transmit power makes
   audibility one-way; discovery still works per directed link.
2. **Diverse propagation characteristics** — high channels reach less
   far, so spans shrink below the channel-set intersection; discovery
   still finds every neighbor, with the true span bracketed between
   the channels heard on and the claimed intersection.
3. **Self-termination** — nodes stop after a quiet period instead of
   relying on the experimenter's oracle.
4. **Energy accounting** — what discovery costs on a cc2420-class radio.

Run:  python examples/extensions_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.energy import EnergyModel, energy_report
from repro.analysis.tables import format_table
from repro.core.termination import TerminationPolicy, recommended_quiet_threshold
from repro.net import build_asymmetric_network, channels
from repro.net.propagation import build_channel_dependent_network
from repro.net.topology import asymmetric_random_geometric, random_geometric
from repro.sim.runner import run_synchronous
from repro.sim.termination_runner import run_terminating_sync


def asymmetric_demo() -> None:
    rng = np.random.default_rng(2)
    topo = asymmetric_random_geometric(12, min_range=0.2, max_range=0.7, rng=rng)
    assignment = channels.common_channel_plus_random(12, 5, 3, rng)
    network = build_asymmetric_network(topo, assignment)

    keys = {l.key for l in network.links()}
    one_way = sorted(k for k in keys if (k[1], k[0]) not in keys)

    result = run_synchronous(
        network,
        "algorithm3",
        seed=5,
        max_slots=200_000,
        delta_est=max(2, network.max_degree),
    )
    print(
        format_table(
            [
                {
                    "links": network.num_links,
                    "one_way_links": len(one_way),
                    "completed": result.completed,
                    "slots": result.completion_time,
                }
            ],
            title="1. Asymmetric graph (per-node transmit power)",
        )
    )
    if one_way:
        v, u = one_way[0]
        print(
            f"   e.g. node {u} hears node {v} but not vice versa: "
            f"{u} discovered {v}: {v in result.neighbor_tables[u]}; "
            f"{v} discovered {u}: {u in result.neighbor_tables[v]}"
        )


def propagation_demo() -> None:
    rng = np.random.default_rng(3)
    topo = random_geometric(12, radius=0.45, rng=rng, require_connected=True)
    assignment = channels.homogeneous(12, 6)
    network = build_channel_dependent_network(
        topo, assignment, base_radius=0.45, range_decay=0.5
    )
    shrunk = [
        l for l in network.links()
        if l.span < (network.channels_of(l.transmitter) & network.channels_of(l.receiver))
    ]
    result = run_synchronous(
        network,
        "algorithm3",
        seed=6,
        max_slots=400_000,
        delta_est=max(2, network.max_degree),
    )
    print()
    print(
        format_table(
            [
                {
                    "rho": round(network.min_span_ratio, 3),
                    "links_with_shrunk_span": f"{len(shrunk)}/{network.num_links}",
                    "completed": result.completed,
                    "slots": result.completion_time,
                }
            ],
            title="2. Diverse propagation (high channels reach less far)",
        )
    )


def termination_and_energy_demo() -> None:
    rng = np.random.default_rng(4)
    topo = random_geometric(15, radius=0.4, rng=rng, require_connected=True)
    assignment = channels.common_channel_plus_random(15, 8, 3, rng)
    from repro.net import build_network

    network = build_network(topo, assignment)
    threshold = recommended_quiet_threshold(
        network.max_channel_set_size, 8, network.min_span_ratio, 1e-3
    )
    model = EnergyModel.cc2420()

    rows = []
    for label, policy in (("beacon", TerminationPolicy.BEACON), ("sleep", TerminationPolicy.SLEEP)):
        outcome = run_terminating_sync(
            network,
            "algorithm3",
            seed=9,
            max_slots=8 * threshold,
            quiet_threshold=threshold,
            delta_est=8,
            policy=policy,
        )
        report = energy_report(outcome.result, model, slot_seconds=0.01)
        stops = [t for t in outcome.terminated_at.values() if t is not None]
        rows.append(
            {
                "policy": label,
                "output_complete": outcome.output_complete,
                "false_stops": len(outcome.false_stops),
                "median_stop_slot": sorted(stops)[len(stops) // 2] if stops else None,
                "total_joules": round(report.total_joules, 3),
                "J_per_link": round(report.joules_per_link or 0, 5),
            }
        )
    print()
    print(
        format_table(
            rows,
            title=(
                f"3+4. Self-termination (K = {threshold}) and energy on a "
                "cc2420-class radio (10 ms slots)"
            ),
        )
    )


def main() -> None:
    asymmetric_demo()
    propagation_demo()
    termination_and_energy_demo()
    print("\nOK: all four extensions exercised end to end.")


if __name__ == "__main__":
    main()
