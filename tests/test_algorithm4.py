"""Unit tests for Algorithm 4 (AsyncFrameDiscovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm4 import SLOTS_PER_FRAME, AsyncFrameDiscovery
from repro.core.base import Mode
from repro.exceptions import ConfigurationError


def make(channels=(0, 1), delta_est=4, seed=0):
    return AsyncFrameDiscovery(
        0, channels, np.random.default_rng(seed), delta_est=delta_est
    )


class TestParameters:
    def test_three_slots_per_frame(self):
        assert SLOTS_PER_FRAME == 3

    def test_probability_formula(self):
        p = make(channels=(0, 1), delta_est=4)
        # min(1/2, 2 / (3*4)) = 1/6
        assert p.frame_transmit_probability == pytest.approx(1 / 6)

    def test_probability_capped(self):
        p = make(channels=tuple(range(30)), delta_est=2)
        assert p.frame_transmit_probability == 0.5

    def test_delta_est_validated(self):
        with pytest.raises(ConfigurationError):
            make(delta_est=1)


class TestBehavior:
    def test_decisions_transmit_or_listen(self):
        p = make()
        for k in range(200):
            d = p.decide_frame(k)
            assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)
            assert d.channel in p.channels

    def test_empirical_transmit_rate(self):
        p = make(channels=(0,), delta_est=5, seed=4)  # p = 1/15
        n = 45_000
        hits = sum(p.decide_frame(k).mode is Mode.TRANSMIT for k in range(n))
        assert hits / n == pytest.approx(1 / 15, abs=0.006)

    def test_probability_same_every_frame(self):
        # Like Algorithm 3, the per-frame probability never changes.
        p = make()
        assert p.frame_transmit_probability == p.frame_transmit_probability
        d1 = make(seed=1).decide_frame(0)
        d2 = make(seed=1).decide_frame(0)
        assert (d1.mode, d1.channel) == (d2.mode, d2.channel)
