"""Engine-level fault-injection tests: zero-intensity byte identity,
Bernoulli/erasure bit equivalence, fault semantics, pool invariance."""

from __future__ import annotations

import pytest

from repro.faults import (
    BernoulliLoss,
    FaultPlan,
    FixedWindows,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
    ClockGlitch,
    RenewalActivity,
)
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.parallel import pool_supported
from repro.sim.runner import run_asynchronous, run_synchronous
from repro.workloads.generator import WorkloadConfig


def mesh_net() -> M2HeWNetwork:
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 1, 2})),
        NodeSpec(2, frozenset({1, 2})),
        NodeSpec(3, frozenset({0, 2})),
    ]
    return M2HeWNetwork(
        nodes, adjacency=[(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
    )


def small_workload() -> WorkloadConfig:
    return WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 5},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )


TRIVIAL_PLANS = [
    FaultPlan(),
    FaultPlan(models=(BernoulliLoss(0.0), NodeChurn())),
    FaultPlan(models=(JammingBursts(FixedWindows(())),)),
]


class TestZeroIntensityInvariance:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    @pytest.mark.parametrize("plan", TRIVIAL_PLANS)
    def test_sync_identical_to_fault_free(self, engine, plan):
        net = mesh_net()
        kwargs = dict(
            seed=11, max_slots=5000, engine=engine, erasure_prob=0.1
        )
        base = run_synchronous(net, "algorithm2", **kwargs)
        faulted = run_synchronous(net, "algorithm2", faults=plan, **kwargs)
        assert base.to_dict() == faulted.to_dict()

    @pytest.mark.parametrize("plan", TRIVIAL_PLANS)
    def test_async_identical_to_fault_free(self, plan):
        net = mesh_net()
        kwargs = dict(
            seed=11,
            delta_est=4,
            max_frames_per_node=300,
            drift_bound=1e-4,
            erasure_prob=0.1,
        )
        base = run_asynchronous(net, **kwargs)
        faulted = run_asynchronous(net, faults=plan, **kwargs)
        assert base.to_dict() == faulted.to_dict()

    def test_archived_campaign_bytes_identical(self, tmp_path):
        """A campaign carrying a trivial plan archives the same bytes —
        manifest included — as one that never mentions faults."""
        def spec(params):
            return ExperimentSpec(
                name="inv",
                workload=small_workload(),
                protocol="algorithm3",
                trials=3,
                runner_params=params,
            )

        base_params = {"delta_est": 4, "max_slots": 20_000}
        d1, d2 = tmp_path / "plain", tmp_path / "trivial"
        run_batch([spec(dict(base_params))], base_seed=2, output_dir=d1)
        run_batch(
            [spec({**base_params, "faults": FaultPlan()})],
            base_seed=2,
            output_dir=d2,
        )
        for name in ("inv.json", "manifest.json"):
            assert (d1 / name).read_bytes() == (d2 / name).read_bytes()


def _strip_loss_config(result):
    d = result.to_dict()
    d["metadata"].pop("erasure_prob", None)
    d["metadata"].pop("faults", None)
    return d


class TestBernoulliErasureEquivalence:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_sync_bitwise_equal(self, engine):
        net = mesh_net()
        plan = FaultPlan(models=(BernoulliLoss(0.2),))
        a = run_synchronous(
            net, "algorithm2", seed=7, max_slots=8000, engine=engine,
            erasure_prob=0.2,
        )
        b = run_synchronous(
            net, "algorithm2", seed=7, max_slots=8000, engine=engine,
            faults=plan,
        )
        assert _strip_loss_config(a) == _strip_loss_config(b)

    def test_async_bitwise_equal(self):
        net = mesh_net()
        plan = FaultPlan(models=(BernoulliLoss(0.25),))
        kwargs = dict(
            seed=5, delta_est=4, max_frames_per_node=400, drift_bound=1e-4
        )
        a = run_asynchronous(net, erasure_prob=0.25, **kwargs)
        b = run_asynchronous(net, faults=plan, **kwargs)
        assert _strip_loss_config(a) == _strip_loss_config(b)


class TestFaultSemantics:
    def test_total_jamming_stalls_discovery(self):
        """Jamming every channel over [0, 200) forbids any coverage
        before slot 200, on both synchronous engines."""
        net = mesh_net()
        plan = FaultPlan(
            models=(JammingBursts(FixedWindows(((0.0, 200.0),))),)
        )
        for engine in ("fast", "reference"):
            r = run_synchronous(
                net, "algorithm2", seed=1, max_slots=5000, engine=engine,
                faults=plan,
            )
            assert r.completed, engine
            assert all(t >= 200.0 for t in r.coverage.values()), engine

    def test_crashed_node_stops_participating(self):
        net = mesh_net()
        plan = FaultPlan(models=(NodeChurn(crashes={2: 0.0}),))
        for engine in ("fast", "reference"):
            r = run_synchronous(
                net, "algorithm2", seed=1, max_slots=3000, engine=engine,
                faults=plan,
            )
            assert not r.completed, engine
            for (u, v), t in r.coverage.items():
                if 2 in (u, v):
                    assert t is None, (engine, u, v)
                else:
                    assert t is not None, (engine, u, v)

    def test_late_join_delays_start(self):
        net = mesh_net()
        plan = FaultPlan(models=(NodeChurn(joins={0: 50.0}),))
        for engine in ("fast", "reference"):
            r = run_synchronous(
                net, "algorithm2", seed=1, max_slots=5000, engine=engine,
                faults=plan,
            )
            assert r.start_times[0] == 50.0, engine
            assert r.completed, engine
            covered_from_0 = [
                t for (u, v), t in r.coverage.items() if u == 0
            ]
            assert all(t >= 50.0 for t in covered_from_0), engine

    def test_engines_complete_under_deterministic_faults(self):
        """FixedWindows jamming + churn (no fault randomness): both
        synchronous engines respect the same windows and still finish
        (the engines draw protocol randomness from different streams, so
        only the fault constraints — not exact slots — must agree)."""
        net = mesh_net()
        plan = FaultPlan(
            models=(
                JammingBursts(FixedWindows(((30.0, 60.0),)), channels=(1,)),
                NodeChurn(joins={3: 20.0}, crashes={0: 900.0}),
            )
        )
        for engine in ("fast", "reference"):
            r = run_synchronous(
                net, "algorithm2", seed=4, max_slots=4000, engine=engine,
                faults=plan,
            )
            assert r.completed, engine
            assert r.start_times[3] == 20.0, engine
            assert all(
                t < 900.0
                for (u, v), t in r.coverage.items()
                if 0 in (u, v)
            ), engine

    def test_async_crash_and_glitch(self):
        net = mesh_net()
        plan = FaultPlan(
            models=(
                NodeChurn(crashes={2: 0.0}),
                ClockGlitch(
                    spike=0.05, activity=RenewalActivity(5.0, 15.0)
                ),
            )
        )
        r = run_asynchronous(
            net,
            seed=6,
            delta_est=4,
            max_frames_per_node=250,
            drift_bound=1e-3,
            faults=plan,
        )
        assert not r.completed
        for (u, v), t in r.coverage.items():
            if 2 in (u, v):
                assert t is None, (u, v)

    def test_gilbert_elliott_degrades_but_recovers(self):
        net = mesh_net()
        plan = FaultPlan(
            models=(
                GilbertElliott(
                    p_good=0.05, p_bad=0.9, mean_good=200.0, mean_bad=40.0
                ),
            )
        )
        base = run_synchronous(net, "algorithm2", seed=9, max_slots=50_000)
        lossy = run_synchronous(
            net, "algorithm2", seed=9, max_slots=50_000, faults=plan
        )
        assert lossy.completed  # loss alone never makes discovery impossible
        assert lossy.horizon >= base.horizon


@pytest.mark.skipif(not pool_supported(), reason="no process pool here")
class TestPoolInvariance:
    def test_faulted_campaign_worker_count_invariant(self, tmp_path):
        plan = FaultPlan(
            models=(
                JammingBursts(
                    RenewalActivity(50.0, 150.0), channels=(0,)
                ),
                GilbertElliott(
                    p_good=0.02, p_bad=0.6, mean_good=300.0, mean_bad=30.0
                ),
                NodeChurn(joins={1: 25.0}),
            )
        )
        spec = ExperimentSpec(
            name="faulted",
            workload=small_workload(),
            protocol="algorithm3",
            trials=4,
            runner_params={
                "delta_est": 4,
                "max_slots": 30_000,
                "faults": plan,
            },
        )
        d1, d2 = tmp_path / "serial", tmp_path / "pool"
        run_batch([spec], base_seed=3, output_dir=d1, max_workers=1)
        run_batch(
            [spec],
            base_seed=3,
            output_dir=d2,
            max_workers=4,
            backend="process",
            chunk_size=1,
        )
        for name in ("faulted.json", "manifest.json"):
            assert (d1 / name).read_bytes() == (d2 / name).read_bytes()
