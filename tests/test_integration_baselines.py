"""Integration tests for the baseline protocols vs the paper's algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import mean
from repro.net import build_network, channels, topology
from repro.sim.runner import run_synchronous, run_trials


def clique_common_channel(num_nodes=8, universal=25, set_size=3, seed=0):
    """Clique where all pairs share exactly channel 0 (the §I scenario)."""
    rng = np.random.default_rng(seed)
    topo = topology.clique(num_nodes)
    assignment = channels.single_common_channel(
        num_nodes, universal, set_size, rng
    )
    return build_network(topo, assignment)


class TestDeterministicScan:
    def test_one_epoch_discovers_everything(self):
        net = clique_common_channel()
        universal = sorted(net.universal_channel_set)
        epoch = len(universal) * net.num_nodes
        result = run_synchronous(
            net,
            "deterministic_scan",
            seed=0,
            max_slots=epoch,
            engine="reference",
            universal_channels=universal,
            id_space_size=net.num_nodes,
        )
        assert result.completed
        for nid in net.node_ids:
            expected = {
                v: net.span(v, nid) for v in net.discoverable_neighbors(nid)
            }
            assert result.neighbor_tables[nid] == expected

    def test_randomized_beats_deterministic_product_bound(self):
        # Deterministic scan needs Theta(N_max * |U|) slots where N_max
        # is the agreed *maximum* network size ([20]-[22] schedule by id
        # space, not by who actually showed up). With a realistic
        # N_max >> N and the shared channel not conveniently first in
        # the agreed order, Algorithm 3 finishes far sooner.
        net = clique_common_channel()
        universal = sorted(net.universal_channel_set - {0}) + [0]
        id_space = 128
        epoch = len(universal) * id_space

        det = run_synchronous(
            net,
            "deterministic_scan",
            seed=0,
            max_slots=epoch,
            engine="reference",
            universal_channels=universal,
            id_space_size=id_space,
        )
        rand_results = run_trials(
            lambda seed: run_synchronous(
                net, "algorithm3", seed=seed, max_slots=epoch * 10, delta_est=8
            ),
            num_trials=8,
            base_seed=5,
        )
        assert det.completed
        assert all(r.completed for r in rand_results)
        rand_mean = mean([r.completion_time for r in rand_results])
        # Every link's span is {0}, the last block of the sweep: the
        # deterministic schedule cannot cover anything before slot
        # (|U| - 1) * N_max.
        assert det.completion_time >= (len(universal) - 1) * id_space
        assert rand_mean < det.completion_time


class TestUniversalSweep:
    def test_discovers_with_identical_starts(self):
        net = clique_common_channel(num_nodes=6, universal=19, set_size=3)
        universal = sorted(net.universal_channel_set)
        result = run_synchronous(
            net,
            "universal_sweep",
            seed=1,
            max_slots=100_000,
            delta_est=8,
            engine="reference",
            universal_channels=universal,
        )
        assert result.completed

    def test_pays_universal_size_despite_common_channel(self):
        # Section I's second disadvantage: the sweep's time scales with
        # |U| even though one common channel would suffice. Algorithm 3
        # only tracks the available sets.
        net = clique_common_channel(num_nodes=6, universal=19, set_size=3)
        universal = sorted(net.universal_channel_set)

        def mean_time(protocol, **kwargs):
            results = run_trials(
                lambda seed: run_synchronous(
                    net,
                    protocol,
                    seed=seed,
                    max_slots=200_000,
                    delta_est=8,
                    engine="reference",
                    **kwargs,
                ),
                num_trials=6,
                base_seed=9,
            )
            assert all(r.completed for r in results)
            return mean([r.completion_time for r in results])

        sweep = mean_time("universal_sweep", universal_channels=universal)
        alg3 = mean_time("algorithm3")
        assert alg3 < sweep

    def test_staggered_starts_break_the_sweep(self):
        # Section I's third disadvantage: nodes must start simultaneously
        # or they disagree on each slot's channel. With a one-slot
        # relative offset on a two-node network with disjoint-but-for-
        # one-channel sets, the sweep never lines up on the common
        # channel in the same slot.
        rng = np.random.default_rng(0)
        topo = topology.clique(2)
        assignment = channels.single_common_channel(2, 5, 3, rng)
        net = build_network(topo, assignment)
        universal = sorted(net.universal_channel_set)  # size 5

        result = run_synchronous(
            net,
            "universal_sweep",
            seed=3,
            max_slots=20_000,
            delta_est=2,
            engine="reference",
            universal_channels=universal,
            # Offset of 1 slot: when node 0 is on U[t], node 1 is on
            # U[t-1]; they meet on the common channel only if the sweep
            # length divides the offset difference — never here.
            start_offsets={0: 0, 1: 1},
        )
        assert not result.completed

    def test_algorithm3_immune_to_stagger(self):
        rng = np.random.default_rng(0)
        topo = topology.clique(2)
        assignment = channels.single_common_channel(2, 5, 3, rng)
        net = build_network(topo, assignment)
        result = run_synchronous(
            net,
            "algorithm3",
            seed=3,
            max_slots=20_000,
            delta_est=2,
            start_offsets={0: 0, 1: 1},
        )
        assert result.completed


class TestBirthdayPrimitive:
    def test_single_channel_discovery(self):
        topo = topology.clique(5)
        net = build_network(topo, channels.homogeneous(5, 1))
        from repro.baselines import BirthdayProtocol
        from repro.sim.rng import RngFactory
        from repro.sim.slotted import SlottedSimulator
        from repro.sim.stopping import StoppingCondition

        sim = SlottedSimulator(
            net,
            lambda nid, chs, rng: BirthdayProtocol(
                nid, chs, rng, channel=0, delta_est=4
            ),
            RngFactory(2),
        )
        result = sim.run(StoppingCondition.slots(10_000))
        assert result.completed
