"""Unit tests for repro.analysis.coverage (Monte-Carlo estimators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import coverage
from repro.core import bounds
from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology


@pytest.fixture
def star_hom():
    """Hub + 4 leaves, homogeneous 4 channels: controlled Δ and S."""
    topo = topology.star(4)
    return build_network(topo, channels.homogeneous(topo.num_nodes, 4))


class TestHelpers:
    def test_matched_slot_index(self):
        assert coverage.matched_slot_index(1) == 1
        assert coverage.matched_slot_index(2) == 1
        assert coverage.matched_slot_index(3) == 2
        assert coverage.matched_slot_index(4) == 2
        assert coverage.matched_slot_index(5) == 3

    def test_probability_helpers(self):
        assert coverage.alg1_slot_probability(4, 1) == 0.5
        assert coverage.alg1_slot_probability(1, 3) == pytest.approx(1 / 8)
        assert coverage.alg3_slot_probability(2, 8) == pytest.approx(0.25)
        assert coverage.alg4_frame_probability(2, 4) == pytest.approx(1 / 6)

    def test_matched_slot_invalid(self):
        with pytest.raises(ConfigurationError):
            coverage.matched_slot_index(0)


class TestCoverageEstimate:
    def test_from_counts(self):
        est = coverage.CoverageEstimate.from_counts(50, 100)
        assert est.probability == 0.5
        assert est.ci_low < 0.5 < est.ci_high

    def test_at_least(self):
        est = coverage.CoverageEstimate.from_counts(50, 100)
        assert est.at_least(0.4)
        assert not est.at_least(0.9)


class TestLinkCoverage:
    def test_estimate_beats_alg3_bound(self, star_hom, rng):
        delta_est = 8
        probs = {
            nid: coverage.alg3_slot_probability(
                len(star_hom.channels_of(nid)), delta_est
            )
            for nid in star_hom.node_ids
        }
        link = star_hom.link(1, 0)  # leaf -> hub (hub has degree 4)
        est = coverage.estimate_link_coverage(star_hom, link, probs, 8000, rng)
        bound = bounds.slot_coverage_alg3(
            star_hom.max_channel_set_size, delta_est, star_hom.min_span_ratio
        )
        # The analytic value is a LOWER bound; the estimate must not
        # contradict it.
        assert est.at_least(bound)

    def test_isolated_receiver_high_coverage(self, rng):
        # Pair with one channel: coverage = p_v * (1 - p_u).
        topo = topology.line(2)
        net = build_network(topo, channels.homogeneous(2, 1))
        probs = {0: 0.5, 1: 0.5}
        est = coverage.estimate_link_coverage(net, net.link(1, 0), probs, 8000, rng)
        assert est.probability == pytest.approx(0.25, abs=0.02)

    def test_trials_validated(self, star_hom, rng):
        with pytest.raises(ConfigurationError):
            coverage.estimate_link_coverage(
                star_hom, star_hom.link(1, 0), {}, 0, rng
            )


class TestEventEstimates:
    def test_events_match_analysis(self, star_hom, rng):
        # One channel of 4, p = 1/2 cap: Pr{A} = p/|A| = 1/8.
        delta_est = 8
        probs = {
            nid: coverage.alg3_slot_probability(
                len(star_hom.channels_of(nid)), delta_est
            )
            for nid in star_hom.node_ids
        }
        link = star_hom.link(1, 0)
        est = coverage.estimate_event_probabilities(
            star_hom, link, channel=0, probabilities=probs, trials=8000, rng=rng
        )
        # p_v = min(1/2, 4/8) = 1/2; Pr{A} = 1/2 * 1/4 = 1/8.
        assert est.pr_transmit.probability == pytest.approx(1 / 8, abs=0.02)
        # Pr{B} = (1 - 1/2) * 1/4 = 1/8.
        assert est.pr_listen.probability == pytest.approx(1 / 8, abs=0.02)
        # Analytic lower bounds hold.
        assert est.pr_transmit.at_least(
            bounds.pr_transmit_event_alg3(star_hom.max_channel_set_size, delta_est)
        )
        assert est.pr_listen.at_least(bounds.pr_listen_event(4))
        assert est.pr_no_interference.at_least(bounds.pr_no_interference_event())

    def test_channel_must_be_in_span(self, star_hom, rng):
        with pytest.raises(ConfigurationError, match="span"):
            coverage.estimate_event_probabilities(
                star_hom, star_hom.link(1, 0), channel=99,
                probabilities={}, trials=10, rng=rng,
            )


class TestAlignedPairCoverage:
    def test_beats_lemma5_bound(self, star_hom, rng):
        delta_est = 4
        link = star_hom.link(1, 0)
        est = coverage.estimate_aligned_pair_coverage(
            star_hom, link, delta_est, trials=20_000, rng=rng
        )
        bound = bounds.lemma5_pair_coverage(
            star_hom.max_channel_set_size, delta_est, star_hom.min_span_ratio
        )
        assert est.at_least(bound)
        assert est.probability > 0

    def test_no_interferers_simple_product(self, rng):
        # Two-node network, one channel: coverage = p * (1 - p), p = 1/(3*4).
        topo = topology.line(2)
        net = build_network(topo, channels.homogeneous(2, 1))
        est = coverage.estimate_aligned_pair_coverage(
            net, net.link(1, 0), delta_est=4, trials=30_000, rng=rng
        )
        p = 1 / 12
        assert est.probability == pytest.approx(p * (1 - p), abs=0.01)

    def test_validation(self, star_hom, rng):
        with pytest.raises(ConfigurationError):
            coverage.estimate_aligned_pair_coverage(
                star_hom, star_hom.link(1, 0), 4, trials=0, rng=rng
            )
        with pytest.raises(ConfigurationError):
            coverage.estimate_aligned_pair_coverage(
                star_hom, star_hom.link(1, 0), 4, trials=10, rng=rng, overlap_frames=0
            )
