"""End-to-end tests for the campaign service's asyncio app.

Routing and queue semantics are exercised directly through
``CampaignService.handle_request`` without starting the dispatcher (so
nothing executes and queue states hold still); the execution tests
start the real server on an ephemeral port, speak HTTP/1.1 over raw
asyncio connections, and run a real (tiny) campaign to completion —
including the byte-identity check against a direct ``run_batch`` and
the dedup cache hit. Restart/resume is covered at process level by
``examples/service_smoke.py`` (the CI service smoke) and at worker
level in ``test_service.py``; here ``restore()`` is checked to rebuild
the queue from persisted records.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.app import CampaignService
from repro.service.campaigns import CampaignRequest, campaign_specs
from repro.service.http import HttpError, HttpRequest
from repro.service.scheduler import QuotaPolicy
from repro.sim.batch import run_batch

PAYLOAD = {
    "scenario": "single_common_channel",
    "protocols": ["algorithm3"],
    "trials": 2,
    "max_slots": 50_000,
}


def api(service, method, path, payload=None, query=None):
    """Drive the router directly; returns (status, parsed body)."""
    body = b"" if payload is None else json.dumps(payload).encode()
    request = HttpRequest(
        method=method,
        path=path,
        query=query or {},
        headers={},
        body=body,
    )
    try:
        response = asyncio.run(service.handle_request(request))
    except HttpError as err:
        return err.status, {"error": err.message}
    return response.status, json.loads(response.body) if response.body else None


def variant(trials):
    payload = dict(PAYLOAD)
    payload["trials"] = trials
    return payload


class TestRoutingWithoutDispatcher:
    def test_health_empty(self, tmp_path):
        service = CampaignService(tmp_path)
        status, body = api(service, "GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["jobs"] == {} and body["queued"] == 0

    def test_submit_queues_and_joins(self, tmp_path):
        service = CampaignService(tmp_path)
        status, first = api(service, "POST", "/campaigns", PAYLOAD)
        assert status == 202
        assert first["created"] is True and first["cache_hit"] is False
        assert first["job"]["state"] == "queued"
        # Identical resubmission joins the queued job instead of queuing
        # a duplicate — same job id, nothing created.
        status, joined = api(service, "POST", "/campaigns", PAYLOAD)
        assert status == 200
        assert joined["created"] is False and joined["cache_hit"] is False
        assert joined["job"]["job_id"] == first["job"]["job_id"]
        status, listing = api(service, "GET", "/campaigns")
        assert status == 200 and len(listing["jobs"]) == 1

    def test_submit_validation_errors_are_400(self, tmp_path):
        service = CampaignService(tmp_path)
        status, body = api(
            service, "POST", "/campaigns", {"scenario": "nope", "protocols": ["x"]}
        )
        assert status == 400
        assert "unknown scenario" in body["error"]

    def test_unknown_routes_and_methods(self, tmp_path):
        service = CampaignService(tmp_path)
        assert api(service, "GET", "/nope")[0] == 404
        assert api(service, "GET", "/campaigns/job-999999")[0] == 404
        assert api(service, "PUT", "/campaigns")[0] == 405

    def test_queue_quota_429(self, tmp_path):
        service = CampaignService(
            tmp_path, quota=QuotaPolicy(max_queued=1, max_per_client=8)
        )
        assert api(service, "POST", "/campaigns", variant(2))[0] == 202
        status, body = api(service, "POST", "/campaigns", variant(3))
        assert status == 429
        assert "queue is full" in body["error"]

    def test_status_with_event_cursor(self, tmp_path):
        service = CampaignService(tmp_path)
        _, submitted = api(service, "POST", "/campaigns", PAYLOAD)
        job_id = submitted["job"]["job_id"]
        status, body = api(
            service, "GET", f"/campaigns/{job_id}", query={"since": "0"}
        )
        assert status == 200
        assert [e["state"] for e in body["events"]] == ["queued"]
        assert body["next_cursor"] == 1
        assert body["latest_event"]["kind"] == "state"
        status, body = api(
            service, "GET", f"/campaigns/{job_id}", query={"since": "xyz"}
        )
        assert status == 400

    def test_result_before_done_is_409(self, tmp_path):
        service = CampaignService(tmp_path)
        _, submitted = api(service, "POST", "/campaigns", PAYLOAD)
        job_id = submitted["job"]["job_id"]
        assert api(service, "GET", f"/campaigns/{job_id}/result")[0] == 409
        assert api(service, "GET", f"/campaigns/{job_id}/files/manifest.json")[0] == 409

    def test_cancel_queued_job(self, tmp_path):
        service = CampaignService(tmp_path)
        _, submitted = api(service, "POST", "/campaigns", PAYLOAD)
        job_id = submitted["job"]["job_id"]
        status, body = api(service, "POST", f"/campaigns/{job_id}/cancel")
        assert status == 200
        assert body["job"]["state"] == "cancelled"
        # Cancelling a terminal job conflicts.
        assert api(service, "POST", f"/campaigns/{job_id}/cancel")[0] == 409
        # The fingerprint is free again: resubmission creates a new job.
        status, resubmitted = api(service, "POST", "/campaigns", PAYLOAD)
        assert status == 202 and resubmitted["created"] is True
        assert resubmitted["job"]["job_id"] != job_id


class TestRestore:
    def test_restore_requeues_persisted_jobs(self, tmp_path):
        before = CampaignService(tmp_path)
        _, submitted = api(before, "POST", "/campaigns", PAYLOAD)
        job_id = submitted["job"]["job_id"]
        # Simulate a crash mid-run: persist the job as running.
        job = before.jobs.get(job_id)
        job.state = "running"
        before.jobs.save(job)

        after = CampaignService(tmp_path)
        assert after.restore() == 1
        (queued,) = after.scheduler.queued_jobs()
        assert queued.job_id == job_id and queued.state == "queued"
        # A resubmission against the restored service joins the queue.
        status, joined = api(after, "POST", "/campaigns", PAYLOAD)
        assert status == 200 and joined["job"]["job_id"] == job_id


async def raw_http(port, method, path, payload=None):
    """One HTTP/1.1 exchange against the live server; reads to EOF."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    if b"transfer-encoding: chunked" in header.lower():
        chunks = []
        while rest:
            size_line, _, rest = rest.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            chunks.append(rest[:size])
            rest = rest[size + 2 :]
        return status, b"".join(chunks)
    return status, rest


async def wait_done(port, job_id, deadline=120.0):
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while loop.time() < end:
        status, body = await raw_http(port, "GET", f"/campaigns/{job_id}")
        assert status == 200
        job = json.loads(body)["job"]
        if job["state"] == "done":
            return job
        assert job["state"] in ("queued", "running"), job
        await asyncio.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestLiveServer:
    def test_submit_complete_bytes_dedup_events(self, tmp_path):
        async def scenario_run():
            service = CampaignService(tmp_path / "data")
            server = await service.serve(port=0)
            try:
                status, body = await raw_http(server.port, "GET", "/health")
                assert status == 200 and json.loads(body)["status"] == "ok"

                status, body = await raw_http(
                    server.port, "POST", "/campaigns", PAYLOAD
                )
                assert status == 202
                submitted = json.loads(body)
                assert submitted["created"] and not submitted["cache_hit"]
                job_id = submitted["job"]["job_id"]

                job = await wait_done(server.port, job_id)
                assert job["cached"] is False

                # Event log: queued -> running -> per-trial progress -> done.
                status, body = await raw_http(
                    server.port, "GET", f"/campaigns/{job_id}/events?since=0"
                )
                assert status == 200
                events = [json.loads(line) for line in body.splitlines()]
                assert [e["state"] for e in events if e["kind"] == "state"] == [
                    "queued", "running", "done",
                ]
                progress = [e for e in events if e["kind"] == "progress"]
                assert [
                    (e["completed"], e["total"]) for e in progress
                ] == [(1, 2), (2, 2)]

                # Served archive bytes == direct run_batch bytes.
                status, body = await raw_http(
                    server.port, "GET", f"/campaigns/{job_id}/result"
                )
                assert status == 200
                result = json.loads(body)
                assert result["verification"]["ok"] is True
                direct = tmp_path / "direct"
                request = CampaignRequest.from_dict(PAYLOAD)
                await asyncio.to_thread(
                    run_batch,
                    campaign_specs(request),
                    base_seed=request.base_seed,
                    output_dir=direct,
                )
                assert sorted(result["files"]) == sorted(
                    p.name for p in direct.iterdir()
                )
                for name in result["files"]:
                    status, served = await raw_http(
                        server.port, "GET", f"/campaigns/{job_id}/files/{name}"
                    )
                    assert status == 200
                    assert served == (direct / name).read_bytes(), name

                # Identical resubmission: answered from the store.
                status, body = await raw_http(
                    server.port, "POST", "/campaigns", PAYLOAD
                )
                assert status == 200
                cached = json.loads(body)
                assert cached["cache_hit"] is True
                assert cached["job"]["job_id"] == job_id
            finally:
                await service.shutdown(server)

        asyncio.run(scenario_run())

    def test_cancel_running_job_is_cooperative(self, tmp_path):
        async def scenario_run():
            service = CampaignService(tmp_path / "data")
            server = await service.serve(port=0)
            try:
                status, body = await raw_http(
                    server.port, "POST", "/campaigns", variant(16)
                )
                assert status == 202
                job_id = json.loads(body)["job"]["job_id"]

                # Wait for the first progress event, then cancel.
                loop = asyncio.get_running_loop()
                end = loop.time() + 120.0
                while loop.time() < end:
                    _, body = await raw_http(
                        server.port, "GET", f"/campaigns/{job_id}?since=0"
                    )
                    events = json.loads(body)["events"]
                    if any(e["kind"] == "progress" for e in events):
                        break
                    await asyncio.sleep(0.02)
                status, _ = await raw_http(
                    server.port, "POST", f"/campaigns/{job_id}/cancel"
                )
                assert status == 200

                end = loop.time() + 120.0
                while loop.time() < end:
                    _, body = await raw_http(
                        server.port, "GET", f"/campaigns/{job_id}"
                    )
                    job = json.loads(body)["job"]
                    if job["state"] == "cancelled":
                        break
                    await asyncio.sleep(0.05)
                else:
                    pytest.fail("running job never observed its cancel flag")
                # A cancelled job serves no result.
                status, _ = await raw_http(
                    server.port, "GET", f"/campaigns/{job_id}/result"
                )
                assert status == 409
            finally:
                await service.shutdown(server)

        asyncio.run(scenario_run())
