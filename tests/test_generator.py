"""Unit tests for repro.workloads.generator."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.generator import WorkloadConfig, generate_network


class TestWorkloadConfig:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            WorkloadConfig(topology="torus")

    def test_unknown_channel_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown channel model"):
            WorkloadConfig(topology="clique", channel_model="psychic")

    def test_describe_is_json_compatible(self):
        import json

        cfg = WorkloadConfig(
            topology="grid",
            topology_params={"rows": 2, "cols": 2},
            channel_model="homogeneous",
            channel_params={"num_channels": 3},
        )
        json.dumps(cfg.describe())


class TestGenerateNetwork:
    def test_deterministic(self):
        cfg = WorkloadConfig(
            topology="random_geometric",
            topology_params={"num_nodes": 12, "radius": 0.4},
            channel_model="uniform_random_subsets",
            channel_params={"universal_size": 6, "set_size": 3},
        )
        a = generate_network(cfg, seed=4)
        b = generate_network(cfg, seed=4)
        assert a.node_ids == b.node_ids
        assert all(a.channels_of(n) == b.channels_of(n) for n in a.node_ids)
        assert [l.key for l in a.links()] == [l.key for l in b.links()]

    def test_channel_model_independent_of_topology_stream(self):
        base = WorkloadConfig(
            topology="random_geometric",
            topology_params={"num_nodes": 10, "radius": 0.4},
            channel_model="homogeneous",
            channel_params={"num_channels": 3},
        )
        other = WorkloadConfig(
            topology="random_geometric",
            topology_params={"num_nodes": 10, "radius": 0.4},
            channel_model="uniform_random_subsets",
            channel_params={"universal_size": 6, "set_size": 3},
        )
        a = generate_network(base, seed=8)
        b = generate_network(other, seed=8)
        # Same placement stream: positions identical despite the
        # different channel model.
        assert all(
            a.node(n).position == b.node(n).position for n in a.node_ids
        )

    def test_repair_overlap_applied(self):
        cfg = WorkloadConfig(
            topology="line",
            topology_params={"num_nodes": 6},
            channel_model="uniform_random_subsets",
            channel_params={"universal_size": 30, "set_size": 2},
            repair_overlap=True,
        )
        network = generate_network(cfg, seed=0)
        # After repair, every radio-adjacent pair shares a channel, so
        # every adjacency carries a link in both directions.
        assert network.num_links == 2 * 5

    def test_primary_user_model(self):
        cfg = WorkloadConfig(
            topology="grid",
            topology_params={"rows": 3, "cols": 3},
            channel_model="primary_users",
            channel_params={
                "universal_size": 8,
                "num_users": 5,
                "radius": 1.2,
                "min_channels": 1,
            },
        )
        network = generate_network(cfg, seed=1)
        assert network.num_nodes == 9
        assert all(len(network.channels_of(n)) >= 1 for n in network.node_ids)

    def test_adversarial_model_uses_topology(self):
        cfg = WorkloadConfig(
            topology="ring",
            topology_params={"num_nodes": 5},
            channel_model="adversarial_min_overlap",
            channel_params={"set_size": 4, "overlap": 1},
        )
        network = generate_network(cfg, seed=0)
        assert network.min_span_ratio == pytest.approx(0.25)


class TestModes:
    def test_asymmetric_mode(self):
        cfg = WorkloadConfig(
            topology="asymmetric_random_geometric",
            topology_params={"num_nodes": 10, "min_range": 0.2, "max_range": 0.7},
            channel_model="common_channel_plus_random",
            channel_params={"universal_size": 5, "set_size": 2},
            mode="asymmetric",
        )
        network = generate_network(cfg, seed=2)
        assert not network.is_symmetric
        keys = {l.key for l in network.links()}
        assert any((b, a) not in keys for (a, b) in keys)

    def test_channel_dependent_mode(self):
        cfg = WorkloadConfig(
            topology="random_geometric",
            topology_params={"num_nodes": 10, "radius": 0.5},
            channel_model="homogeneous",
            channel_params={"num_channels": 4},
            mode="channel_dependent",
            propagation_params={"base_radius": 0.5, "range_decay": 0.5},
        )
        network = generate_network(cfg, seed=2)
        assert network.is_channel_dependent

    def test_asymmetric_mode_requires_matching_topology(self):
        with pytest.raises(ConfigurationError, match="together"):
            WorkloadConfig(
                topology="clique",
                topology_params={"num_nodes": 4},
                mode="asymmetric",
            )
        with pytest.raises(ConfigurationError, match="together"):
            WorkloadConfig(
                topology="asymmetric_random_geometric",
                topology_params={"num_nodes": 4, "min_range": 0.1, "max_range": 0.2},
            )

    def test_channel_dependent_requires_propagation_params(self):
        with pytest.raises(ConfigurationError, match="propagation_params"):
            WorkloadConfig(
                topology="random_geometric",
                topology_params={"num_nodes": 4, "radius": 0.5},
                mode="channel_dependent",
            )

    def test_propagation_params_rejected_elsewhere(self):
        with pytest.raises(ConfigurationError, match="only apply"):
            WorkloadConfig(
                topology="clique",
                topology_params={"num_nodes": 4},
                propagation_params={"base_radius": 1.0, "range_decay": 0.1},
            )

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown mode"):
            WorkloadConfig(
                topology="clique",
                topology_params={"num_nodes": 4},
                mode="quantum",
            )

    def test_repair_overlap_incompatible_with_asymmetric(self):
        cfg = WorkloadConfig(
            topology="asymmetric_random_geometric",
            topology_params={"num_nodes": 6, "min_range": 0.2, "max_range": 0.5},
            channel_model="uniform_random_subsets",
            channel_params={"universal_size": 8, "set_size": 2},
            mode="asymmetric",
            repair_overlap=True,
        )
        with pytest.raises(ConfigurationError, match="symmetric"):
            generate_network(cfg, seed=0)
