"""Unit tests for repro.net.network (the M2HeW model)."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkModelError
from repro.net import M2HeWNetwork, NodeSpec


def make(nodes, pairs, directed=False):
    if directed:
        return M2HeWNetwork(nodes, directed_adjacency=pairs)
    return M2HeWNetwork(nodes, adjacency=pairs)


class TestConstruction:
    def test_duplicate_node_ids_rejected(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(0, frozenset({1}))]
        with pytest.raises(NetworkModelError, match="duplicate"):
            make(nodes, [])

    def test_unknown_adjacency_node_rejected(self):
        with pytest.raises(NetworkModelError, match="unknown node"):
            make([NodeSpec(0, frozenset({0}))], [(0, 9)])

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkModelError, match="self-loop"):
            make([NodeSpec(0, frozenset({0}))], [(0, 0)])

    def test_needs_exactly_one_adjacency_kind(self):
        nodes = [NodeSpec(0, frozenset({0}))]
        with pytest.raises(NetworkModelError, match="exactly one"):
            M2HeWNetwork(nodes)
        with pytest.raises(NetworkModelError, match="exactly one"):
            M2HeWNetwork(nodes, adjacency=[], directed_adjacency=[])


class TestNeighborRelations:
    def test_neighbors_require_shared_channel(self, tiny_pair):
        assert tiny_pair.neighbors_on(0, 0) == {1}
        assert tiny_pair.neighbors_on(0, 1) == {1}
        # Channel 2 is only available to node 1, so no neighbors there.
        assert tiny_pair.neighbors_on(1, 2) == frozenset()

    def test_neighbors_on_unavailable_channel_empty(self, tiny_pair):
        assert tiny_pair.neighbors_on(0, 99) == frozenset()

    def test_degree_on(self, triangle):
        # Channel 0 is shared by everyone: degree 2 at each node.
        for nid in triangle.node_ids:
            assert triangle.degree_on(nid, 0) == 2
        # Channel 1 shared by 0 and 2 only.
        assert triangle.degree_on(0, 1) == 1
        assert triangle.degree_on(1, 1) == 0

    def test_discoverable_neighbors(self, triangle):
        assert triangle.discoverable_neighbors(0) == {1, 2}

    def test_hears_unknown_node_raises(self, triangle):
        with pytest.raises(NetworkModelError, match="unknown node"):
            triangle.hears(99)

    def test_radio_adjacent_pair_with_no_shared_channel_is_not_linked(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({1}))]
        network = make(nodes, [(0, 1)])
        assert network.num_links == 0
        assert network.discoverable_neighbors(0) == frozenset()
        # But they are radio-adjacent.
        assert network.hears(0) == {1}


class TestLinks:
    def test_symmetric_links_come_in_pairs(self, triangle):
        keys = {link.key for link in triangle.links()}
        for (a, b) in keys:
            assert (b, a) in keys

    def test_span_is_intersection(self, triangle):
        assert triangle.span(0, 1) == {0}
        assert triangle.span(0, 2) == {0, 1}
        assert triangle.span(1, 2) == {0, 2}

    def test_link_lookup_missing_raises(self, tiny_pair):
        with pytest.raises(NetworkModelError, match="no link"):
            tiny_pair.link(0, 0)

    def test_num_links(self, triangle):
        assert triangle.num_links == 6  # 3 undirected edges x 2 directions


class TestPaperParameters:
    def test_parameters_on_triangle(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.max_channel_set_size == 3  # node 2
        assert triangle.max_degree == 2  # everyone on channel 0
        # Worst span-ratio: link into node 2 with span {0} would not
        # exist; actual worst is span {0} into node 0 or 1 (|A| = 2)
        # vs spans of size 2 into node 2 (|A| = 3): 1/2 vs 2/3.
        assert triangle.min_span_ratio == pytest.approx(0.5)

    def test_rho_undefined_without_links(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({1}))]
        network = make(nodes, [(0, 1)])
        with pytest.raises(NetworkModelError, match="rho"):
            _ = network.min_span_ratio

    def test_max_degree_zero_without_links(self):
        network = make([NodeSpec(0, frozenset({0}))], [])
        assert network.max_degree == 0

    def test_universal_channel_set(self, triangle):
        assert triangle.universal_channel_set == {0, 1, 2}

    def test_parameter_summary_keys(self, triangle):
        summary = triangle.parameter_summary()
        assert set(summary) == {"N", "S", "Delta", "rho", "links"}

    def test_validate_passes_on_good_network(self, triangle):
        triangle.validate()


class TestAsymmetric:
    def test_directed_adjacency_one_way(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))]
        network = make(nodes, [(0, 1)], directed=True)  # 1 hears 0
        assert not network.is_symmetric
        assert network.hears(1) == {0}
        assert network.hears(0) == frozenset()
        assert network.num_links == 1
        assert network.link(0, 1).key == (0, 1)

    def test_directed_degree_counts_in_neighbors(self):
        nodes = [
            NodeSpec(0, frozenset({0})),
            NodeSpec(1, frozenset({0})),
            NodeSpec(2, frozenset({0})),
        ]
        network = make(nodes, [(0, 2), (1, 2)], directed=True)
        assert network.degree_on(2, 0) == 2
        assert network.degree_on(0, 0) == 0


class TestTransforms:
    def test_restricted_to_subset(self, triangle):
        sub = triangle.restricted_to([0, 2])
        assert sub.node_ids == [0, 2]
        assert sub.num_links == 2
        assert sub.span(0, 2) == {0, 1}

    def test_with_channel_assignment(self, tiny_pair):
        new = tiny_pair.with_channel_assignment({0: {5}, 1: {5, 6}})
        assert new.channels_of(0) == {5}
        assert new.span(0, 1) == {5}
        # Original untouched.
        assert tiny_pair.channels_of(0) == {0, 1}

    def test_iteration_order_sorted(self, triangle):
        assert [n.node_id for n in triangle] == [0, 1, 2]

    def test_contains(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle
