"""Unit tests for repro.analysis.progress."""

from __future__ import annotations

import pytest

from repro.analysis.progress import (
    CoverageCurve,
    coverage_curve,
    mean_coverage_curve,
    reliability_curve,
    time_to_fraction,
)
from repro.exceptions import ConfigurationError
from repro.sim.results import DiscoveryResult


def make_result(times, starts=None):
    coverage = {(0, i + 1): t for i, t in enumerate(times)}
    return DiscoveryResult(
        time_unit="slots",
        coverage=coverage,
        horizon=100.0,
        completed=all(t is not None for t in times),
        neighbor_tables={},
        start_times=starts or {0: 0.0},
        network_params={},
    )


class TestCoverageCurveType:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoverageCurve((1.0, 1.0), (0.5, 1.0))  # non-increasing times
        with pytest.raises(ConfigurationError):
            CoverageCurve((1.0, 2.0), (0.9, 0.5))  # decreasing fractions
        with pytest.raises(ConfigurationError):
            CoverageCurve((1.0,), (0.5, 1.0))  # misaligned

    def test_value_at(self):
        curve = CoverageCurve((1.0, 3.0), (0.5, 1.0))
        assert curve.value_at(0.5) == 0.0
        assert curve.value_at(1.0) == 0.5
        assert curve.value_at(2.9) == 0.5
        assert curve.value_at(10.0) == 1.0

    def test_first_time_reaching(self):
        curve = CoverageCurve((1.0, 3.0), (0.5, 1.0))
        assert curve.first_time_reaching(0.4) == 1.0
        assert curve.first_time_reaching(1.0) == 3.0

    def test_first_time_unreached(self):
        curve = CoverageCurve((1.0,), (0.5,))
        assert curve.first_time_reaching(0.9) is None

    def test_area_above(self):
        # Uncovered until t=2 (area 2), half-covered until t=4 (area 1),
        # fully covered after.
        curve = CoverageCurve((2.0, 4.0), (0.5, 1.0))
        assert curve.area_above(6.0) == pytest.approx(3.0)

    def test_area_validation(self):
        with pytest.raises(ConfigurationError):
            CoverageCurve((1.0,), (1.0,)).area_above(0.0)


class TestCoverageCurveFromResult:
    def test_steps(self):
        result = make_result([2.0, 2.0, 6.0, None])
        curve = coverage_curve(result)
        assert curve.times == (2.0, 6.0)
        assert curve.fractions == (0.5, 0.75)

    def test_complete_run_reaches_one(self):
        curve = coverage_curve(make_result([1.0, 5.0]))
        assert curve.fractions[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            coverage_curve(make_result([]))


class TestAggregates:
    def test_mean_curve(self):
        a = make_result([2.0, 4.0])
        b = make_result([4.0, 8.0])
        curve = mean_coverage_curve([a, b], grid=[1.0, 3.0, 5.0, 9.0])
        assert curve.value_at(1.0) == 0.0
        assert curve.value_at(3.0) == pytest.approx(0.25)  # a half, b zero
        assert curve.value_at(5.0) == pytest.approx(0.75)
        assert curve.value_at(9.0) == 1.0

    def test_reliability_curve(self):
        trials = [make_result([3.0]), make_result([7.0]), make_result([None])]
        curve = reliability_curve(trials, grid=[1.0, 5.0, 10.0])
        assert curve.fractions == (0.0, pytest.approx(1 / 3), pytest.approx(2 / 3))

    def test_reliability_after_all_started(self):
        r = make_result([20.0], starts={0: 15.0})
        curve = reliability_curve([r], grid=[6.0], after_all_started=True)
        assert curve.fractions == (1.0,)

    def test_time_to_fraction(self):
        trials = [make_result([2.0, 4.0]), make_result([6.0, 8.0])]
        assert time_to_fraction(trials, 1.0) == pytest.approx(6.0)  # median of 4, 8
        assert time_to_fraction(trials, 0.5) == pytest.approx(4.0)  # median of 2, 6

    def test_time_to_fraction_unreached(self):
        trials = [make_result([2.0, None])]
        assert time_to_fraction(trials, 1.0) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_coverage_curve([], grid=[1.0])
        with pytest.raises(ConfigurationError):
            mean_coverage_curve([make_result([1.0])], grid=[])
        with pytest.raises(ConfigurationError):
            reliability_curve([], grid=[1.0])
