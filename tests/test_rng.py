"""Unit tests for repro.sim.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import (
    RngFactory,
    derive_trial_seed,
    make_generator,
    spawn_generators,
)


class TestMakeGenerator:
    def test_deterministic_from_int(self):
        a = make_generator(5).random(4)
        b = make_generator(5).random(4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_generator(5).random(4)
        b = make_generator(6).random(4)
        assert not np.array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_independent_draws_differ(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(8).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRngFactory:
    def test_same_key_returns_same_object(self):
        factory = RngFactory(1)
        assert factory.stream("a") is factory.stream("a")

    def test_reproducible_across_factories(self):
        a = RngFactory(7).stream("node-3").random(5)
        b = RngFactory(7).stream("node-3").random(5)
        assert np.array_equal(a, b)

    def test_order_independent_derivation(self):
        f1 = RngFactory(7)
        f1.stream("x")
        a = f1.stream("y").random(5)
        f2 = RngFactory(7)
        b = f2.stream("y").random(5)  # "x" never requested
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        factory = RngFactory(7)
        a = factory.stream("a").random(8)
        b = factory.stream("b").random(8)
        assert not np.array_equal(a, b)

    def test_node_stream_helper(self):
        factory = RngFactory(7)
        assert factory.node_stream(4) is factory.stream("node-4")

    def test_fork_independent(self):
        parent = RngFactory(7)
        child = parent.fork("sub")
        a = parent.stream("k").random(8)
        b = child.stream("k").random(8)
        assert not np.array_equal(a, b)

    def test_fork_reproducible(self):
        a = RngFactory(7).fork("sub").stream("k").random(5)
        b = RngFactory(7).fork("sub").stream("k").random(5)
        assert np.array_equal(a, b)


class TestDeriveTrialSeed:
    def test_distinct_trials_distinct_streams(self):
        a = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 0))).random(8)
        b = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 1))).random(8)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 3))).random(8)
        b = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 3))).random(8)
        assert np.array_equal(a, b)

    def test_negative_trial_rejected(self):
        with pytest.raises(ValueError):
            derive_trial_seed(1, -1)
