"""Unit tests for repro.sim.rng."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.sim.rng import (
    RngFactory,
    derive_trial_seed,
    make_generator,
    spawn_generators,
)


class TestMakeGenerator:
    def test_deterministic_from_int(self):
        a = make_generator(5).random(4)
        b = make_generator(5).random(4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_generator(5).random(4)
        b = make_generator(6).random(4)
        assert not np.array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_independent_draws_differ(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(8).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRngFactory:
    def test_same_key_returns_same_object(self):
        factory = RngFactory(1)
        assert factory.stream("a") is factory.stream("a")

    def test_reproducible_across_factories(self):
        a = RngFactory(7).stream("node-3").random(5)
        b = RngFactory(7).stream("node-3").random(5)
        assert np.array_equal(a, b)

    def test_order_independent_derivation(self):
        f1 = RngFactory(7)
        f1.stream("x")
        a = f1.stream("y").random(5)
        f2 = RngFactory(7)
        b = f2.stream("y").random(5)  # "x" never requested
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        factory = RngFactory(7)
        a = factory.stream("a").random(8)
        b = factory.stream("b").random(8)
        assert not np.array_equal(a, b)

    def test_node_stream_helper(self):
        factory = RngFactory(7)
        assert factory.node_stream(4) is factory.stream("node-4")

    def test_fork_independent(self):
        parent = RngFactory(7)
        child = parent.fork("sub")
        a = parent.stream("k").random(8)
        b = child.stream("k").random(8)
        assert not np.array_equal(a, b)

    def test_fork_reproducible(self):
        a = RngFactory(7).fork("sub").stream("k").random(5)
        b = RngFactory(7).fork("sub").stream("k").random(5)
        assert np.array_equal(a, b)


class TestDeriveTrialSeed:
    def test_distinct_trials_distinct_streams(self):
        a = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 0))).random(8)
        b = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 1))).random(8)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 3))).random(8)
        b = np.random.Generator(np.random.PCG64(derive_trial_seed(1, 3))).random(8)
        assert np.array_equal(a, b)

    def test_negative_trial_rejected(self):
        with pytest.raises(ValueError):
            derive_trial_seed(1, -1)


class TestDeriveTrialSeedProperties:
    """Grid-level properties the parallel campaign layer depends on."""

    def test_no_collisions_across_experiment_trial_grid(self):
        # Every (base_seed, trial) cell must map to a distinct PRNG
        # state: a collision would make two "independent" trials share
        # their entire randomness stream.
        states = {
            tuple(derive_trial_seed(base, trial).generate_state(4).tolist())
            for base in range(25)
            for trial in range(40)
        }
        assert len(states) == 25 * 40

    def test_trial_seed_distinct_from_bare_base_seed(self):
        bare = np.random.SeedSequence(3).generate_state(4)
        derived = derive_trial_seed(3, 0).generate_state(4)
        assert not np.array_equal(bare, derived)

    def test_stable_across_process_boundary(self):
        # The parallel executor derives seeds in the parent and workers
        # replay them; a fresh interpreter (spawn-like, no inherited
        # state) must derive the identical state from (base, trial).
        expected = derive_trial_seed(123, 7).generate_state(4).tolist()
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.sim.rng import derive_trial_seed;"
                "print(derive_trial_seed(123, 7).generate_state(4).tolist())",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == str(expected)

    def test_entropy_none_draws_fresh_state(self):
        a = derive_trial_seed(None, 0).generate_state(2)
        b = derive_trial_seed(None, 0).generate_state(2)
        assert not np.array_equal(a, b)


class TestRngStreamRegression:
    """Pinned seed→value pairs: any accidental change to the seed
    derivation or stream layout (entropy handling, spawn keys, key
    hashing) fails these loudly instead of silently shifting every
    archived experiment."""

    def test_pinned_trial_seed_states(self):
        assert derive_trial_seed(0, 0).generate_state(2).tolist() == [
            3757552657,
            2018376492,
        ]
        assert derive_trial_seed(42, 3).generate_state(2).tolist() == [
            3276785861,
            872644253,
        ]

    def test_pinned_factory_stream_draw(self):
        draws = (
            RngFactory(derive_trial_seed(7, 1))
            .stream("node-0")
            .integers(0, 2**16, 4)
            .tolist()
        )
        assert draws == [35786, 12160, 8900, 5092]

    def test_pinned_simulation_outcome(self):
        # End-to-end pin: a whole trial's coverage map from a known
        # seed. Catches RNG-consumption-order changes inside the
        # engines, which the state pins above cannot see.
        from repro.net import M2HeWNetwork, NodeSpec
        from repro.sim.runner import run_synchronous

        net = M2HeWNetwork(
            [
                NodeSpec(0, frozenset({0, 1})),
                NodeSpec(1, frozenset({0, 1, 2})),
            ],
            adjacency=[(0, 1)],
        )
        expected = {
            0: {(0, 1): 15.0, (1, 0): 1.0},
            1: {(0, 1): 33.0, (1, 0): 10.0},
            2: {(0, 1): 4.0, (1, 0): 28.0},
        }
        for trial, coverage in expected.items():
            result = run_synchronous(
                net,
                "algorithm3",
                seed=derive_trial_seed(42, trial),
                max_slots=100_000,
                delta_est=4,
            )
            assert result.coverage == coverage, trial
