"""Unit tests for Algorithm 3 (FlatSyncDiscovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm3 import FlatSyncDiscovery
from repro.core.base import Mode
from repro.exceptions import ConfigurationError


def make(channels=(0, 1, 2), delta_est=12, seed=0):
    return FlatSyncDiscovery(
        0, channels, np.random.default_rng(seed), delta_est=delta_est
    )


class TestProbability:
    def test_formula(self):
        p = make(channels=(0, 1, 2), delta_est=12)
        assert p.transmit_probability(0) == pytest.approx(3 / 12)

    def test_capped_at_half(self):
        p = make(channels=tuple(range(20)), delta_est=4)
        assert p.transmit_probability(0) == 0.5

    def test_constant_across_slots(self):
        # The whole point of Algorithm 3: same probability every slot so
        # misaligned starts do not matter.
        p = make()
        probs = {p.transmit_probability(i) for i in range(1000)}
        assert len(probs) == 1

    def test_different_nodes_may_differ(self):
        a = make(channels=(0,), delta_est=12)
        b = make(channels=(0, 1, 2, 3), delta_est=12)
        assert a.transmit_probability(0) != b.transmit_probability(0)

    def test_delta_est_validated(self):
        with pytest.raises(ConfigurationError):
            make(delta_est=0)


class TestBehavior:
    def test_empirical_rate(self):
        p = make(channels=(0,), delta_est=10, seed=5)  # p = 0.1
        n = 30_000
        hits = sum(p.decide_slot(i).mode is Mode.TRANSMIT for i in range(n))
        assert hits / n == pytest.approx(0.1, abs=0.01)

    def test_channels_uniform(self):
        p = make(channels=(3, 5, 7), seed=2)
        counts = {3: 0, 5: 0, 7: 0}
        n = 30_000
        for i in range(n):
            counts[p.decide_slot(i).channel] += 1
        for c in counts.values():
            assert c / n == pytest.approx(1 / 3, abs=0.02)
