"""Property-based tests (hypothesis) for the drifting clock models."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.sim.clock import (
    ConstantDriftClock,
    PiecewiseDriftClock,
    RandomWalkDriftClock,
    SinusoidalDriftClock,
)


@st.composite
def piecewise_clocks(draw):
    bound = draw(st.floats(min_value=0.0, max_value=0.3))
    segments = draw(st.integers(min_value=1, max_value=5))
    breakpoints = sorted(
        draw(
            st.sets(
                st.floats(min_value=0.1, max_value=50.0),
                min_size=segments - 1,
                max_size=segments - 1,
            )
        )
    )
    rates = [
        1.0 + draw(st.floats(min_value=-bound, max_value=bound))
        for _ in range(segments)
    ]
    offset = draw(st.floats(min_value=-100.0, max_value=100.0))
    return PiecewiseDriftClock(breakpoints, rates, offset=offset, drift_bound=bound)


class TestClockProperties:
    @given(piecewise_clocks(), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_piecewise(self, clock, t):
        local = clock.local_from_real(t)
        assert abs(clock.real_from_local(local) - t) < 1e-6

    @given(
        piecewise_clocks(),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=1e-6, max_value=50.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounded_drift_eq1(self, clock, t, dt):
        # Paper eq. (1): (1-d) dt <= C(t+dt) - C(t) <= (1+d) dt.
        delta = clock.drift_bound
        elapsed = clock.elapsed_local(t, t + dt)
        assert (1 - delta) * dt - 1e-9 <= elapsed <= (1 + delta) * dt + 1e-9

    @given(
        piecewise_clocks(),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=1e-3, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_strictly_monotone(self, clock, t, dt):
        assert clock.local_from_real(t + dt) > clock.local_from_real(t)

    @given(
        st.floats(min_value=0.0, max_value=0.3),
        st.floats(min_value=-0.3, max_value=0.3),
        st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_constant_clock_roundtrip(self, bound, drift, t):
        drift = max(-bound, min(bound, drift))
        clock = ConstantDriftClock(drift, offset=3.0, drift_bound=bound)
        assert abs(clock.real_from_local(clock.local_from_real(t)) - t) < 1e-9

    @given(
        st.floats(min_value=0.01, max_value=1.0 / 7.0),
        st.floats(min_value=1.0, max_value=40.0),
        st.floats(min_value=0.0, max_value=6.28),
        st.floats(min_value=0.0, max_value=60.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_sinusoidal_roundtrip_and_bound(self, amp, period, phase, t):
        clock = SinusoidalDriftClock(amp, period, phase=phase, offset=-5.0)
        local = clock.local_from_real(t)
        assert abs(clock.real_from_local(local) - t) < 1e-5
        elapsed = clock.elapsed_local(t, t + 1.0)
        assert (1 - amp) - 1e-9 <= elapsed <= (1 + amp) + 1e-9

    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.01, max_value=1.0 / 7.0),
        st.floats(min_value=0.0, max_value=80.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_walk_frame_lengths_within_eq10(self, seed, bound, start):
        # Eq. (10): frame real length within [L/(1+d), L/(1-d)].
        clock = RandomWalkDriftClock(
            bound, np.random.default_rng(seed), mean_segment=3.0
        )
        L = 1.0
        local_start = clock.local_from_real(start)
        a = clock.real_from_local(local_start)
        b = clock.real_from_local(local_start + L)
        length = b - a
        assert L / (1 + bound) - 1e-9 <= length <= L / (1 - bound) + 1e-9
