"""Protocol conformance: one contract suite over every registry entry.

Every synchronous protocol — the paper's algorithms, the tournament
rivals (Mc-Dis, the robust variants) and the baselines — must clear the
same behavioral bar. The suite parametrizes directly over the registry
(:data:`repro.core.registry.PROTOCOL_SPECS`), so registering a protocol
*is* enrolling it:

* **completeness** — discovers every neighbor on the conformance
  network within the slot budget;
* **decision validity & table monotonicity** — decisions respect the
  single-transceiver model, the neighbor table only ever grows, and
  only true neighbors enter it;
* **bitwise determinism** — same seed, same result, run to run;
* **stream isolation** — a node's behavior depends only on its own
  stream, not on what other streams were drawn (the RngFactory
  order-independence contract, observed at the protocol level);
* **fault degradation** — heavier erasures never *improve* the
  protocol (censored-time/coverage monotonicity);
* **engine honesty** — the registry's ``vectorized`` flag matches what
  the protocol instance actually claims via ``transmit_probability``.
"""

from __future__ import annotations

import pytest

from tests.protocol_conformance import (
    DELTA_EST,
    MAX_SLOTS,
    SYNC_SPECS,
    assert_valid_decision,
    build_protocol,
    conformance_network,
    decision_trace,
    node_stream,
    run_pair_exchange,
)
from repro.analysis.robustness import aggregate_point, is_monotone_non_improving
from repro.core.registry import protocol_spec
from repro.sim.rng import derive_trial_seed
from repro.sim.runner import experiment_runner_params, run_synchronous

SPEC_PARAMS = pytest.mark.parametrize(
    "spec", SYNC_SPECS, ids=[s.name for s in SYNC_SPECS]
)


def reference_result(network, name, seed, *, erasure_prob=0.0, max_slots=MAX_SLOTS):
    return run_synchronous(
        network,
        name,
        seed=seed,
        engine="reference",
        erasure_prob=erasure_prob,
        stop_on_full_coverage=True,
        **experiment_runner_params(
            name, network, delta_est=DELTA_EST, max_slots=max_slots
        ),
    )


class TestDiscoveryCompleteness:
    @SPEC_PARAMS
    def test_completes_and_tables_match_truth(self, spec):
        network = conformance_network()
        result = reference_result(network, spec.name, seed=2024)
        assert result.completed, spec.name
        for owner, table in result.neighbor_tables.items():
            assert set(table) == set(network.hears(owner))


class TestDecisionsAndTable:
    @SPEC_PARAMS
    def test_decisions_respect_model(self, spec):
        network = conformance_network()
        protocol = build_protocol(spec, network, 1, node_stream(5, 1))
        for slot in range(300):
            assert_valid_decision(protocol, protocol.decide_slot(slot))

    @SPEC_PARAMS
    def test_neighbor_count_monotone_and_truthful(self, spec):
        network = conformance_network()
        _, _, history = run_pair_exchange(spec, network, seed=7, slots=2_000)
        assert all(b >= a for a, b in zip(history, history[1:])), spec.name
        assert history[-1] <= 1  # only node 1 can ever enter node 0's table

    @SPEC_PARAMS
    def test_pair_eventually_discovers(self, spec):
        network = conformance_network()
        proto_a, proto_b, _ = run_pair_exchange(
            spec, network, seed=7, slots=MAX_SLOTS
        )
        assert 1 in proto_a.neighbor_table
        assert 0 in proto_b.neighbor_table


class TestBitwiseDeterminism:
    @SPEC_PARAMS
    def test_same_seed_same_result(self, spec):
        network = conformance_network()
        first = reference_result(network, spec.name, seed=99)
        second = reference_result(network, spec.name, seed=99)
        assert first.to_dict() == second.to_dict()

    @SPEC_PARAMS
    def test_different_seeds_allowed_to_differ(self, spec):
        # Not a strict requirement for deterministic baselines, but the
        # seeds must at least both complete — guards against a protocol
        # ignoring its rng by crashing on an unusual stream state.
        network = conformance_network()
        assert reference_result(network, spec.name, seed=1).completed
        assert reference_result(network, spec.name, seed=2).completed


class TestStreamIsolation:
    @SPEC_PARAMS
    def test_foreign_stream_draws_do_not_change_behavior(self, spec):
        network = conformance_network()
        quiet = build_protocol(spec, network, 0, node_stream(13, 0))
        noisy = build_protocol(
            spec, network, 0, node_stream(13, 0, warm_streams=5)
        )
        assert decision_trace(quiet, 500) == decision_trace(noisy, 500)


class TestFaultDegradation:
    @SPEC_PARAMS
    def test_erasures_never_improve(self, spec):
        network = conformance_network()
        points = []
        for intensity in (0.0, 0.4):
            results = [
                reference_result(
                    network,
                    spec.name,
                    seed=derive_trial_seed(4321, t),
                    erasure_prob=intensity,
                    max_slots=5_000,
                )
                for t in range(5)
            ]
            points.append(aggregate_point(intensity, results))
        assert is_monotone_non_improving(points), spec.name


class TestEngineHonesty:
    @SPEC_PARAMS
    def test_vectorized_flag_matches_template_claim(self, spec):
        network = conformance_network()
        protocol = build_protocol(spec, network, 0, node_stream(3, 0))
        claims_template = protocol.transmit_probability(0) is not None
        assert claims_template == spec.vectorized, (
            f"{spec.name}: registry says vectorized={spec.vectorized} but "
            f"transmit_probability(0) "
            f"{'is set' if claims_template else 'is None'}"
        )

    @SPEC_PARAMS
    def test_spec_lookup_roundtrip(self, spec):
        assert protocol_spec(spec.name) is spec
