"""Unit tests for repro.core.base (protocol interfaces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import (
    FrameDecision,
    Mode,
    SlotDecision,
    SynchronousProtocol,
    UniformChannelMixin,
)
from repro.exceptions import ConfigurationError


class TestSlotDecision:
    def test_factories(self):
        assert SlotDecision.transmit(3).mode is Mode.TRANSMIT
        assert SlotDecision.listen(3).channel == 3
        assert SlotDecision.quiet().channel is None

    def test_quiet_with_channel_rejected(self):
        with pytest.raises(ConfigurationError, match="quiet"):
            SlotDecision(Mode.QUIET, 3)

    def test_active_without_channel_rejected(self):
        with pytest.raises(ConfigurationError, match="requires a channel"):
            SlotDecision(Mode.TRANSMIT, None)
        with pytest.raises(ConfigurationError, match="requires a channel"):
            SlotDecision(Mode.LISTEN, None)


class TestFrameDecision:
    def test_same_validation(self):
        with pytest.raises(ConfigurationError):
            FrameDecision(Mode.QUIET, 1)
        with pytest.raises(ConfigurationError):
            FrameDecision(Mode.LISTEN, None)


class _FixedProtocol(UniformChannelMixin, SynchronousProtocol):
    """Minimal protocol used to exercise the shared base machinery."""

    def __init__(self, node_id, channels, rng, p=0.5):
        super().__init__(node_id, channels, rng)
        self._p = p

    def decide_slot(self, local_slot):
        return self._uniform_slot_decision(self._p)


class TestDiscoveryProtocolBase:
    def test_empty_channels_rejected(self):
        with pytest.raises(ConfigurationError, match="no available channels"):
            _FixedProtocol(0, [], np.random.default_rng(0))

    def test_hello_carries_own_channels(self):
        p = _FixedProtocol(4, [3, 1], np.random.default_rng(0))
        msg = p.hello()
        assert msg.sender == 4
        assert msg.channels == {1, 3}

    def test_random_channel_only_from_available(self):
        p = _FixedProtocol(0, [2, 5, 9], np.random.default_rng(0))
        seen = {p._random_channel() for _ in range(200)}
        assert seen == {2, 5, 9}

    def test_decision_channel_always_available(self):
        p = _FixedProtocol(0, [7, 8], np.random.default_rng(1))
        for slot in range(100):
            d = p.decide_slot(slot)
            assert d.channel in {7, 8}
            assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)

    def test_transmit_frequency_matches_probability(self):
        p = _FixedProtocol(0, [0], np.random.default_rng(2), p=0.25)
        n = 20_000
        transmits = sum(
            p.decide_slot(i).mode is Mode.TRANSMIT for i in range(n)
        )
        assert transmits / n == pytest.approx(0.25, abs=0.02)

    def test_on_receive_updates_table(self):
        p = _FixedProtocol(0, [0, 1], np.random.default_rng(0))
        from repro.core.messages import HelloMessage

        assert p.on_receive(HelloMessage(1, frozenset({1, 2})), 3.0)
        assert p.neighbor_table.as_dict() == {1: frozenset({1})}
