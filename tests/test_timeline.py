"""Tests for the ASCII timeline renderer."""

from __future__ import annotations

import pytest

from repro.analysis.alignment import synthesize_frames
from repro.analysis.timeline import render_timeline, render_trace
from repro.exceptions import ConfigurationError
from repro.sim.clock import ConstantDriftClock, PerfectClock


def frames(node_id=0, drift=0.0, count=5, L=3.0):
    clock = ConstantDriftClock(drift, drift_bound=max(abs(drift), 1e-9))
    return synthesize_frames(clock, L, 0.0, count, node_id=node_id)


class TestRenderTimeline:
    def test_one_line_per_node_plus_axis(self):
        out = render_timeline(
            {0: frames(0), 1: frames(1)}, start=0.0, end=10.0, width=60
        )
        lines = out.splitlines()
        assert len(lines) == 4  # two nodes + axis + labels
        assert lines[0].startswith("node   0")
        assert lines[1].startswith("node   1")

    def test_boundaries_marked(self):
        out = render_timeline({0: frames(0)}, start=0.0, end=6.0, width=60)
        row = out.splitlines()[0]
        assert "|" in row
        assert "." in row  # slot boundaries

    def test_quiet_fill(self):
        out = render_timeline({0: frames(0)}, start=0.0, end=6.0, width=60)
        assert "q" in out  # synthesized frames are QUIET

    def test_window_clips_frames(self):
        out = render_timeline({0: frames(0, count=10)}, 0.0, 3.0, width=40)
        row = out.splitlines()[0]
        assert len(row) == len("node   0 ") + 40

    def test_drifted_frames_shorter(self):
        fast = render_timeline({0: frames(0, drift=1 / 7)}, 0.0, 12.0, width=84)
        slow = render_timeline({0: frames(0, drift=-1 / 7)}, 0.0, 12.0, width=84)
        # The fast clock packs more frame boundaries into the window.
        assert fast.splitlines()[0].count("|") >= slow.splitlines()[0].count("|")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_timeline({0: frames()}, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            render_timeline({0: frames()}, 0.0, 5.0, width=3)
        with pytest.raises(ConfigurationError):
            render_timeline({}, 0.0, 5.0)


class TestRenderTrace:
    def test_from_engine_trace(self):
        from repro.net import build_network, channels, topology
        from repro.sim.runner import run_asynchronous
        from repro.sim.trace import ExecutionTrace

        net = build_network(topology.clique(3), channels.homogeneous(3, 2))
        trace = ExecutionTrace()
        run_asynchronous(
            net,
            seed=1,
            delta_est=4,
            max_frames_per_node=20,
            drift_bound=0.1,
            stop_on_full_coverage=False,
            trace=trace,
        )
        out = render_trace(trace, 0.0, 10.0, width=80)
        lines = out.splitlines()
        assert len(lines) == 3 + 2
        assert any("T" in line or "L" in line for line in lines[:3])

    def test_node_selection(self):
        out = render_timeline({0: frames(0), 5: frames(5)}, 0.0, 6.0)
        assert "node   5" in out
