"""Unit tests for the baseline protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.birthday import BirthdayProtocol, optimal_birthday_probability
from repro.baselines.deterministic_scan import DeterministicScanProtocol
from repro.baselines.universal_sweep import UniversalSweepProtocol
from repro.core.base import Mode
from repro.exceptions import ConfigurationError


class TestOptimalBirthdayProbability:
    def test_formula(self):
        assert optimal_birthday_probability(1) == 0.5
        assert optimal_birthday_probability(2) == 0.5
        assert optimal_birthday_probability(10) == pytest.approx(0.1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            optimal_birthday_probability(0)


class TestBirthdayProtocol:
    def make(self, **kwargs):
        defaults = dict(
            node_id=0,
            channels=(0, 1),
            rng=np.random.default_rng(0),
            channel=1,
            delta_est=4,
        )
        defaults.update(kwargs)
        return BirthdayProtocol(**defaults)

    def test_fixed_channel(self):
        p = self.make()
        assert all(p.decide_slot(i).channel == 1 for i in range(50))

    def test_channel_must_be_available(self):
        with pytest.raises(ConfigurationError, match="not in its available"):
            self.make(channel=9)

    def test_needs_probability_or_delta_est(self):
        with pytest.raises(ConfigurationError, match="transmit_prob or delta_est"):
            BirthdayProtocol(
                0, (0,), np.random.default_rng(0), channel=0
            )

    def test_explicit_probability_respected(self):
        p = self.make(transmit_prob=1.0, delta_est=None)
        assert all(p.decide_slot(i).mode is Mode.TRANSMIT for i in range(20))

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError, match="transmit_prob"):
            self.make(transmit_prob=0.0, delta_est=None)

    def test_empirical_rate(self):
        p = self.make(delta_est=8, rng=np.random.default_rng(3))
        n = 20_000
        hits = sum(p.decide_slot(i).mode is Mode.TRANSMIT for i in range(n))
        assert hits / n == pytest.approx(1 / 8, abs=0.01)


class TestUniversalSweep:
    def make(self, channels=(0, 2), universal=(0, 1, 2, 3), seed=0):
        return UniversalSweepProtocol(
            0, channels, np.random.default_rng(seed), list(universal), delta_est=4
        )

    def test_channel_for_slot_cycles(self):
        p = self.make()
        assert [p.channel_for_slot(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_quiet_on_unavailable_channel(self):
        p = self.make(channels=(0, 2))
        # Slots 1 and 3 are dedicated to channels 1 and 3, unavailable here.
        assert p.decide_slot(1).mode is Mode.QUIET
        assert p.decide_slot(3).mode is Mode.QUIET
        assert p.decide_slot(0).mode in (Mode.TRANSMIT, Mode.LISTEN)

    def test_universal_must_cover_available(self):
        with pytest.raises(ConfigurationError, match="missing from"):
            self.make(channels=(0, 9))

    def test_duplicate_universal_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            self.make(universal=(0, 0, 1, 2))

    def test_universal_size(self):
        assert self.make().universal_size == 4


class TestDeterministicScan:
    def make(self, node_id=1, channels=(0, 1), universal=(0, 1), n_max=3):
        return DeterministicScanProtocol(
            node_id,
            channels,
            np.random.default_rng(0),
            list(universal),
            id_space_size=n_max,
        )

    def test_epoch_length(self):
        assert self.make().epoch_length == 6

    def test_schedule_position(self):
        p = self.make()
        # Slots 0..2: channel 0, speakers 0..2; slots 3..5: channel 1.
        assert p.schedule_position(0) == (0, 0)
        assert p.schedule_position(2) == (0, 2)
        assert p.schedule_position(3) == (1, 0)
        assert p.schedule_position(5) == (1, 2)
        assert p.schedule_position(6) == (0, 0)  # wraps

    def test_speaks_only_in_own_slot(self):
        p = self.make(node_id=1)
        modes = [p.decide_slot(i).mode for i in range(6)]
        assert modes[1] is Mode.TRANSMIT  # channel 0, speaker 1
        assert modes[4] is Mode.TRANSMIT  # channel 1, speaker 1
        assert all(
            m is Mode.LISTEN for j, m in enumerate(modes) if j not in (1, 4)
        )

    def test_quiet_when_channel_unavailable(self):
        p = self.make(channels=(0,), universal=(0, 1))
        assert p.decide_slot(4).mode is Mode.QUIET  # channel 1 block

    def test_node_id_must_fit_id_space(self):
        with pytest.raises(ConfigurationError, match="outside id space"):
            self.make(node_id=5, n_max=3)

    def test_deterministic_no_randomness(self):
        a = self.make()
        b = self.make()
        for i in range(12):
            da, db = a.decide_slot(i), b.decide_slot(i)
            assert (da.mode, da.channel) == (db.mode, db.channel)
