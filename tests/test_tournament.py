"""Unit tests for repro.analysis.tournament."""

from __future__ import annotations

import pytest

from repro.analysis.tournament import (
    DEFAULT_MAX_SLOTS,
    DEFAULT_TRIALS,
    TournamentCell,
    default_league,
    run_tournament,
)
from repro.exceptions import ConfigurationError
from repro.workloads.generator import WorkloadConfig

TINY_WORKLOAD = WorkloadConfig(
    topology="clique",
    topology_params={"num_nodes": 4},
    channel_model="homogeneous",
    channel_params={"num_channels": 2},
)

TINY_CELLS = (
    TournamentCell(name="clean", workload=TINY_WORKLOAD, delta_est=4),
    TournamentCell(
        name="lossy",
        workload=TINY_WORKLOAD,
        delta_est=4,
        fault_preset="flat_loss",
    ),
)

TINY_PROTOCOLS = ("algorithm3", "robust_flat", "mcdis")


def tiny_tournament(**kwargs):
    kwargs.setdefault("cells", TINY_CELLS)
    kwargs.setdefault("protocols", TINY_PROTOCOLS)
    kwargs.setdefault("trials", 3)
    kwargs.setdefault("max_slots", 10_000)
    return run_tournament(**kwargs)


class TestCellValidation:
    def test_rejects_double_underscore_names(self):
        with pytest.raises(ConfigurationError, match="cell name"):
            TournamentCell(name="a__b", workload=TINY_WORKLOAD, delta_est=4)

    def test_rejects_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="fault preset"):
            TournamentCell(
                name="x",
                workload=TINY_WORKLOAD,
                delta_est=4,
                fault_preset="earthquake",
            )


class TestDefaultLeague:
    def test_cells_are_valid_and_unique(self):
        league = default_league()
        names = [c.name for c in league]
        assert len(set(names)) == len(names)
        assert len(league) >= 3
        assert any(c.fault_preset for c in league)
        assert any(c.fault_preset is None for c in league)

    def test_defaults_are_sane(self):
        assert DEFAULT_TRIALS >= 2
        assert DEFAULT_MAX_SLOTS >= 10_000


class TestRunTournament:
    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            tiny_tournament(protocols=("algorithm3",))
        with pytest.raises(ConfigurationError, match="unknown synchronous"):
            tiny_tournament(protocols=("algorithm3", "algorithm9"))
        with pytest.raises(ConfigurationError, match="duplicate cell"):
            tiny_tournament(cells=(TINY_CELLS[0], TINY_CELLS[0]))
        with pytest.raises(ConfigurationError, match="at least one cell"):
            tiny_tournament(cells=())

    def test_standings_cover_every_cell_and_protocol(self):
        result = tiny_tournament()
        assert set(result.standings) == {c.name for c in TINY_CELLS}
        for standings in result.standings.values():
            assert sorted(s.protocol for s in standings) == sorted(TINY_PROTOCOLS)
            for s in standings:
                assert 0.0 <= s.completed_fraction <= 1.0
                assert s.summary.count == 3
                assert 0 <= s.wins + s.losses <= len(TINY_PROTOCOLS) - 1

    def test_standings_sorted_deterministically(self):
        result = tiny_tournament()
        for standings in result.standings.values():
            keys = [
                (-s.wins, s.losses, s.summary.mean, s.protocol)
                for s in standings
            ]
            assert keys == sorted(keys)

    def test_overall_totals_sum_cell_records(self):
        result = tiny_tournament()
        overall = result.overall()
        assert sorted(s.protocol for s in overall) == sorted(TINY_PROTOCOLS)
        for standing in overall:
            cell_wins = sum(
                s.wins
                for standings in result.standings.values()
                for s in standings
                if s.protocol == standing.protocol
            )
            assert standing.wins == cell_wins
            assert standing.summary.count == 3 * len(TINY_CELLS)

    def test_reproducible_render(self):
        first = tiny_tournament().render()
        second = tiny_tournament().render()
        assert first == second
        assert "league totals" in first

    def test_outcomes_named_cell_protocol_with_full_trials(self):
        result = tiny_tournament()
        by_name = {o.spec.name: o for o in result.outcomes}
        assert set(by_name) == {
            f"{cell.name}__{protocol}"
            for cell in TINY_CELLS
            for protocol in TINY_PROTOCOLS
        }
        for outcome in result.outcomes:
            assert [r.metadata["trial"] for r in outcome.results] == [0, 1, 2]
            assert outcome.spec.network_seed == 0


class TestTournamentArchives:
    def test_archive_bytes_invariant_under_workers(self, tmp_path):
        dirs = {}
        for workers in (1, 2):
            out = tmp_path / f"w{workers}"
            tiny_tournament(output_dir=out, max_workers=workers)
            dirs[workers] = out
        names = sorted(p.name for p in dirs[1].iterdir())
        assert "manifest.json" in names
        assert len(names) == len(TINY_CELLS) * len(TINY_PROTOCOLS) + 1
        for name in names:
            assert (dirs[1] / name).read_bytes() == (
                dirs[2] / name
            ).read_bytes(), name

    def test_archive_verifies(self, tmp_path):
        from repro.resilience import verify_archive

        tiny_tournament(output_dir=tmp_path)
        assert verify_archive(tmp_path).ok
