"""Tests for the resilience building blocks: atomic writes, hashing,
retry policy, chaos plans, checkpoint journals and archive verification."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.exceptions import ArchiveCorruptionError, ConfigurationError
from repro.resilience import (
    ChaosEvent,
    ChaosInjectedFailure,
    ChaosPlan,
    RetryPolicy,
    TrialJournal,
    VerificationReport,
    atomic_write_text,
    backoff_delay,
    campaign_fingerprint,
    flip_byte,
    journal_path,
    parse_chaos_spec,
    sha256_of_bytes,
    sha256_of_file,
    sha256_of_text,
    truncate_file,
    verify_archive,
)
from repro.resilience.verify import ARCHIVE_SCHEMA_VERSION


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}\n')
        assert target.read_text() == '{"a": 1}\n'

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_tmp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        target.write_text("old")
        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(RuntimeError):
            atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def _boom(*_args):
    raise RuntimeError("injected rename failure")


class TestHashes:
    def test_text_matches_bytes(self):
        assert sha256_of_text("abc") == sha256_of_bytes(b"abc")

    def test_file_matches_text(self, tmp_path):
        target = tmp_path / "f.txt"
        atomic_write_text(target, "payload")
        assert sha256_of_file(target) == sha256_of_text("payload")


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.quarantine

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"max_total_retries": -1},
            {"pool_downgrade_after": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, backoff_factor=2.0, max_delay=0.5, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [backoff_delay(policy, a, rng) for a in range(5)]
        assert delays[:3] == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)]
        assert delays[3] == delays[4] == pytest.approx(0.5)

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(jitter=0.5)
        a = [backoff_delay(policy, i, np.random.default_rng(7)) for i in range(3)]
        b = [backoff_delay(policy, i, np.random.default_rng(7)) for i in range(3)]
        assert a == b

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            backoff_delay(RetryPolicy(), -1, np.random.default_rng(0))


class TestChaosPlan:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(trial=-1)
        with pytest.raises(ConfigurationError):
            ChaosEvent(trial=0, mode="explode")
        with pytest.raises(ConfigurationError):
            ChaosEvent(trial=0, times=0)

    def test_fires_counts_attempts(self):
        event = ChaosEvent(trial=3, times=2)
        assert event.fires(0) and event.fires(1) and not event.fires(2)
        assert ChaosEvent(trial=3, times=-1).fires(10**6)

    def test_strike_raises_for_covered_chunk(self):
        plan = ChaosPlan(events=(ChaosEvent(trial=3, mode="raise"),))
        with pytest.raises(ChaosInjectedFailure):
            plan.strike((2, 3), attempt=0)
        plan.strike((2, 3), attempt=1)  # recovered
        plan.strike((0, 1), attempt=0)  # other chunk untouched

    def test_exit_mode_degrades_in_parent_process(self):
        # Outside a pool worker an exit event must not kill the test
        # process; it degrades to a soft failure.
        plan = ChaosPlan(events=(ChaosEvent(trial=0, mode="exit"),))
        with pytest.raises(ChaosInjectedFailure):
            plan.strike((0,), attempt=0)

    def test_timeout_mode_is_collection_side(self):
        plan = ChaosPlan(events=(ChaosEvent(trial=1, mode="timeout"),))
        plan.strike((1,), attempt=0)  # no-op in the worker
        assert plan.times_out((0, 1), attempt=0)
        assert not plan.times_out((0, 1), attempt=1)

    def test_parse_spec(self):
        plan = parse_chaos_spec("raise@3, exit@0x2, timeout@5x-1")
        assert plan.events == (
            ChaosEvent(trial=3, mode="raise", times=1),
            ChaosEvent(trial=0, mode="exit", times=2),
            ChaosEvent(trial=5, mode="timeout", times=-1),
        )

    @pytest.mark.parametrize("spec", ["", "bad@1", "raise@", "raise@1x0", "@3"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_chaos_spec(spec)


class TestTamperHelpers:
    def test_truncate(self, tmp_path):
        f = tmp_path / "f.bin"
        f.write_bytes(b"0123456789")
        truncate_file(f, 4)
        assert f.read_bytes() == b"0123"

    def test_flip_byte(self, tmp_path):
        f = tmp_path / "f.bin"
        f.write_bytes(b"\x00\x00")
        flip_byte(f, 1)
        assert f.read_bytes() == b"\x00\xff"
        with pytest.raises(ConfigurationError):
            flip_byte(f, 5)


FP = campaign_fingerprint({"name": "e1", "trials": 3})


class TestTrialJournal:
    def test_round_trip(self, tmp_path):
        with TrialJournal.open(tmp_path, "e1", FP) as journal:
            assert journal.restored == {}
            journal.record(0, {"completed": True})
            journal.record(2, {"completed": False})
        reopened = TrialJournal.open(tmp_path, "e1", FP)
        assert reopened.restored == {0: {"completed": True}, 2: {"completed": False}}
        reopened.close()

    def test_fingerprint_is_order_independent(self):
        assert campaign_fingerprint({"a": 1, "b": 2}) == campaign_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        TrialJournal.open(tmp_path, "e1", FP).close()
        with pytest.raises(ConfigurationError):
            TrialJournal.open(tmp_path, "e1", campaign_fingerprint({"other": 1}))

    def test_torn_final_line_tolerated(self, tmp_path):
        with TrialJournal.open(tmp_path, "e1", FP) as journal:
            journal.record(0, {"ok": 1})
        path = journal_path(tmp_path, "e1")
        with open(path, "a") as handle:
            handle.write('{"kind": "trial", "trial": 1, "resu')  # kill mid-append
        reopened = TrialJournal.open(tmp_path, "e1", FP)
        assert reopened.restored == {0: {"ok": 1}}
        reopened.close()

    def test_mid_file_corruption_rejected(self, tmp_path):
        with TrialJournal.open(tmp_path, "e1", FP) as journal:
            journal.record(0, {"ok": 1})
            journal.record(1, {"ok": 1})
        path = journal_path(tmp_path, "e1")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArchiveCorruptionError):
            TrialJournal.open(tmp_path, "e1", FP)

    def test_missing_header_rejected(self, tmp_path):
        path = journal_path(tmp_path, "e1")
        path.write_text('{"kind": "trial", "trial": 0, "result": {}}\n')
        with pytest.raises(ArchiveCorruptionError):
            TrialJournal.open(tmp_path, "e1", FP)

    def test_duplicate_trial_last_wins(self, tmp_path):
        with TrialJournal.open(tmp_path, "e1", FP) as journal:
            journal.record(0, {"v": 1})
            journal.record(0, {"v": 2})
        reopened = TrialJournal.open(tmp_path, "e1", FP)
        assert reopened.restored == {0: {"v": 2}}
        reopened.close()

    def test_record_after_close_rejected(self, tmp_path):
        journal = TrialJournal.open(tmp_path, "e1", FP)
        journal.close()
        with pytest.raises(ConfigurationError):
            journal.record(0, {})


def _write_archive(out, *, payloads):
    """Minimal format-2 archive for verification tests."""
    manifest = {
        "schema_version": ARCHIVE_SCHEMA_VERSION,
        "base_seed": 0,
        "experiments": [],
    }
    for name, payload in payloads.items():
        text = json.dumps(
            {"schema_version": ARCHIVE_SCHEMA_VERSION, **payload},
            indent=2,
            sort_keys=True,
        )
        atomic_write_text(out / f"{name}.json", text)
        manifest["experiments"].append(
            {"name": name, "file": f"{name}.json", "sha256": sha256_of_text(text)}
        )
    atomic_write_text(
        out / "manifest.json", json.dumps(manifest, indent=2, sort_keys=True)
    )


class TestVerifyArchive:
    def test_clean_archive_ok(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        report = verify_archive(tmp_path)
        assert report.ok
        assert report.files_checked == 2
        report.raise_if_corrupt()  # no-op when clean

    def test_missing_directory(self, tmp_path):
        report = verify_archive(tmp_path / "nope")
        assert [i.kind for i in report.issues] == ["missing"]

    def test_missing_manifest(self, tmp_path):
        report = verify_archive(tmp_path)
        assert [i.kind for i in report.issues] == ["missing"]

    def test_truncated_experiment_file(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        truncate_file(tmp_path / "e1.json", 20)
        kinds = {i.kind for i in verify_archive(tmp_path).issues}
        assert "truncated" in kinds and "checksum_mismatch" in kinds

    def test_bit_flip_detected(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        # Flip inside a JSON string value so the file still parses: only
        # the checksum can catch it.
        text = (tmp_path / "e1.json").read_text()
        index = text.index('"trials"') + 1
        flip_byte(tmp_path / "e1.json", index)
        report = verify_archive(tmp_path)
        assert any(i.kind == "checksum_mismatch" for i in report.issues)

    def test_truncated_manifest(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        truncate_file(tmp_path / "manifest.json", 30)
        report = verify_archive(tmp_path)
        kinds = [i.kind for i in report.issues]
        assert "truncated" in kinds

    def test_missing_experiment_file(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        (tmp_path / "e1.json").unlink()
        assert [i.kind for i in verify_archive(tmp_path).issues] == ["missing"]

    def test_orphan_detected_and_journal_exempt(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        (tmp_path / "stray.json").write_text("{}")
        TrialJournal.open(tmp_path, "e1", FP).close()
        report = verify_archive(tmp_path)
        assert [(i.kind, i.file) for i in report.issues] == [("orphan", "stray.json")]

    def test_old_schema_flagged(self, tmp_path):
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        del manifest["schema_version"]
        (tmp_path / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        report = verify_archive(tmp_path)
        assert any(i.kind == "schema" for i in report.issues)

    def test_raise_if_corrupt(self, tmp_path):
        report = VerificationReport(directory=tmp_path)
        report.raise_if_corrupt()
        _write_archive(tmp_path, payloads={"e1": {"trials": []}})
        truncate_file(tmp_path / "e1.json", 5)
        with pytest.raises(ArchiveCorruptionError):
            verify_archive(tmp_path).raise_if_corrupt()
