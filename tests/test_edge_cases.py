"""Edge-case tests across modules (error paths and small behaviors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.energy import EnergyModel, energy_report
from repro.analysis.theory import exact_pair_coverage_probability
from repro.exceptions import ConfigurationError, NetworkModelError
from repro.net import (
    NodeSpec,
    build_asymmetric_network,
    build_network,
    channels,
    topology,
)
from repro.net.topology import DirectedTopology
from repro.sim.results import DiscoveryResult


class TestBuildHelpers:
    def test_build_network_missing_assignment(self):
        topo = topology.line(3)
        with pytest.raises(NetworkModelError, match="missing node"):
            build_network(topo, {0: {0}, 1: {0}})

    def test_build_asymmetric_missing_assignment(self):
        topo = DirectedTopology(2, [(0, 1)])
        with pytest.raises(NetworkModelError, match="missing node"):
            build_asymmetric_network(topo, {0: {0}})

    def test_build_asymmetric_positions_carried(self, rng):
        topo = topology.asymmetric_random_geometric(
            5, min_range=0.3, max_range=0.6, rng=rng
        )
        net = build_asymmetric_network(topo, {i: {0} for i in range(5)})
        assert all(net.node(i).position is not None for i in range(5))


class TestExactPairFormulaValidation:
    def test_span_checked(self):
        with pytest.raises(ConfigurationError, match="span"):
            exact_pair_coverage_probability(2, 2, 3, 0.5, 0.5)
        with pytest.raises(ConfigurationError, match="span"):
            exact_pair_coverage_probability(2, 2, 0, 0.5, 0.5)

    def test_probabilities_checked(self):
        with pytest.raises(ConfigurationError):
            exact_pair_coverage_probability(2, 2, 1, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            exact_pair_coverage_probability(2, 2, 1, 0.5, 1.0)


class TestEnergyQuietPower:
    def test_sleep_power_counts(self):
        result = DiscoveryResult(
            time_unit="seconds",
            coverage={},
            horizon=10.0,
            completed=True,
            neighbor_tables={},
            start_times={0: 0.0},
            network_params={},
            metadata={
                "radio_activity": {0: {"tx": 0.0, "rx": 0.0, "quiet": 100.0}}
            },
        )
        model = EnergyModel(tx_watts=1.0, rx_watts=1.0, quiet_watts=0.01)
        report = energy_report(result, model)
        assert report.per_node[0].joules == pytest.approx(1.0)
        assert report.per_node[0].duty_cycle == 0.0
        assert report.joules_per_link is None  # nothing covered


class TestScenarioExtras:
    def test_new_scenarios_listed(self):
        from repro.workloads.scenarios import scenario_names

        assert "suburban_asymmetric" in scenario_names()
        assert "wideband_campus" in scenario_names()

    def test_suburban_asymmetric_is_asymmetric(self):
        from repro.workloads.scenarios import scenario

        net = scenario("suburban_asymmetric").build(seed=0)
        assert not net.is_symmetric

    def test_wideband_campus_is_channel_dependent(self):
        from repro.workloads.scenarios import scenario

        net = scenario("wideband_campus").build(seed=0)
        assert net.is_channel_dependent
        # Spans shrink below the claimed intersection somewhere.
        shrunk = [
            l
            for l in net.links()
            if l.span
            < (net.channels_of(l.transmitter) & net.channels_of(l.receiver))
        ]
        assert shrunk


class TestNodeSpecExtras:
    def test_hash_usable_in_sets(self):
        a = NodeSpec(0, frozenset({1}))
        b = NodeSpec(0, frozenset({1}))
        assert len({a, b}) == 1


class TestAnalysisPackageSurface:
    def test_all_submodules_importable(self):
        from repro import analysis

        for name in analysis.__all__:
            assert getattr(analysis, name) is not None

    def test_sim_package_surface(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert getattr(sim, name) is not None

    def test_top_level_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
