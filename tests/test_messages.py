"""Unit tests for repro.core.messages."""

from __future__ import annotations

import pytest

from repro.core.messages import HelloMessage
from repro.exceptions import ConfigurationError


class TestHelloMessage:
    def test_basic(self):
        msg = HelloMessage(sender=3, channels=frozenset({1, 2}))
        assert msg.sender == 3
        assert msg.channels == {1, 2}

    def test_channels_coerced(self):
        msg = HelloMessage(sender=0, channels={4})  # type: ignore[arg-type]
        assert isinstance(msg.channels, frozenset)

    def test_empty_channels_rejected(self):
        with pytest.raises(ConfigurationError, match="empty channel set"):
            HelloMessage(sender=0, channels=frozenset())

    def test_common_channels_is_intersection(self):
        msg = HelloMessage(sender=0, channels=frozenset({1, 2, 3}))
        assert msg.common_channels({2, 3, 4}) == {2, 3}
        assert msg.common_channels({9}) == frozenset()

    def test_size_bytes(self):
        msg = HelloMessage(sender=0, channels=frozenset({1, 2, 3}))
        assert msg.size_bytes == 4 + 2 * 3

    def test_hashable_and_equal(self):
        a = HelloMessage(0, frozenset({1}))
        b = HelloMessage(0, frozenset({1}))
        assert a == b
        assert hash(a) == hash(b)
