"""Unit tests for repro.analysis.theory (bound comparisons)."""

from __future__ import annotations

import pytest

from repro.analysis.theory import compare_to_bound, success_rate_within
from repro.exceptions import ConfigurationError
from repro.sim.results import DiscoveryResult


def result(completion, starts=None):
    starts = starts or {0: 0.0}
    coverage = {(0, 1): completion}
    return DiscoveryResult(
        time_unit="slots",
        coverage=coverage,
        horizon=1000.0,
        completed=completion is not None,
        neighbor_tables={},
        start_times=starts,
        network_params={},
    )


class TestSuccessRateWithin:
    def test_counts_completed_within_bound(self):
        results = [result(10.0), result(90.0), result(None)]
        assert success_rate_within(results, 50.0) == pytest.approx(1 / 3)
        assert success_rate_within(results, 100.0) == pytest.approx(2 / 3)

    def test_after_all_started(self):
        r = result(60.0, starts={0: 50.0})
        assert success_rate_within([r], 15.0, after_all_started=True) == 1.0
        assert success_rate_within([r], 15.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            success_rate_within([], 1.0)


class TestCompareToBound:
    def test_basic_row(self):
        results = [result(10.0), result(20.0), result(30.0), result(None)]
        comp = compare_to_bound("demo", results, bound=25.0, epsilon=0.5)
        assert comp.trials == 4
        assert comp.successes_within_bound == 2
        assert comp.success_rate == 0.5
        assert comp.completion is not None
        assert comp.completion.count == 3  # only completed trials
        assert comp.bound_over_measured_mean == pytest.approx(25.0 / 20.0)

    def test_meets_guarantee_uses_wilson_upper(self):
        # 10/10 successes trivially meets 1 - eps for any eps.
        comp = compare_to_bound(
            "x", [result(1.0)] * 10, bound=10.0, epsilon=0.1
        )
        assert comp.meets_guarantee

    def test_guarantee_violated(self):
        # 0/20 within bound cannot meet a 0.9 target.
        comp = compare_to_bound(
            "x", [result(100.0)] * 20, bound=10.0, epsilon=0.1
        )
        assert not comp.meets_guarantee

    def test_no_completions(self):
        comp = compare_to_bound("x", [result(None)] * 3, bound=5.0, epsilon=0.1)
        assert comp.completion is None
        assert comp.bound_over_measured_mean is None
        assert comp.success_rate == 0.0

    def test_as_row_keys(self):
        row = compare_to_bound("x", [result(1.0)], bound=5.0, epsilon=0.1).as_row()
        assert {"experiment", "bound", "success_rate", "meets_guarantee"} <= set(row)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_to_bound("x", [], bound=1.0, epsilon=0.1)
        with pytest.raises(ConfigurationError):
            compare_to_bound("x", [result(1.0)], bound=0.0, epsilon=0.1)
