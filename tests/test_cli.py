"""Unit tests for the m2hew CLI."""

from __future__ import annotations

import argparse
import json

import pytest

import repro.cli as cli_module
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "campus_cr" in out
        assert "single_common_channel" in out

    def test_info_command(self, capsys):
        assert main(["info", "rural_sparse", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out
        assert "Delta" in out

    def test_bounds_command(self, capsys):
        code = main(
            [
                "bounds",
                "--s", "4",
                "--delta", "5",
                "--rho", "0.5",
                "--n", "10",
                "--delta-est", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "theorem1_slots" in out
        assert "theorem9_frames" in out

    def test_run_sync_completes(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "50000",
            ]
        )
        assert code == 0
        assert "completed" in capsys.readouterr().out

    def test_run_sync_staggered(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "50000",
                "--stagger", "40",
            ]
        )
        assert code == 0

    def test_run_sync_budget_too_small_fails(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "2",
            ]
        )
        assert code == 1

    def test_run_async_budget_too_small_fails(self, capsys):
        code = main(
            [
                "run-async",
                "rural_sparse",
                "--seed", "0",
                "--max-frames", "1",
            ]
        )
        assert code == 1

    def test_run_async_completes(self, capsys):
        code = main(
            [
                "run-async",
                "rural_sparse",
                "--seed", "0",
                "--drift", "0.05",
                "--max-frames", "200000",
            ]
        )
        assert code == 0

    def test_invalid_scenario_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["info", "nowhere"])

    def test_profile_command(self, capsys):
        assert main(["profile", "urban_dense", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneity_index" in out
        assert "Per-channel structure" in out

    def test_terminate_command(self, capsys):
        code = main(
            [
                "terminate",
                "rural_sparse",
                "--seed", "0",
                "--policy", "beacon",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quiet_threshold" in out
        assert "total_joules" in out

    def test_timeline_command(self, capsys):
        code = main(
            [
                "timeline",
                "rural_sparse",
                "--seed", "0",
                "--drift", "0.1",
                "--start", "5",
                "--end", "15",
                "--nodes", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node" in out
        assert "|" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "rural_sparse",
                "--trials", "2",
                "--protocols", "algorithm1", "algorithm3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm1" in out
        assert "algorithm3" in out
        assert "mean_slots" in out

    def test_compare_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["compare", "rural_sparse", "--protocols", "warp_drive"])

    def test_terminate_sleep_policy(self, capsys):
        code = main(
            [
                "terminate",
                "rural_sparse",
                "--seed", "1",
                "--policy", "sleep",
                "--local-epsilon", "0.0001",
            ]
        )
        assert code == 0


class TestBatchCommand:
    def test_arg_parsing_defaults(self):
        args = build_parser().parse_args(["batch", "rural_sparse"])
        assert args.workers == 1
        assert args.backend == "auto"
        assert args.chunk_size is None
        assert args.batch_size is None
        assert args.trial_timeout is None
        assert args.output is None

    def test_arg_parsing_workers(self):
        args = build_parser().parse_args(
            ["batch", "rural_sparse", "--workers", "4", "--backend", "process"]
        )
        assert args.workers == 4
        assert args.backend == "process"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "rural_sparse", "--backend", "threads"]
            )

    def test_invalid_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "nowhere"])

    def test_batch_runs_and_tabulates(self, capsys):
        code = main(
            [
                "batch",
                "rural_sparse",
                "--trials", "2",
                "--max-slots", "50000",
                "--protocols", "algorithm3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rural_sparse_algorithm3" in out
        assert "mean_time" in out

    def test_workers_manifest_identical_to_serial(self, tmp_path, capsys):
        base = [
            "batch",
            "rural_sparse",
            "--trials", "2",
            "--max-slots", "50000",
            "--protocols", "algorithm3",
        ]
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        assert main(base + ["--output", str(serial_dir)]) == 0
        assert (
            main(base + ["--workers", "2", "--output", str(pool_dir)]) == 0
        )
        for name in ("manifest.json", "rural_sparse_algorithm3.json"):
            assert (serial_dir / name).read_bytes() == (
                pool_dir / name
            ).read_bytes()
        manifest = json.loads((serial_dir / "manifest.json").read_text())
        assert manifest["experiments"][0]["name"] == "rural_sparse_algorithm3"

    def test_vectorized_backend_parses(self):
        args = build_parser().parse_args(
            [
                "batch",
                "rural_sparse",
                "--backend", "vectorized",
                "--batch-size", "8",
            ]
        )
        assert args.backend == "vectorized"
        assert args.batch_size == 8

    def test_vectorized_archive_identical_to_serial(self, tmp_path, capsys):
        base = [
            "batch",
            "rural_sparse",
            "--trials", "3",
            "--max-slots", "50000",
            "--protocols", "algorithm3",
        ]
        serial_dir = tmp_path / "serial"
        vec_dir = tmp_path / "vec"
        assert main(base + ["--output", str(serial_dir)]) == 0
        assert (
            main(
                base
                + [
                    "--backend", "vectorized",
                    "--batch-size", "2",
                    "--output", str(vec_dir),
                ]
            )
            == 0
        )
        for name in ("manifest.json", "rural_sparse_algorithm3.json"):
            assert (serial_dir / name).read_bytes() == (
                vec_dir / name
            ).read_bytes()

    def test_batch_async_protocol(self, capsys):
        code = main(
            [
                "batch",
                "rural_sparse",
                "--trials", "1",
                "--protocols", "algorithm4",
            ]
        )
        assert code == 0
        assert "rural_sparse_algorithm4" in capsys.readouterr().out


class TestHelpTextDrift:
    """The module docstring and the parser must list the same commands."""

    def _subcommands(self):
        parser = build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                return sorted(action.choices)
        raise AssertionError("no subparsers registered")

    def test_every_subcommand_documented(self):
        doc = cli_module.__doc__
        for name in self._subcommands():
            assert f"``{name}``" in doc, (
                f"subcommand {name!r} missing from the repro.cli docstring"
            )

    def test_batch_help_mentions_workers(self):
        parser = build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                help_text = action.choices["batch"].format_help()
                break
        assert "--workers" in help_text
        assert "--backend" in help_text
        assert "--trial-timeout" in help_text
        assert "--batch-size" in help_text
        assert "vectorized" in help_text

    def test_top_level_help_lists_batch(self):
        help_text = build_parser().format_help()
        assert "batch" in help_text


class TestBatchResilience:
    BASE = [
        "batch",
        "rural_sparse",
        "--trials", "2",
        "--max-slots", "50000",
        "--protocols", "algorithm3",
    ]

    def test_resilience_flags_parse(self):
        args = build_parser().parse_args(
            self.BASE + ["--retries", "3", "--no-quarantine", "--chaos", "raise@0"]
        )
        assert args.retries == 3
        assert args.no_quarantine is True
        assert args.chaos == "raise@0"
        assert args.checkpoint is None
        assert args.resume is None

    def test_chaos_recovery_archive_byte_identical(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        chaos = tmp_path / "chaos"
        assert main(self.BASE + ["--output", str(clean)]) == 0
        assert (
            main(
                self.BASE
                + ["--retries", "2", "--chaos", "raise@0", "--output", str(chaos)]
            )
            == 0
        )
        for name in ("manifest.json", "rural_sparse_algorithm3.json"):
            assert (clean / name).read_bytes() == (chaos / name).read_bytes()

    def test_quarantine_reports_replay_seed(self, capsys):
        code = main(self.BASE + ["--retries", "0", "--chaos", "raise@0x-1"])
        assert code == 1  # campaign finished, but not every trial did
        err = capsys.readouterr().err
        assert "quarantined: rural_sparse_algorithm3 trial 0" in err
        assert "derive_trial_seed(0, 0)" in err

    def test_no_quarantine_aborts_with_exit_code_3(self, capsys):
        code = main(
            self.BASE
            + ["--retries", "0", "--no-quarantine", "--chaos", "raise@0x-1"]
        )
        assert code == 3
        assert "campaign failed" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        out = tmp_path / "out"
        assert main(self.BASE + ["--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        assert (
            main(self.BASE + ["--resume", str(ck), "--output", str(out)]) == 0
        )
        err = capsys.readouterr().err
        assert "resumed: 2 trial(s) restored from checkpoint" in err

    def test_checkpoint_and_resume_conflict(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="not both"):
            main(
                self.BASE
                + [
                    "--checkpoint", str(tmp_path / "a"),
                    "--resume", str(tmp_path / "b"),
                ]
            )

    def test_resume_requires_existing_directory(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="no such checkpoint"):
            main(self.BASE + ["--resume", str(tmp_path / "missing")])

    def test_bad_chaos_spec_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(self.BASE + ["--chaos", "explode@banana"])


class TestProtocolChoiceDrift:
    """CLI protocol choices must come from the registry, not hand lists."""

    def _subparser(self, name):
        for action in build_parser()._actions:
            if isinstance(action, argparse._SubParsersAction):
                return action.choices[name]
        raise AssertionError("no subparsers registered")

    def _choices(self, command, dest):
        for action in self._subparser(command)._actions:
            if action.dest == dest:
                return tuple(action.choices)
        raise AssertionError(f"{command} has no option with dest {dest!r}")

    def test_run_sync_offers_every_sync_protocol(self):
        from repro.sim.runner import SYNC_PROTOCOLS

        assert self._choices("run-sync", "protocol") == SYNC_PROTOCOLS

    def test_compare_offers_every_sync_protocol(self):
        from repro.sim.runner import SYNC_PROTOCOLS

        assert self._choices("compare", "protocols") == SYNC_PROTOCOLS

    def test_tournament_offers_every_sync_protocol(self):
        from repro.sim.runner import SYNC_PROTOCOLS

        assert self._choices("tournament", "protocols") == SYNC_PROTOCOLS

    def test_batch_offers_sync_plus_async(self):
        from repro.core.registry import ASYNCHRONOUS_PROTOCOLS
        from repro.sim.runner import SYNC_PROTOCOLS

        assert (
            self._choices("batch", "protocols")
            == SYNC_PROTOCOLS + ASYNCHRONOUS_PROTOCOLS
        )

    def test_registry_rivals_are_reachable(self):
        # The tournament rivals must be selectable everywhere a sync
        # protocol can be chosen.
        for command, dest in (
            ("run-sync", "protocol"),
            ("compare", "protocols"),
            ("tournament", "protocols"),
            ("batch", "protocols"),
        ):
            choices = self._choices(command, dest)
            for rival in ("mcdis", "robust_staged", "robust_flat"):
                assert rival in choices, (command, rival)


class TestTournamentCommand:
    TINY = [
        "tournament",
        "--trials", "2",
        "--max-slots", "10000",
        "--protocols", "algorithm3", "mcdis",
    ]

    def test_arg_parsing_defaults(self):
        from repro.analysis.tournament import DEFAULT_MAX_SLOTS, DEFAULT_TRIALS
        from repro.sim.runner import SYNC_PROTOCOLS

        args = build_parser().parse_args(["tournament"])
        assert tuple(args.protocols) == SYNC_PROTOCOLS
        assert args.trials == DEFAULT_TRIALS
        assert args.max_slots == DEFAULT_MAX_SLOTS
        assert args.seed == 0
        assert args.workers == 1
        assert args.backend == "auto"
        assert args.output is None

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["tournament", "--protocols", "algorithm3", "warp_drive"]
            )

    def test_small_league_prints_tables(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "league totals" in out
        assert "algorithm3" in out
        assert "mcdis" in out
        assert "clique_clean" in out

    def test_output_archives_league(self, tmp_path, capsys):
        out = tmp_path / "league"
        assert main(self.TINY + ["--output", str(out)]) == 0
        captured = capsys.readouterr()
        assert str(out) in captured.err
        names = sorted(p.name for p in out.iterdir())
        assert "manifest.json" in names
        assert "clique_clean__mcdis.json" in names

    def test_deterministic_across_invocations(self, capsys):
        assert main(self.TINY) == 0
        first = capsys.readouterr().out
        assert main(self.TINY) == 0
        assert capsys.readouterr().out == first


class TestVerifyArchiveCommand:
    def _archive(self, tmp_path):
        out = tmp_path / "archive"
        assert (
            main(
                [
                    "batch",
                    "rural_sparse",
                    "--trials", "1",
                    "--max-slots", "50000",
                    "--protocols", "algorithm3",
                    "--output", str(out),
                ]
            )
            == 0
        )
        return out

    def test_intact_archive_verifies(self, tmp_path, capsys):
        out = self._archive(tmp_path)
        capsys.readouterr()
        assert main(["verify-archive", str(out)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_truncated_archive_flagged(self, tmp_path, capsys):
        out = self._archive(tmp_path)
        target = out / "rural_sparse_algorithm3.json"
        target.write_bytes(target.read_bytes()[:-20])
        capsys.readouterr()
        assert main(["verify-archive", str(out)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_missing_directory_flagged(self, tmp_path, capsys):
        assert main(["verify-archive", str(tmp_path / "nope")]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_json_report_intact(self, tmp_path, capsys):
        out = self._archive(tmp_path)
        capsys.readouterr()
        assert main(["verify-archive", str(out), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["issues"] == []
        assert report["files_checked"] >= 2
        assert report["directory"] == str(out)

    def test_json_report_corrupt(self, tmp_path, capsys):
        out = self._archive(tmp_path)
        target = out / "rural_sparse_algorithm3.json"
        target.write_bytes(target.read_bytes()[:-20])
        capsys.readouterr()
        assert main(["verify-archive", str(out), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        kinds = {issue["kind"] for issue in report["issues"]}
        assert "checksum_mismatch" in kinds
