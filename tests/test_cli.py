"""Unit tests for the m2hew CLI."""

from __future__ import annotations

import argparse
import json

import pytest

import repro.cli as cli_module
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "campus_cr" in out
        assert "single_common_channel" in out

    def test_info_command(self, capsys):
        assert main(["info", "rural_sparse", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out
        assert "Delta" in out

    def test_bounds_command(self, capsys):
        code = main(
            [
                "bounds",
                "--s", "4",
                "--delta", "5",
                "--rho", "0.5",
                "--n", "10",
                "--delta-est", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "theorem1_slots" in out
        assert "theorem9_frames" in out

    def test_run_sync_completes(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "50000",
            ]
        )
        assert code == 0
        assert "completed" in capsys.readouterr().out

    def test_run_sync_staggered(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "50000",
                "--stagger", "40",
            ]
        )
        assert code == 0

    def test_run_sync_budget_too_small_fails(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "2",
            ]
        )
        assert code == 1

    def test_run_async_budget_too_small_fails(self, capsys):
        code = main(
            [
                "run-async",
                "rural_sparse",
                "--seed", "0",
                "--max-frames", "1",
            ]
        )
        assert code == 1

    def test_run_async_completes(self, capsys):
        code = main(
            [
                "run-async",
                "rural_sparse",
                "--seed", "0",
                "--drift", "0.05",
                "--max-frames", "200000",
            ]
        )
        assert code == 0

    def test_invalid_scenario_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["info", "nowhere"])

    def test_profile_command(self, capsys):
        assert main(["profile", "urban_dense", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneity_index" in out
        assert "Per-channel structure" in out

    def test_terminate_command(self, capsys):
        code = main(
            [
                "terminate",
                "rural_sparse",
                "--seed", "0",
                "--policy", "beacon",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quiet_threshold" in out
        assert "total_joules" in out

    def test_timeline_command(self, capsys):
        code = main(
            [
                "timeline",
                "rural_sparse",
                "--seed", "0",
                "--drift", "0.1",
                "--start", "5",
                "--end", "15",
                "--nodes", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node" in out
        assert "|" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "rural_sparse",
                "--trials", "2",
                "--protocols", "algorithm1", "algorithm3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm1" in out
        assert "algorithm3" in out
        assert "mean_slots" in out

    def test_compare_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["compare", "rural_sparse", "--protocols", "warp_drive"])

    def test_terminate_sleep_policy(self, capsys):
        code = main(
            [
                "terminate",
                "rural_sparse",
                "--seed", "1",
                "--policy", "sleep",
                "--local-epsilon", "0.0001",
            ]
        )
        assert code == 0


class TestBatchCommand:
    def test_arg_parsing_defaults(self):
        args = build_parser().parse_args(["batch", "rural_sparse"])
        assert args.workers == 1
        assert args.backend == "auto"
        assert args.chunk_size is None
        assert args.batch_size is None
        assert args.trial_timeout is None
        assert args.output is None

    def test_arg_parsing_workers(self):
        args = build_parser().parse_args(
            ["batch", "rural_sparse", "--workers", "4", "--backend", "process"]
        )
        assert args.workers == 4
        assert args.backend == "process"

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "rural_sparse", "--backend", "threads"]
            )

    def test_invalid_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "nowhere"])

    def test_batch_runs_and_tabulates(self, capsys):
        code = main(
            [
                "batch",
                "rural_sparse",
                "--trials", "2",
                "--max-slots", "50000",
                "--protocols", "algorithm3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rural_sparse_algorithm3" in out
        assert "mean_time" in out

    def test_workers_manifest_identical_to_serial(self, tmp_path, capsys):
        base = [
            "batch",
            "rural_sparse",
            "--trials", "2",
            "--max-slots", "50000",
            "--protocols", "algorithm3",
        ]
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        assert main(base + ["--output", str(serial_dir)]) == 0
        assert (
            main(base + ["--workers", "2", "--output", str(pool_dir)]) == 0
        )
        for name in ("manifest.json", "rural_sparse_algorithm3.json"):
            assert (serial_dir / name).read_bytes() == (
                pool_dir / name
            ).read_bytes()
        manifest = json.loads((serial_dir / "manifest.json").read_text())
        assert manifest["experiments"][0]["name"] == "rural_sparse_algorithm3"

    def test_vectorized_backend_parses(self):
        args = build_parser().parse_args(
            [
                "batch",
                "rural_sparse",
                "--backend", "vectorized",
                "--batch-size", "8",
            ]
        )
        assert args.backend == "vectorized"
        assert args.batch_size == 8

    def test_vectorized_archive_identical_to_serial(self, tmp_path, capsys):
        base = [
            "batch",
            "rural_sparse",
            "--trials", "3",
            "--max-slots", "50000",
            "--protocols", "algorithm3",
        ]
        serial_dir = tmp_path / "serial"
        vec_dir = tmp_path / "vec"
        assert main(base + ["--output", str(serial_dir)]) == 0
        assert (
            main(
                base
                + [
                    "--backend", "vectorized",
                    "--batch-size", "2",
                    "--output", str(vec_dir),
                ]
            )
            == 0
        )
        for name in ("manifest.json", "rural_sparse_algorithm3.json"):
            assert (serial_dir / name).read_bytes() == (
                vec_dir / name
            ).read_bytes()

    def test_batch_async_protocol(self, capsys):
        code = main(
            [
                "batch",
                "rural_sparse",
                "--trials", "1",
                "--protocols", "algorithm4",
            ]
        )
        assert code == 0
        assert "rural_sparse_algorithm4" in capsys.readouterr().out


class TestHelpTextDrift:
    """The module docstring and the parser must list the same commands."""

    def _subcommands(self):
        parser = build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                return sorted(action.choices)
        raise AssertionError("no subparsers registered")

    def test_every_subcommand_documented(self):
        doc = cli_module.__doc__
        for name in self._subcommands():
            assert f"``{name}``" in doc, (
                f"subcommand {name!r} missing from the repro.cli docstring"
            )

    def test_batch_help_mentions_workers(self):
        parser = build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                help_text = action.choices["batch"].format_help()
                break
        assert "--workers" in help_text
        assert "--backend" in help_text
        assert "--trial-timeout" in help_text
        assert "--batch-size" in help_text
        assert "vectorized" in help_text

    def test_top_level_help_lists_batch(self):
        help_text = build_parser().format_help()
        assert "batch" in help_text
