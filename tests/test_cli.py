"""Unit tests for the m2hew CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "campus_cr" in out
        assert "single_common_channel" in out

    def test_info_command(self, capsys):
        assert main(["info", "rural_sparse", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rho" in out
        assert "Delta" in out

    def test_bounds_command(self, capsys):
        code = main(
            [
                "bounds",
                "--s", "4",
                "--delta", "5",
                "--rho", "0.5",
                "--n", "10",
                "--delta-est", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "theorem1_slots" in out
        assert "theorem9_frames" in out

    def test_run_sync_completes(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "50000",
            ]
        )
        assert code == 0
        assert "completed" in capsys.readouterr().out

    def test_run_sync_staggered(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "50000",
                "--stagger", "40",
            ]
        )
        assert code == 0

    def test_run_sync_budget_too_small_fails(self, capsys):
        code = main(
            [
                "run-sync",
                "rural_sparse",
                "--protocol", "algorithm3",
                "--seed", "0",
                "--max-slots", "2",
            ]
        )
        assert code == 1

    def test_run_async_budget_too_small_fails(self, capsys):
        code = main(
            [
                "run-async",
                "rural_sparse",
                "--seed", "0",
                "--max-frames", "1",
            ]
        )
        assert code == 1

    def test_run_async_completes(self, capsys):
        code = main(
            [
                "run-async",
                "rural_sparse",
                "--seed", "0",
                "--drift", "0.05",
                "--max-frames", "200000",
            ]
        )
        assert code == 0

    def test_invalid_scenario_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["info", "nowhere"])

    def test_profile_command(self, capsys):
        assert main(["profile", "urban_dense", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneity_index" in out
        assert "Per-channel structure" in out

    def test_terminate_command(self, capsys):
        code = main(
            [
                "terminate",
                "rural_sparse",
                "--seed", "0",
                "--policy", "beacon",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quiet_threshold" in out
        assert "total_joules" in out

    def test_timeline_command(self, capsys):
        code = main(
            [
                "timeline",
                "rural_sparse",
                "--seed", "0",
                "--drift", "0.1",
                "--start", "5",
                "--end", "15",
                "--nodes", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "node" in out
        assert "|" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "rural_sparse",
                "--trials", "2",
                "--protocols", "algorithm1", "algorithm3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm1" in out
        assert "algorithm3" in out
        assert "mean_slots" in out

    def test_compare_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["compare", "rural_sparse", "--protocols", "warp_drive"])

    def test_terminate_sleep_policy(self, capsys):
        code = main(
            [
                "terminate",
                "rural_sparse",
                "--seed", "1",
                "--policy", "sleep",
                "--local-epsilon", "0.0001",
            ]
        )
        assert code == 0
