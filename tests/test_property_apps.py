"""Property-based tests for the downstream applications."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apps.clustering import lowest_id_clusters
from repro.apps.link_scheduling import schedule_links


@st.composite
def random_tables(draw):
    """Random symmetric neighbor tables over <= 8 nodes, <= 3 channels."""
    n = draw(st.integers(2, 8))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.sets(st.sampled_from(all_pairs)))
    tables = {i: {} for i in range(n)}
    for u, v in chosen:
        chans = draw(
            st.frozensets(st.integers(0, 2), min_size=1, max_size=3)
        )
        tables[u][v] = chans
        tables[v][u] = chans
    return tables


class TestClusteringProperties:
    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_every_node_assigned(self, tables):
        clusters = lowest_id_clusters(tables)
        assert set(clusters.head_of) == set(tables)

    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_heads_map_to_themselves(self, tables):
        clusters = lowest_id_clusters(tables)
        for head, members in clusters.members_of.items():
            assert clusters.head_of[head] == head
            assert head in members

    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_members_partition_nodes(self, tables):
        clusters = lowest_id_clusters(tables)
        seen = []
        for members in clusters.members_of.values():
            seen.extend(members)
        assert sorted(seen) == sorted(tables)

    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_members_discovered_their_head(self, tables):
        clusters = lowest_id_clusters(tables)
        for nid, head in clusters.head_of.items():
            if nid != head:
                assert head in tables[nid]
                assert nid in tables[head]

    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_head_has_smallest_id_in_cluster(self, tables):
        clusters = lowest_id_clusters(tables)
        for head, members in clusters.members_of.items():
            assert head == min(members)


def has_bidirectional_link(tables):
    return any(
        v in tables and u in tables[v] and (tables[u][v] & tables[v][u])
        for u in tables
        for v in tables[u]
    )


class TestSchedulingProperties:
    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_schedule_internally_consistent(self, tables):
        if not has_bidirectional_link(tables):
            return
        schedule = schedule_links(tables)
        # Every bidirectional link scheduled exactly once; slots valid.
        for (t, r), (slot, channel) in schedule.assignment.items():
            assert 0 <= slot < schedule.num_slots
            assert channel in (tables[t][r] & tables[r][t])

    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_no_node_double_booked_per_slot(self, tables):
        if not has_bidirectional_link(tables):
            return
        schedule = schedule_links(tables)
        for slot in range(schedule.num_slots):
            nodes = [
                n for (link, _) in schedule.links_in_slot(slot) for n in link
            ]
            assert len(nodes) == len(set(nodes))

    @given(random_tables())
    @settings(max_examples=150, deadline=None)
    def test_no_known_interference_within_slot(self, tables):
        if not has_bidirectional_link(tables):
            return
        schedule = schedule_links(tables)
        for slot in range(schedule.num_slots):
            active = schedule.links_in_slot(slot)
            for i, ((t1, r1), c1) in enumerate(active):
                for ((t2, r2), c2) in active[i + 1 :]:
                    if c1 != c2:
                        continue
                    # Per the discovered tables, neither transmitter is a
                    # same-channel neighbor of the other link's receiver.
                    assert not (
                        t1 in tables.get(r2, {})
                        and c1 in tables[r2].get(t1, frozenset())
                    )
                    assert not (
                        t2 in tables.get(r1, {})
                        and c1 in tables[r1].get(t2, frozenset())
                    )

    @given(random_tables())
    @settings(max_examples=100, deadline=None)
    def test_every_slot_nonempty(self, tables):
        if not has_bidirectional_link(tables):
            return
        schedule = schedule_links(tables)
        for slot in range(schedule.num_slots):
            assert schedule.links_in_slot(slot)
