"""Tests for the genie TDMA reference schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.genie import (
    GenieScheduleProtocol,
    build_genie_schedule,
    genie_schedule_length,
)
from repro.exceptions import ConfigurationError
from repro.net import M2HeWNetwork, NodeSpec, build_network, channels, topology
from repro.sim.rng import RngFactory
from repro.sim.slotted import SlottedSimulator
from repro.sim.stopping import StoppingCondition


def run_genie(network, budget=None):
    schedule = build_genie_schedule(network)
    sim = SlottedSimulator(
        network,
        lambda nid, chs, rng: GenieScheduleProtocol(nid, chs, rng, schedule),
        RngFactory(0),
    )
    return schedule, sim.run(
        StoppingCondition.slots(budget or len(schedule))
    )


class TestScheduleConstruction:
    def test_no_conflicting_transmitters_in_a_round(self):
        rng = np.random.default_rng(1)
        topo = topology.random_geometric(12, 0.5, rng, require_connected=True)
        net = build_network(
            topo,
            channels.common_channel_plus_random(12, 6, 3, rng),
        )
        for channel, txs in build_genie_schedule(net):
            txs = sorted(txs)
            for i, a in enumerate(txs):
                for b in txs[i + 1 :]:
                    # No listener may hear both; they may not hear each other.
                    assert b not in net.hears_on(a, channel)
                    for u in net.node_ids:
                        audible = net.hears_on(u, channel)
                        assert not (a in audible and b in audible), (
                            channel, a, b, u,
                        )

    def test_empty_network_rejected(self):
        net = M2HeWNetwork([NodeSpec(0, frozenset({0}))], adjacency=[])
        with pytest.raises(ConfigurationError, match="nothing to schedule"):
            build_genie_schedule(net)

    def test_schedule_length_helper(self):
        net = build_network(topology.clique(4), channels.homogeneous(4, 2))
        assert genie_schedule_length(net) == len(build_genie_schedule(net))


class TestGenieDiscovery:
    def test_one_pass_covers_everything(self):
        rng = np.random.default_rng(2)
        topo = topology.random_geometric(10, 0.5, rng, require_connected=True)
        net = build_network(
            topo, channels.common_channel_plus_random(10, 5, 3, rng)
        )
        schedule, result = run_genie(net)
        assert result.completed
        assert result.completion_time < len(schedule)

    def test_clique_schedule_is_n_per_channel(self):
        # In a clique every pair of speakers conflicts, so each channel
        # needs exactly N rounds.
        n, n_channels = 5, 3
        net = build_network(
            topology.clique(n), channels.homogeneous(n, n_channels)
        )
        assert genie_schedule_length(net) == n * n_channels

    def test_genie_beats_every_distributed_algorithm(self):
        from repro.sim.runner import run_synchronous, run_trials
        from repro.analysis.stats import mean

        rng = np.random.default_rng(3)
        topo = topology.random_geometric(12, 0.5, rng, require_connected=True)
        net = build_network(
            topo, channels.common_channel_plus_random(12, 6, 3, rng)
        )
        _, genie_result = run_genie(net)
        genie_time = genie_result.completion_time

        results = run_trials(
            lambda seed: run_synchronous(
                net, "algorithm3", seed=seed, max_slots=200_000, delta_est=8
            ),
            num_trials=6,
            base_seed=4,
        )
        alg3_mean = mean([r.completion_time for r in results])
        assert genie_time < alg3_mean

    def test_sparse_channel_usage_skipped(self):
        # A channel nobody shares produces no schedule entries.
        nodes = [
            NodeSpec(0, frozenset({0, 9})),
            NodeSpec(1, frozenset({0})),
        ]
        net = M2HeWNetwork(nodes, adjacency=[(0, 1)])
        channels_used = {c for c, _ in build_genie_schedule(net)}
        assert channels_used == {0}

    def test_protocol_validates_schedule(self):
        with pytest.raises(ConfigurationError, match="empty"):
            GenieScheduleProtocol(0, (0,), np.random.default_rng(0), [])
