"""Tests for the rejected doubling-estimate approach (§III-A2 ablation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.doubling import DoublingEstimateSyncDiscovery
from repro.core.base import Mode
from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.rng import RngFactory
from repro.sim.slotted import SlottedSimulator
from repro.sim.stopping import StoppingCondition


def make(oracle_n=10, oracle_s=2, oracle_rho=1.0, **kwargs):
    return DoublingEstimateSyncDiscovery(
        0,
        kwargs.pop("channels", (0, 1)),
        np.random.default_rng(kwargs.pop("seed", 0)),
        oracle_n=oracle_n,
        oracle_s=oracle_s,
        oracle_rho=oracle_rho,
        **kwargs,
    )


class TestSchedule:
    def test_estimates_double_across_epochs(self):
        p = make()
        first_epoch = p.epoch_slots(2)
        est_before, _ = p.schedule_position(first_epoch - 1)
        est_after, _ = p.schedule_position(first_epoch)
        assert est_before == 2
        assert est_after == 4

    def test_epoch_slots_use_theorem1_budget(self):
        from repro.core.bounds import theorem1_stage_budget
        from repro.core.params import stage_length

        p = make(oracle_n=10, oracle_s=2, oracle_rho=1.0, epsilon=0.1)
        expected = theorem1_stage_budget(2, 4, 1.0, 10, 0.1) * stage_length(4)
        assert p.epoch_slots(4) == expected

    def test_slot_in_stage_cycles_within_epoch(self):
        p = make()
        first_epoch = p.epoch_slots(2)
        # Epoch for estimate 4 has stage length 2: i alternates 1, 2.
        i_values = [
            p.schedule_position(first_epoch + k)[1] for k in range(4)
        ]
        assert i_values == [1, 2, 1, 2]

    def test_estimate_capped(self):
        p = make(max_estimate=8)
        far = p.epoch_slots(2) + p.epoch_slots(4) + p.epoch_slots(8) + 5
        est, _ = p.schedule_position(far)
        assert est == 8

    def test_probability_formula(self):
        p = make(channels=(0,))
        est, i = p.schedule_position(0)
        assert est == 2 and i == 1
        assert p.transmit_probability(0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make(oracle_n=1)
        with pytest.raises(ConfigurationError):
            make(oracle_rho=0.0)
        with pytest.raises(ConfigurationError):
            make(max_estimate=1)
        with pytest.raises(ConfigurationError):
            make().schedule_position(-1)

    def test_decisions_valid(self):
        p = make()
        for slot in range(200):
            d = p.decide_slot(slot)
            assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)
            assert d.channel in p.channels


class TestOracleDependence:
    """The paper's point: correct oracle values work, wrong ones do not
    carry the guarantee."""

    def net(self):
        topo = topology.clique(8)
        return build_network(topo, channels.homogeneous(8, 2))

    def run(self, net, oracle_n, oracle_s, oracle_rho, budget, seed=0):
        def factory(nid, chs, rng):
            return DoublingEstimateSyncDiscovery(
                nid, chs, rng,
                oracle_n=oracle_n, oracle_s=oracle_s, oracle_rho=oracle_rho,
            )

        sim = SlottedSimulator(net, factory, RngFactory(seed))
        return sim.run(StoppingCondition.slots(budget))

    def test_correct_oracle_discovers(self):
        net = self.net()
        result = self.run(
            net,
            oracle_n=net.num_nodes,
            oracle_s=net.max_channel_set_size,
            oracle_rho=net.min_span_ratio,
            budget=100_000,
        )
        assert result.completed

    def test_epochs_shrink_with_wrong_oracle(self):
        # Underestimating N and overestimating rho shrinks every epoch —
        # the per-epoch success guarantee that sized the schedule is
        # gone. (The protocol may still eventually succeed by luck; what
        # breaks is the sizing logic, which we check directly.)
        p_right = make(oracle_n=50, oracle_s=4, oracle_rho=0.25)
        p_wrong = make(oracle_n=2, oracle_s=1, oracle_rho=1.0)
        assert p_wrong.epoch_slots(8) < p_right.epoch_slots(8) / 10
