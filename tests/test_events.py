"""Unit tests for repro.sim.events."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(3.0, lambda: order.append("c"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(2.0, lambda: order.append("b"))
        while (e := q.pop_next()) is not None:
            e.action()
        assert order == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        q = EventQueue()
        order = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: order.append(n))
        while (e := q.pop_next()) is not None:
            e.action()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        assert q.now == 0.0
        q.pop_next()
        assert q.now == 5.0

    def test_scheduling_into_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.pop_next()
        with pytest.raises(SimulationError, match="before now"):
            q.schedule(1.0, lambda: None)

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1.0, lambda: fired.append(1))
        q.schedule(2.0, lambda: fired.append(2))
        handle.cancel()
        while (e := q.pop_next()) is not None:
            e.action()
        assert fired == [2]

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        h.cancel()
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        h = q.schedule(4.0, lambda: None)
        q.schedule(7.0, lambda: None)
        assert q.peek_time() == 4.0
        h.cancel()
        assert q.peek_time() == 7.0

    def test_tiny_negative_jitter_clamped(self):
        # Floating-point round-trips may produce times a hair before now;
        # those are clamped to now rather than rejected.
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.pop_next()
        event = q.schedule(1.0 - 1e-15, lambda: None)
        assert event.time == 1.0
