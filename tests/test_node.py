"""Unit tests for repro.net.node."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkModelError
from repro.net.node import NodeSpec


class TestNodeSpec:
    def test_basic_construction(self):
        node = NodeSpec(3, frozenset({1, 2}))
        assert node.node_id == 3
        assert node.channels == {1, 2}
        assert node.position is None

    def test_channel_count(self):
        assert NodeSpec(0, frozenset({5, 7, 9})).channel_count == 3

    def test_channels_coerced_to_frozenset(self):
        node = NodeSpec(0, {1, 2})  # type: ignore[arg-type]
        assert isinstance(node.channels, frozenset)

    def test_empty_channels_rejected(self):
        with pytest.raises(NetworkModelError, match="empty available channel set"):
            NodeSpec(0, frozenset())

    def test_negative_node_id_rejected(self):
        with pytest.raises(NetworkModelError, match="non-negative"):
            NodeSpec(-1, frozenset({0}))

    def test_negative_channel_rejected(self):
        with pytest.raises(NetworkModelError, match="negative channel"):
            NodeSpec(0, frozenset({-3, 1}))

    def test_position_coerced_to_float_tuple(self):
        node = NodeSpec(0, frozenset({0}), position=(1, 2))
        assert node.position == (1.0, 2.0)
        assert isinstance(node.position[0], float)

    def test_with_channels_preserves_identity_and_position(self):
        node = NodeSpec(4, frozenset({0}), position=(0.5, 0.5))
        other = node.with_channels({1, 2})
        assert other.node_id == 4
        assert other.position == (0.5, 0.5)
        assert other.channels == {1, 2}
        assert node.channels == {0}  # original untouched

    def test_distance(self):
        a = NodeSpec(0, frozenset({0}), position=(0.0, 0.0))
        b = NodeSpec(1, frozenset({0}), position=(3.0, 4.0))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_requires_positions(self):
        a = NodeSpec(0, frozenset({0}))
        b = NodeSpec(1, frozenset({0}), position=(1.0, 1.0))
        with pytest.raises(NetworkModelError, match="positions"):
            a.distance_to(b)

    def test_frozen(self):
        node = NodeSpec(0, frozenset({0}))
        with pytest.raises(AttributeError):
            node.node_id = 5  # type: ignore[misc]
