"""Unit tests for repro.sim.clock (drifting clock models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ClockModelError
from repro.sim.clock import (
    ConstantDriftClock,
    PerfectClock,
    PiecewiseDriftClock,
    RandomWalkDriftClock,
    SinusoidalDriftClock,
    check_drift_bound,
)


class TestPerfectClock:
    def test_identity_with_offset(self):
        clock = PerfectClock(offset=10.0)
        assert clock.local_from_real(5.0) == 15.0
        assert clock.real_from_local(15.0) == 5.0
        assert clock.drift_bound == 0.0

    def test_elapsed(self):
        clock = PerfectClock(offset=3.0)
        assert clock.elapsed_local(1.0, 4.0) == pytest.approx(3.0)


class TestConstantDriftClock:
    def test_rate(self):
        clock = ConstantDriftClock(0.1, offset=2.0)
        assert clock.rate == pytest.approx(1.1)
        assert clock.local_from_real(10.0) == pytest.approx(13.0)
        assert clock.real_from_local(13.0) == pytest.approx(10.0)

    def test_negative_drift(self):
        clock = ConstantDriftClock(-0.1)
        assert clock.local_from_real(10.0) == pytest.approx(9.0)

    def test_declared_bound_enforced(self):
        with pytest.raises(ClockModelError, match="exceeds declared bound"):
            ConstantDriftClock(0.2, drift_bound=0.1)

    def test_bound_defaults_to_abs_drift(self):
        assert ConstantDriftClock(-0.05).drift_bound == pytest.approx(0.05)

    def test_bound_must_be_below_one(self):
        with pytest.raises(ClockModelError):
            ConstantDriftClock(1.0)


class TestPiecewiseDriftClock:
    def test_two_segments(self):
        # rate 1.1 on [0, 10), rate 0.9 after.
        clock = PiecewiseDriftClock([10.0], [1.1, 0.9], offset=0.0)
        assert clock.local_from_real(10.0) == pytest.approx(11.0)
        assert clock.local_from_real(20.0) == pytest.approx(11.0 + 9.0)
        assert clock.real_from_local(11.0) == pytest.approx(10.0)
        assert clock.real_from_local(20.0) == pytest.approx(20.0)

    def test_rate_count_mismatch(self):
        with pytest.raises(ClockModelError, match="len"):
            PiecewiseDriftClock([5.0], [1.0])

    def test_breakpoints_must_increase(self):
        with pytest.raises(ClockModelError, match="increasing"):
            PiecewiseDriftClock([5.0, 5.0], [1.0, 1.0, 1.0])

    def test_declared_bound_enforced(self):
        with pytest.raises(ClockModelError, match="max drift"):
            PiecewiseDriftClock([1.0], [1.3, 1.0], drift_bound=0.1)

    def test_negative_real_rejected(self):
        clock = PiecewiseDriftClock([1.0], [1.0, 1.0])
        with pytest.raises(ClockModelError):
            clock.local_from_real(-1.0)

    def test_local_before_origin_rejected(self):
        clock = PiecewiseDriftClock([1.0], [1.0, 1.0], offset=5.0)
        with pytest.raises(ClockModelError, match="precedes"):
            clock.real_from_local(4.0)

    def test_roundtrip_many_points(self):
        clock = PiecewiseDriftClock(
            [3.0, 7.0, 12.0], [1.1, 0.95, 1.05, 0.9], offset=100.0
        )
        for t in np.linspace(0.0, 30.0, 61):
            assert clock.real_from_local(clock.local_from_real(t)) == pytest.approx(
                t, abs=1e-9
            )


class TestSinusoidalDriftClock:
    def test_drift_bound_respected(self):
        clock = SinusoidalDriftClock(amplitude=0.1, period=10.0)
        check_drift_bound(clock, horizon=50.0, samples=500)

    def test_roundtrip(self):
        clock = SinusoidalDriftClock(
            amplitude=0.14, period=7.0, phase=1.2, offset=42.0
        )
        for t in np.linspace(0.0, 40.0, 81):
            local = clock.local_from_real(t)
            assert clock.real_from_local(local) == pytest.approx(t, abs=1e-7)

    def test_invalid_period(self):
        with pytest.raises(ClockModelError, match="period"):
            SinusoidalDriftClock(0.1, period=0.0)

    def test_zero_amplitude_is_perfect(self):
        clock = SinusoidalDriftClock(0.0, period=5.0, offset=1.0)
        assert clock.local_from_real(3.0) == pytest.approx(4.0)


class TestRandomWalkDriftClock:
    def make(self, bound=0.1, seed=0, **kwargs):
        return RandomWalkDriftClock(
            bound, np.random.default_rng(seed), **kwargs
        )

    def test_monotone_increasing(self):
        clock = self.make()
        values = [clock.local_from_real(t) for t in np.linspace(0, 200, 400)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_drift_bound_holds(self):
        clock = self.make(bound=0.12, seed=5, mean_segment=3.0)
        check_drift_bound(clock, horizon=150.0, samples=1000)

    def test_roundtrip(self):
        clock = self.make(bound=0.14, seed=2, mean_segment=2.0, offset=7.0)
        for t in np.linspace(0.0, 100.0, 101):
            local = clock.local_from_real(t)
            assert clock.real_from_local(local) == pytest.approx(t, abs=1e-9)

    def test_deterministic_given_seed(self):
        a = self.make(seed=4)
        b = self.make(seed=4)
        ts = np.linspace(0, 50, 100)
        assert [a.local_from_real(t) for t in ts] == [
            b.local_from_real(t) for t in ts
        ]

    def test_lazy_extension_out_of_order_queries(self):
        clock = self.make(seed=1)
        far = clock.local_from_real(500.0)
        near = clock.local_from_real(1.0)
        assert near < far

    def test_invalid_mean_segment(self):
        with pytest.raises(ClockModelError, match="mean_segment"):
            self.make(mean_segment=0.0)


class TestCheckDriftBound:
    def test_catches_violation(self):
        # Declared bound 0.01 but actual drift 0.2.
        clock = ConstantDriftClock(0.2)
        object.__setattr__(clock, "_drift_bound", 0.01)
        with pytest.raises(ClockModelError, match="violated"):
            check_drift_bound(clock, horizon=10.0)

    def test_invalid_args(self):
        clock = PerfectClock()
        with pytest.raises(ClockModelError):
            check_drift_bound(clock, horizon=0.0)
        with pytest.raises(ClockModelError):
            check_drift_bound(clock, horizon=1.0, samples=1)
