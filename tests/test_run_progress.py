"""Tests for the ``on_progress`` observer threaded through the runners.

(`tests/test_progress.py` covers ``repro.analysis.progress``; this file
covers the *execution* observer added for the campaign service.)

The contract, for every backend:

* the observer receives ``(completed, total)`` with ``completed``
  strictly increasing to ``total`` — per trial on the serial path, per
  batch/chunk on the vectorized and pooled paths;
* under supervision it fires only after the journal holds the reported
  trials, and a resumed run's first report includes the restored count;
* it is purely observational: archived bytes are identical with and
  without one;
* an observer that raises aborts the campaign with its exception — the
  hook cancellation rides on.
"""

from __future__ import annotations

import pytest

from repro.net import M2HeWNetwork, NodeSpec
from repro.resilience.checkpoint import TrialJournal, journal_path
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervisor import run_supervised_trials
from repro.sim.batch import ExperimentSpec, run_batch, spec_fingerprint
from repro.sim.parallel import pool_supported, run_spec_trials
from repro.workloads.generator import WorkloadConfig

PARAMS = {"delta_est": 4, "max_slots": 30_000}


def tiny_net() -> M2HeWNetwork:
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 1})),
        NodeSpec(2, frozenset({0, 1})),
    ]
    return M2HeWNetwork(nodes, adjacency=[(0, 1), (1, 2), (0, 2)])


def small_spec(name="exp1", trials=4):
    return ExperimentSpec(
        name=name,
        workload=WorkloadConfig(
            topology="clique",
            topology_params={"num_nodes": 5},
            channel_model="homogeneous",
            channel_params={"num_channels": 2},
        ),
        protocol="algorithm3",
        trials=trials,
        runner_params=dict(PARAMS),
    )


def assert_monotone_to_total(events, trials):
    assert events, "observer never fired"
    completed = [c for c, _ in events]
    assert completed == sorted(set(completed)), "progress went backwards"
    assert completed[-1] == trials
    assert all(total == trials for _, total in events)


class TestRunSpecTrialsObserver:
    def test_serial_reports_every_trial(self):
        events = []
        results = run_spec_trials(
            tiny_net(),
            "algorithm3",
            trials=4,
            base_seed=0,
            runner_params=PARAMS,
            backend="serial",
            on_progress=lambda done, total: events.append((done, total)),
        )
        assert len(results) == 4
        assert events == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_vectorized_reports_per_batch(self):
        events = []
        run_spec_trials(
            tiny_net(),
            "algorithm3",
            trials=4,
            base_seed=0,
            runner_params={**PARAMS, "stop_on_full_coverage": False},
            backend="vectorized",
            batch_size=2,
            on_progress=lambda done, total: events.append((done, total)),
        )
        assert_monotone_to_total(events, 4)
        assert len(events) >= 2  # at least one report per batch

    @pytest.mark.skipif(not pool_supported(), reason="no process pool here")
    def test_pooled_reports_in_dispatch_order(self):
        events = []
        run_spec_trials(
            tiny_net(),
            "algorithm3",
            trials=4,
            base_seed=0,
            runner_params=PARAMS,
            max_workers=2,
            chunk_size=1,
            on_progress=lambda done, total: events.append((done, total)),
        )
        assert_monotone_to_total(events, 4)
        assert events == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_results_identical_with_and_without_observer(self):
        plain = run_spec_trials(
            tiny_net(), "algorithm3", trials=4, base_seed=0, runner_params=PARAMS
        )
        observed = run_spec_trials(
            tiny_net(),
            "algorithm3",
            trials=4,
            base_seed=0,
            runner_params=PARAMS,
            on_progress=lambda done, total: None,
        )
        assert plain == observed

    def test_raising_observer_aborts(self):
        class StopNow(RuntimeError):
            pass

        def observer(done, total):
            raise StopNow()

        with pytest.raises(StopNow):
            run_spec_trials(
                tiny_net(),
                "algorithm3",
                trials=4,
                base_seed=0,
                runner_params=PARAMS,
                backend="serial",
                on_progress=observer,
            )


class TestSupervisedObserver:
    def test_reports_after_journal(self, tmp_path):
        journal = TrialJournal.open(tmp_path, "exp", "f" * 64)
        journal_file = journal_path(tmp_path, "exp")
        events = []

        def observer(done, total):
            # The on-disk journal (header line + one fsynced line per
            # trial) must already hold everything being reported.
            lines = journal_file.read_text().strip().splitlines()
            assert len(lines) - 1 >= done
            events.append((done, total))

        run_supervised_trials(
            tiny_net(),
            "algorithm3",
            trials=3,
            base_seed=0,
            runner_params=PARAMS,
            chunk_size=1,  # per-trial granularity, as the service runs it
            policy=RetryPolicy(),
            journal=journal,
            on_progress=observer,
        )
        assert events == [(1, 3), (2, 3), (3, 3)]

    def test_resume_reports_restored_trials_first(self, tmp_path):
        journal = TrialJournal.open(tmp_path, "exp", "f" * 64)
        run_supervised_trials(
            tiny_net(),
            "algorithm3",
            trials=2,
            base_seed=0,
            runner_params=PARAMS,
            policy=RetryPolicy(),
            journal=journal,
        )
        events = []
        resumed = TrialJournal.open(tmp_path, "exp", "f" * 64)
        outcome = run_supervised_trials(
            tiny_net(),
            "algorithm3",
            trials=4,
            base_seed=0,
            runner_params=PARAMS,
            chunk_size=1,
            policy=RetryPolicy(),
            journal=resumed,
            on_progress=lambda done, total: events.append((done, total)),
        )
        assert outcome.restored == 2
        # First report announces the journal-restored trials, then the
        # remainder completes normally.
        assert events[0] == (2, 4)
        assert events[-1] == (4, 4)


class TestRunBatchObserver:
    def test_experiment_names_and_byte_identity(self, tmp_path):
        specs = [small_spec("a"), small_spec("b")]
        events = []
        run_batch(
            specs,
            base_seed=1,
            output_dir=tmp_path / "observed",
            on_progress=lambda name, done, total: events.append((name, done, total)),
        )
        assert {name for name, _, _ in events} == {"a", "b"}
        for name in ("a", "b"):
            assert_monotone_to_total(
                [(d, t) for n, d, t in events if n == name], 4
            )
        run_batch(specs, base_seed=1, output_dir=tmp_path / "plain")
        for plain in sorted((tmp_path / "plain").iterdir()):
            observed = tmp_path / "observed" / plain.name
            assert observed.read_bytes() == plain.read_bytes(), plain.name

    def test_supervised_batch_reports_progress(self, tmp_path):
        spec = small_spec()
        events = []
        run_batch(
            [spec],
            base_seed=1,
            checkpoint_dir=tmp_path / "ckpt",
            retry=RetryPolicy(),
            on_progress=lambda name, done, total: events.append((name, done, total)),
        )
        assert [e[:1] for e in events] == [("exp1",)] * len(events)
        assert_monotone_to_total([(d, t) for _, d, t in events], 4)
        # The journal fingerprint the run pinned is the spec fingerprint.
        journal = TrialJournal.open(
            tmp_path / "ckpt", "exp1", spec_fingerprint(spec, 1)
        )
        assert len(journal.restored) == 4
