"""Tests for the trial-batched vectorized engine and sparse reception.

The load-bearing guarantee: a batched trial is byte-identical to the
same trial on the serial fast engine, for any batch size, with or
without faults/erasure/offsets — so batching is purely a dispatch
optimization, exactly like worker fan-out.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.batched import BatchedSlottedSimulator
from repro.sim.fast_slotted import (
    DENSE_RECEPTION_CEILING,
    FastSlottedSimulator,
    FlatSchedule,
    SparseReception,
)
from repro.sim.parallel import run_spec_trials
from repro.sim.rng import RngFactory, derive_trial_seed
from repro.sim.runner import (
    _vector_schedule,
    run_experiment_trial,
    run_experiment_trials_batched,
)
from repro.sim.stopping import StoppingCondition
from repro.workloads.generator import WorkloadConfig

BASE_SEED = 4242


def homogeneous_net(n: int = 10):
    rng = np.random.default_rng(7)
    topo = topology.random_geometric(n, 0.6, rng)
    return build_network(topo, channels.uniform_random_subsets(n, 5, 3, rng))


def heterogeneous_net(n: int = 10):
    rng = np.random.default_rng(11)
    topo = topology.random_geometric(n, 0.6, rng)
    assignment = channels.uniform_random_subsets(
        n, 6, 2, rng, set_size_max=5
    )
    assignment = channels.repair_pair_overlap(topo, assignment, rng)
    return build_network(topo, assignment)


def serial_results(net, schedule, batch, stopping, **kwargs):
    out = []
    for i in range(batch):
        factory = RngFactory(derive_trial_seed(BASE_SEED, i))
        sim = FastSlottedSimulator(net, schedule, factory, **kwargs)
        out.append(sim.run(stopping))
    return out


def batched_results(net, schedule, batch, stopping, **kwargs):
    factories = [
        RngFactory(derive_trial_seed(BASE_SEED, i)) for i in range(batch)
    ]
    return BatchedSlottedSimulator(net, schedule, factories, **kwargs).run(
        stopping
    )


class TestBatchedMatchesSerial:
    """Bit-for-bit agreement with the serial fast engine."""

    @pytest.mark.parametrize(
        "protocol", ["algorithm1", "algorithm2", "algorithm3"]
    )
    @pytest.mark.parametrize("hetero", [False, True])
    def test_all_protocols_both_channel_models(self, protocol, hetero):
        net = heterogeneous_net() if hetero else homogeneous_net()
        schedule = _vector_schedule(protocol, net, 10)
        stopping = StoppingCondition(max_slots=400, stop_on_full_coverage=True)
        assert serial_results(net, schedule, 5, stopping) == batched_results(
            net, schedule, 5, stopping
        )

    def test_with_erasure_offsets_and_faults(self):
        from repro.faults.presets import fault_preset

        net = homogeneous_net()
        schedule = _vector_schedule("algorithm2", net, None)
        stopping = StoppingCondition(max_slots=300, stop_on_full_coverage=True)
        for preset in ["jamming_light", "bursty_loss", "late_join", "crash_node0"]:
            kwargs = dict(
                start_offsets={0: 3, 4: 1},
                erasure_prob=0.15,
                faults=fault_preset(preset),
            )
            assert serial_results(
                net, schedule, 4, stopping, **kwargs
            ) == batched_results(net, schedule, 4, stopping, **kwargs), preset

    def test_no_early_stop_budget_exhaustion(self):
        net = homogeneous_net(6)
        schedule = _vector_schedule("algorithm3", net, 6)
        stopping = StoppingCondition(max_slots=50, stop_on_full_coverage=False)
        serial = serial_results(net, schedule, 3, stopping)
        batched = batched_results(net, schedule, 3, stopping)
        assert serial == batched
        assert all(r.horizon == 50.0 for r in batched)

    def test_metadata_reports_fast_engine(self):
        net = homogeneous_net(6)
        schedule = _vector_schedule("algorithm2", net, None)
        stopping = StoppingCondition(max_slots=200, stop_on_full_coverage=True)
        (result,) = batched_results(net, schedule, 1, stopping)
        assert result.metadata["engine"] == "slotted-fast"


class TestBatchSizeInvariance:
    """Archives cannot depend on how trials were grouped into batches."""

    WORKLOAD = WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 6},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )
    PARAMS = {"max_slots": 5_000, "delta_est": None}

    def _archive(self, tmp_path, label, **kwargs):
        spec = ExperimentSpec(
            name="invariance",
            workload=self.WORKLOAD,
            protocol="algorithm2",
            trials=9,
            runner_params=dict(self.PARAMS),
        )
        out = tmp_path / label
        run_batch([spec], base_seed=77, output_dir=out, **kwargs)
        return (out / "invariance.json").read_bytes()

    @pytest.mark.parametrize("batch_size", [1, 4, 7, 32])
    def test_byte_identical_archives(self, tmp_path, batch_size):
        reference = self._archive(tmp_path, "serial", backend="serial")
        vectorized = self._archive(
            tmp_path,
            f"vec{batch_size}",
            backend="vectorized",
            batch_size=batch_size,
        )
        assert vectorized == reference

    def test_result_lists_match_serial_backend(self):
        from repro.workloads.generator import generate_network

        net = generate_network(self.WORKLOAD, seed=0)
        serial = run_spec_trials(
            net,
            "algorithm2",
            trials=9,
            base_seed=5,
            runner_params=self.PARAMS,
            backend="serial",
        )
        for batch_size in (1, 4, 7, 32):
            vectorized = run_spec_trials(
                net,
                "algorithm2",
                trials=9,
                base_seed=5,
                runner_params=self.PARAMS,
                backend="vectorized",
                batch_size=batch_size,
            )
            assert vectorized == serial


class TestVectorizedFallbacks:
    """Campaigns the batched engine cannot take fall back, byte-identically."""

    def test_algorithm4_falls_back(self):
        net = homogeneous_net(5)
        params = {"delta_est": 5, "max_frames_per_node": 30}
        serial = run_spec_trials(
            net,
            "algorithm4",
            trials=2,
            base_seed=3,
            runner_params=params,
            backend="serial",
        )
        vectorized = run_spec_trials(
            net,
            "algorithm4",
            trials=2,
            base_seed=3,
            runner_params=params,
            backend="vectorized",
        )
        assert vectorized == serial

    def test_reference_engine_falls_back(self):
        net = homogeneous_net(5)
        params = {"engine": "reference", "delta_est": 5, "max_slots": 2_000}
        seeds = [derive_trial_seed(9, i) for i in range(3)]
        expected = [
            run_experiment_trial(
                net, "algorithm1", seed=s, runner_params=params
            )
            for s in seeds
        ]
        actual = run_experiment_trials_batched(
            net, "algorithm1", seeds, runner_params=params
        )
        assert actual == expected

    def test_unsupported_param_falls_back(self):
        net = homogeneous_net(5)
        params = {"max_slots": 2_000, "universal_channels": None}
        seeds = [derive_trial_seed(9, i) for i in range(2)]
        expected = [
            run_experiment_trial(
                net, "algorithm2", seed=s, runner_params=params
            )
            for s in seeds
        ]
        assert (
            run_experiment_trials_batched(
                net, "algorithm2", seeds, runner_params=params
            )
            == expected
        )


class TestValidation:
    def test_needs_at_least_one_factory(self):
        net = homogeneous_net(5)
        schedule = _vector_schedule("algorithm2", net, None)
        with pytest.raises(ConfigurationError, match="at least one"):
            BatchedSlottedSimulator(net, schedule, [])

    def test_rejects_bad_erasure(self):
        net = homogeneous_net(5)
        schedule = _vector_schedule("algorithm2", net, None)
        with pytest.raises(ConfigurationError, match="erasure_prob"):
            BatchedSlottedSimulator(
                net, schedule, [RngFactory(0)], erasure_prob=1.0
            )

    def test_rejects_schedule_size_mismatch(self):
        net = homogeneous_net(5)
        other = _vector_schedule("algorithm2", homogeneous_net(6), None)
        with pytest.raises(ConfigurationError, match="covers"):
            BatchedSlottedSimulator(net, other, [RngFactory(0)])

    def test_rejects_negative_offset(self):
        net = homogeneous_net(5)
        schedule = _vector_schedule("algorithm2", net, None)
        with pytest.raises(ConfigurationError, match="offset"):
            BatchedSlottedSimulator(
                net, schedule, [RngFactory(0)], start_offsets={0: -1}
            )

    def test_batch_size_requires_vectorized_backend(self):
        net = homogeneous_net(5)
        with pytest.raises(ConfigurationError, match="vectorized"):
            run_spec_trials(
                net, "algorithm2", trials=2, backend="serial", batch_size=2
            )

    def test_conflicting_chunk_and_batch_size(self):
        net = homogeneous_net(5)
        with pytest.raises(ConfigurationError, match="chunk_size or batch_size"):
            run_spec_trials(
                net,
                "algorithm2",
                trials=4,
                backend="vectorized",
                batch_size=2,
                chunk_size=3,
            )


class TestScalarBoundPin:
    """The batched engine draws channel picks with a scalar bound when
    every node has the same |A(u)|; numpy must keep that bitstream-
    identical to the serial engine's array-bound call."""

    def test_scalar_and_array_bounds_agree(self):
        n, bound = 64, 5
        g1 = np.random.Generator(np.random.PCG64(12345))
        g2 = np.random.Generator(np.random.PCG64(12345))
        a = g1.integers(0, bound, n)
        b = g2.integers(0, np.full(n, bound, dtype=np.int64))
        assert np.array_equal(a, b)
        assert g1.bit_generator.state == g2.bit_generator.state


class TestSparseReceptionKernel:
    """The sparse kernel must agree with the dense matmul bit-for-bit."""

    @pytest.mark.parametrize("protocol", ["algorithm1", "algorithm2", "algorithm3"])
    def test_sparse_matches_dense_single_trial(self, protocol):
        net = heterogeneous_net()
        schedule = _vector_schedule(protocol, net, 10)
        stopping = StoppingCondition(max_slots=400, stop_on_full_coverage=True)
        runs = {}
        for kernel in ("dense", "sparse"):
            factory = RngFactory(BASE_SEED)
            sim = FastSlottedSimulator(
                net, schedule, factory, erasure_prob=0.1, reception=kernel
            )
            runs[kernel] = sim.run(stopping)
        assert runs["sparse"] == runs["dense"]

    def test_unknown_kernel_rejected(self):
        net = homogeneous_net(5)
        schedule = _vector_schedule("algorithm2", net, None)
        with pytest.raises(ConfigurationError, match="reception"):
            FastSlottedSimulator(
                net, schedule, RngFactory(0), reception="blocked"
            )

    def test_auto_threshold_is_dense_for_small_networks(self):
        # 5 nodes x 2 channels is far below the ceiling: auto == dense.
        assert 2 * 5 * 5 <= DENSE_RECEPTION_CEILING

    def test_resolve_counts_and_senders(self):
        # 3 nodes on one shared channel, fully connected: nodes 0 and 2
        # transmit, node 1 listens -> collision (count 2); with only
        # node 0 transmitting the count is 1 and the sender resolves.
        net = homogeneous_net(5)
        universal = sorted(net.universal_channel_set)
        index = {nid: i for i, nid in enumerate(net.node_ids)}
        kernel = SparseReception(net, index, universal)
        n = len(net.node_ids)
        listeners = np.array([1], dtype=np.int64)
        query = 0 * n + listeners  # channel 0, node 1
        counts, senders = kernel.resolve(
            np.array([0 * n + 0], dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.array([0], dtype=np.int64),
            query,
            len(universal) * n,
        )
        if counts[0] == 1:
            assert senders[0] == 0


class TestFlatScheduleReadOnly:
    def test_probabilities_view_rejects_writes(self):
        sizes = np.full(4, 2, dtype=np.int64)
        schedule = FlatSchedule(sizes, delta_est=4)
        p = schedule.probabilities(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            p[0] = 0.5
