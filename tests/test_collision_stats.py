"""Tests for the engines' collision/clear-reception counters."""

from __future__ import annotations

import pytest

from repro.core.base import SlotDecision, SynchronousProtocol
from repro.net import M2HeWNetwork, NodeSpec, build_network, channels, topology
from repro.sim.rng import RngFactory
from repro.sim.slotted import SlottedSimulator
from repro.sim.stopping import StoppingCondition
from repro.sim.runner import run_synchronous


class Scripted(SynchronousProtocol):
    actions = {}

    def decide_slot(self, local_slot):
        return self.actions[self.node_id]


def run_scripted(net, actions, slots=1):
    Scripted.actions = actions
    sim = SlottedSimulator(
        net, lambda nid, chs, rng: Scripted(nid, chs, rng), RngFactory(0)
    )
    return sim.run(StoppingCondition.slots(slots, stop_on_full_coverage=False))


def star3():
    return M2HeWNetwork(
        [
            NodeSpec(0, frozenset({0})),
            NodeSpec(1, frozenset({0})),
            NodeSpec(2, frozenset({0})),
        ],
        adjacency=[(0, 1), (0, 2)],
    )


class TestReferenceCounters:
    def test_collision_counted_at_listener(self):
        result = run_scripted(
            star3(),
            {
                0: SlotDecision.listen(0),
                1: SlotDecision.transmit(0),
                2: SlotDecision.transmit(0),
            },
        )
        assert result.metadata["collisions"][0] == 1
        assert result.metadata["clear_receptions"][0] == 0

    def test_clear_reception_counted(self):
        result = run_scripted(
            star3(),
            {
                0: SlotDecision.listen(0),
                1: SlotDecision.transmit(0),
                2: SlotDecision.listen(0),
            },
        )
        assert result.metadata["clear_receptions"][0] == 1
        assert result.metadata["collisions"][0] == 0
        # Node 2 cannot hear node 1 (not adjacent): silence for it.
        assert result.metadata["clear_receptions"][2] == 0

    def test_silence_counts_nothing(self):
        result = run_scripted(
            star3(),
            {
                0: SlotDecision.listen(0),
                1: SlotDecision.listen(0),
                2: SlotDecision.listen(0),
            },
        )
        assert all(v == 0 for v in result.metadata["collisions"].values())
        assert all(
            v == 0 for v in result.metadata["clear_receptions"].values()
        )

    def test_repeat_hellos_counted_each_time(self):
        result = run_scripted(
            star3(),
            {
                0: SlotDecision.listen(0),
                1: SlotDecision.transmit(0),
                2: SlotDecision.listen(0),
            },
            slots=5,
        )
        assert result.metadata["clear_receptions"][0] == 5


class TestEnginesAgreeOnContention:
    def test_fast_and_reference_rates_similar(self):
        net = build_network(topology.clique(8), channels.homogeneous(8, 2))

        def totals(engine, seed):
            result = run_synchronous(
                net,
                "algorithm3",
                seed=seed,
                max_slots=3000,
                delta_est=4,
                engine=engine,
                stop_on_full_coverage=False,
            )
            meta = result.metadata
            return (
                sum(meta["collisions"].values()) / result.horizon,
                sum(meta["clear_receptions"].values()) / result.horizon,
            )

        col_fast, clear_fast = totals("fast", 1)
        col_ref, clear_ref = totals("reference", 2)
        assert col_fast == pytest.approx(col_ref, rel=0.25)
        assert clear_fast == pytest.approx(clear_ref, rel=0.25)

    def test_higher_transmit_pressure_more_collisions(self):
        net = build_network(topology.clique(10), channels.homogeneous(10, 1))

        def collisions(delta_est):
            result = run_synchronous(
                net,
                "algorithm3",
                seed=3,
                max_slots=2000,
                delta_est=delta_est,
                stop_on_full_coverage=False,
            )
            return sum(result.metadata["collisions"].values())

        # delta_est=2 means p=1/2: heavy contention; delta_est=64: light.
        assert collisions(2) > 3 * collisions(64)
