"""Tests for the declarative batch runner."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.batch import BatchOutcome, ExperimentSpec, run_batch
from repro.sim.results import result_from_dict
from repro.workloads.generator import WorkloadConfig


def small_workload():
    return WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 5},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )


def spec(name="exp1", protocol="algorithm3", trials=2, **runner):
    runner.setdefault("delta_est", 8)
    runner.setdefault("max_slots", 30_000)
    return ExperimentSpec(
        name=name,
        workload=small_workload(),
        protocol=protocol,
        trials=trials,
        runner_params=runner,
    )


class TestSpecValidation:
    def test_bad_name(self):
        with pytest.raises(ConfigurationError, match="file stem"):
            spec(name="a/b")

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            spec(protocol="telepathy")

    def test_trials_positive(self):
        with pytest.raises(ConfigurationError, match="trials"):
            spec(trials=0)


class TestRunBatch:
    def test_runs_all_specs(self):
        outcomes = run_batch([spec("a"), spec("b", protocol="algorithm1")], base_seed=1)
        assert [o.spec.name for o in outcomes] == ["a", "b"]
        for o in outcomes:
            assert len(o.results) == 2
            assert o.completed_fraction == 1.0
            assert o.completion is not None
            assert o.network_params["N"] == 5

    def test_async_spec(self):
        async_spec = ExperimentSpec(
            name="async",
            workload=small_workload(),
            protocol="algorithm4",
            trials=2,
            runner_params={"delta_est": 8, "drift_bound": 0.05},
        )
        outcomes = run_batch([async_spec], base_seed=2)
        assert outcomes[0].completed_fraction == 1.0
        assert outcomes[0].results[0].time_unit == "seconds"

    def test_shared_trial_seeds_across_experiments(self):
        # Same workload + protocol + params => identical trials.
        outcomes = run_batch([spec("a"), spec("b")], base_seed=3)
        times_a = [r.completion_time for r in outcomes[0].results]
        times_b = [r.completion_time for r in outcomes[1].results]
        assert times_a == times_b

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_batch([spec("a"), spec("a")])

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_batch([])

    def test_trial_metadata(self):
        outcomes = run_batch([spec("a")], base_seed=1)
        meta = outcomes[0].results[1].metadata
        assert meta["experiment"] == "a"
        assert meta["trial"] == 1
        assert meta["workload"]["topology"] == "clique"

    def test_as_row(self):
        outcome = run_batch([spec("a")], base_seed=1)[0]
        row = outcome.as_row()
        assert row["experiment"] == "a"
        assert row["completed"] == 1.0
        assert "mean_time" in row


class TestArchiving:
    def test_files_written(self, tmp_path):
        run_batch([spec("a"), spec("b")], base_seed=1, output_dir=tmp_path)
        assert (tmp_path / "a.json").exists()
        assert (tmp_path / "b.json").exists()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert {e["name"] for e in manifest["experiments"]} == {"a", "b"}
        assert manifest["base_seed"] == 1

    def test_archived_trials_reload(self, tmp_path):
        outcomes = run_batch([spec("a")], base_seed=1, output_dir=tmp_path)
        payload = json.loads((tmp_path / "a.json").read_text())
        restored = [result_from_dict(d) for d in payload["trials"]]
        assert len(restored) == 2
        assert restored[0].coverage == outcomes[0].results[0].coverage

    def test_archive_records_spec(self, tmp_path):
        run_batch([spec("a")], base_seed=1, output_dir=tmp_path)
        payload = json.loads((tmp_path / "a.json").read_text())
        assert payload["spec"]["protocol"] == "algorithm3"
        assert payload["spec"]["workload"]["channel_model"] == "homogeneous"
        assert payload["network_params"]["N"] == 5
