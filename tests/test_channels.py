"""Unit tests for repro.net.channels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology


class TestHomogeneous:
    def test_all_nodes_identical(self):
        a = channels.homogeneous(4, 3)
        assert all(a[i] == {0, 1, 2} for i in range(4))

    def test_rho_is_one(self):
        topo = topology.clique(4)
        network = build_network(topo, channels.homogeneous(4, 3))
        assert network.min_span_ratio == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            channels.homogeneous(4, 0)


class TestUniformRandomSubsets:
    def test_sizes_fixed(self, rng):
        a = channels.uniform_random_subsets(10, 8, 3, rng)
        assert all(len(a[i]) == 3 for i in range(10))
        assert all(max(a[i]) < 8 for i in range(10))

    def test_sizes_ranged(self, rng):
        a = channels.uniform_random_subsets(50, 10, 2, rng, set_size_max=5)
        sizes = {len(a[i]) for i in range(50)}
        assert sizes <= {2, 3, 4, 5}
        assert len(sizes) > 1  # variety with 50 draws

    def test_size_exceeding_universal_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="exceeds universal"):
            channels.uniform_random_subsets(5, 3, 4, rng)

    def test_bad_range_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="below set_size"):
            channels.uniform_random_subsets(5, 8, 4, rng, set_size_max=3)


class TestCommonChannelPlusRandom:
    def test_everyone_has_common_channel(self, rng):
        a = channels.common_channel_plus_random(20, 10, 4, rng, common_channel=7)
        assert all(7 in a[i] for i in range(20))
        assert all(len(a[i]) == 4 for i in range(20))

    def test_common_channel_out_of_range(self, rng):
        with pytest.raises(ConfigurationError, match="common_channel"):
            channels.common_channel_plus_random(5, 4, 2, rng, common_channel=4)


class TestSingleCommonChannel:
    def test_pairwise_overlap_exactly_channel_zero(self, rng):
        a = channels.single_common_channel(6, 6 * 3 + 1, 4, rng)
        for i in range(6):
            assert len(a[i]) == 4
            assert 0 in a[i]
            for j in range(i + 1, 6):
                assert a[i] & a[j] == {0}

    def test_universal_too_small(self, rng):
        with pytest.raises(ConfigurationError, match="too small"):
            channels.single_common_channel(6, 10, 4, rng)

    def test_span_ratio_matches_construction(self, rng):
        topo = topology.clique(4)
        a = channels.single_common_channel(4, 4 * 2 + 1, 3, rng)
        network = build_network(topo, a)
        assert network.min_span_ratio == pytest.approx(1.0 / 3.0)


class TestAdversarialMinOverlap:
    def test_exact_overlap_everywhere(self, rng):
        topo = topology.grid(3, 3)
        a = channels.adversarial_min_overlap(topo, set_size=5, overlap=2, rng=rng)
        network = build_network(topo, a)
        for link in network.links():
            assert len(link.span) == 2
        assert network.min_span_ratio == pytest.approx(2.0 / 5.0)

    def test_overlap_equals_set_size_is_homogeneous_pool(self, rng):
        topo = topology.line(3)
        a = channels.adversarial_min_overlap(topo, set_size=3, overlap=3, rng=rng)
        assert a[0] == a[1] == a[2]

    def test_invalid_overlap(self, rng):
        topo = topology.line(3)
        with pytest.raises(ConfigurationError):
            channels.adversarial_min_overlap(topo, set_size=3, overlap=0, rng=rng)
        with pytest.raises(ConfigurationError):
            channels.adversarial_min_overlap(topo, set_size=3, overlap=4, rng=rng)


class TestRepairPairOverlap:
    def test_disjoint_pairs_get_a_shared_channel(self, rng):
        topo = topology.line(3)
        assignment = {0: frozenset({0}), 1: frozenset({1}), 2: frozenset({2})}
        fixed = channels.repair_pair_overlap(topo, assignment, rng)
        assert fixed[0] & fixed[1]
        assert fixed[1] & fixed[2]

    def test_no_change_when_already_overlapping(self, rng):
        topo = topology.line(2)
        assignment = {0: frozenset({0, 1}), 1: frozenset({1, 2})}
        fixed = channels.repair_pair_overlap(topo, assignment, rng)
        assert fixed == assignment

    def test_input_not_mutated(self, rng):
        topo = topology.line(2)
        assignment = {0: frozenset({0}), 1: frozenset({1})}
        channels.repair_pair_overlap(topo, assignment, rng)
        assert assignment[0] == {0}
        assert assignment[1] == {1}
