"""Unit tests for repro.analysis.network_stats."""

from __future__ import annotations

import pytest

from repro.analysis.network_stats import profile_network
from repro.exceptions import NetworkModelError
from repro.net import M2HeWNetwork, NodeSpec, build_network, channels, topology


class TestProfileNetwork:
    def test_homogeneous_clique(self):
        net = build_network(topology.clique(4), channels.homogeneous(4, 3))
        profile = profile_network(net)
        assert profile.channel_set_sizes == {3: 4}
        assert profile.span_sizes == {3: 12}
        assert profile.mean_span_ratio == pytest.approx(1.0)
        assert profile.heterogeneity_index == pytest.approx(0.0)
        assert profile.asymmetric_links == 0
        assert profile.isolated_nodes == ()
        assert all(v == 12 for v in profile.per_channel_links.values())
        assert all(v == 3 for v in profile.per_channel_max_degree.values())

    def test_heterogeneous_triangle(self, triangle):
        profile = profile_network(triangle)
        assert profile.channel_set_sizes == {2: 2, 3: 1}
        # Channel 0 shared by all three nodes: 6 links use it.
        assert profile.per_channel_links[0] == 6
        assert profile.per_channel_max_degree[0] == 2
        assert 0 < profile.heterogeneity_index < 1

    def test_isolated_node_listed(self):
        nodes = [
            NodeSpec(0, frozenset({0})),
            NodeSpec(1, frozenset({0})),
            NodeSpec(2, frozenset({1})),  # no shared channel with anyone
        ]
        net = M2HeWNetwork(nodes, adjacency=[(0, 1), (1, 2)])
        profile = profile_network(net)
        assert profile.isolated_nodes == (2,)

    def test_asymmetric_links_counted(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))]
        net = M2HeWNetwork(nodes, directed_adjacency=[(0, 1)])
        assert profile_network(net).asymmetric_links == 1

    def test_span_ratios_sorted(self, triangle):
        ratios = profile_network(triangle).span_ratios
        assert list(ratios) == sorted(ratios)
        assert ratios[0] == pytest.approx(triangle.min_span_ratio)

    def test_as_rows(self, triangle):
        rows = profile_network(triangle).as_rows()
        assert {r["channel"] for r in rows} == {0, 1, 2}
        assert all({"links_using", "max_degree"} <= set(r) for r in rows)

    def test_no_links_rejected(self):
        net = M2HeWNetwork([NodeSpec(0, frozenset({0}))], adjacency=[])
        with pytest.raises(NetworkModelError, match="no links"):
            profile_network(net)
