"""Unit tests for repro.sim.trace."""

from __future__ import annotations

import pytest

from repro.core.base import Mode
from repro.exceptions import SimulationError
from repro.sim.trace import ExecutionTrace, FrameRecord, SlotRecord


def frame(node_id=0, index=0, start=0.0, length=3.0, mode=Mode.LISTEN, channel=0):
    bounds = tuple(start + j * length / 3 for j in range(4))
    return FrameRecord(
        node_id=node_id,
        frame_index=index,
        start=bounds[0],
        end=bounds[-1],
        slot_bounds=bounds,
        mode=mode,
        channel=channel,
    )


class TestFrameRecord:
    def test_duration(self):
        assert frame(length=3.0).duration == pytest.approx(3.0)

    def test_slot_interval(self):
        f = frame(start=0.0, length=3.0)
        assert f.slot_interval(0) == (0.0, 1.0)
        assert f.slot_interval(2) == (2.0, 3.0)
        assert f.num_slots == 3

    def test_slot_interval_range_checked(self):
        with pytest.raises(SimulationError, match="out of range"):
            frame().slot_interval(3)

    def test_overlap(self):
        a = frame(start=0.0, length=3.0)
        b = frame(node_id=1, start=2.0, length=3.0)
        c = frame(node_id=1, start=3.0, length=3.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching only

    def test_invalid_duration(self):
        with pytest.raises(SimulationError, match="duration"):
            FrameRecord(0, 0, 1.0, 1.0, (1.0, 1.0), Mode.QUIET, None)

    def test_bounds_must_span_frame(self):
        with pytest.raises(SimulationError, match="span"):
            FrameRecord(0, 0, 0.0, 3.0, (0.0, 1.0, 2.0, 2.5), Mode.QUIET, None)

    def test_bounds_must_increase(self):
        with pytest.raises(SimulationError, match="increasing"):
            FrameRecord(0, 0, 0.0, 3.0, (0.0, 2.0, 1.0, 3.0), Mode.QUIET, None)


class TestExecutionTrace:
    def test_frames_ordered_per_node(self):
        trace = ExecutionTrace()
        trace.add_frame(frame(index=0, start=0.0))
        trace.add_frame(frame(index=1, start=3.0))
        assert [f.frame_index for f in trace.frames_of(0)] == [0, 1]

    def test_out_of_order_frames_rejected(self):
        trace = ExecutionTrace()
        trace.add_frame(frame(index=0, start=3.0))
        with pytest.raises(SimulationError, match="before previous"):
            trace.add_frame(frame(index=1, start=0.0))

    def test_full_frames_after(self):
        trace = ExecutionTrace()
        for k in range(4):
            trace.add_frame(frame(index=k, start=3.0 * k))
        after = trace.full_frames_of(0, after=4.0)
        assert [f.frame_index for f in after] == [2, 3]

    def test_node_ids_union_of_slots_and_frames(self):
        trace = ExecutionTrace()
        trace.add_frame(frame(node_id=2))
        trace.add_slot(SlotRecord(5, 0, 0, Mode.LISTEN, 1))
        assert trace.node_ids == [2, 5]

    def test_total_frames(self):
        trace = ExecutionTrace()
        trace.add_frame(frame(node_id=0, index=0))
        trace.add_frame(frame(node_id=1, index=0))
        assert trace.total_frames() == 2

    def test_frames_of_returns_copy(self):
        trace = ExecutionTrace()
        trace.add_frame(frame())
        trace.frames_of(0).clear()
        assert len(trace.frames_of(0)) == 1
