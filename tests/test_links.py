"""Unit tests for repro.net.links."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkModelError
from repro.net.links import DirectedLink


class TestDirectedLink:
    def test_basic(self):
        link = DirectedLink(1, 2, frozenset({0, 3}), receiver_channel_count=4)
        assert link.key == (1, 2)
        assert link.reverse_key() == (2, 1)
        assert link.span == {0, 3}

    def test_span_ratio_uses_receiver_set(self):
        # Paper: span-ratio of (u, v) is |span| / |A(receiver)|.
        link = DirectedLink(0, 1, frozenset({0}), receiver_channel_count=4)
        assert link.span_ratio == pytest.approx(0.25)

    def test_span_ratio_bounds(self):
        full = DirectedLink(0, 1, frozenset({0, 1}), receiver_channel_count=2)
        assert full.span_ratio == pytest.approx(1.0)

    def test_self_link_rejected(self):
        with pytest.raises(NetworkModelError, match="self-link"):
            DirectedLink(3, 3, frozenset({0}), receiver_channel_count=1)

    def test_empty_span_rejected(self):
        with pytest.raises(NetworkModelError, match="empty span"):
            DirectedLink(0, 1, frozenset(), receiver_channel_count=1)

    def test_span_larger_than_receiver_set_rejected(self):
        with pytest.raises(NetworkModelError, match="exceeds"):
            DirectedLink(0, 1, frozenset({0, 1, 2}), receiver_channel_count=2)
