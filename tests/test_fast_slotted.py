"""Unit tests for the vectorized engine and its schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm1 import StagedSyncDiscovery
from repro.core.algorithm2 import GrowingEstimateSyncDiscovery
from repro.core.algorithm3 import FlatSyncDiscovery
from repro.exceptions import ConfigurationError
from repro.net import M2HeWNetwork, NodeSpec, build_network, channels, topology
from repro.sim.fast_slotted import (
    FastSlottedSimulator,
    FlatSchedule,
    GrowingEstimateSchedule,
    StagedSchedule,
)
from repro.sim.rng import RngFactory
from repro.sim.stopping import StoppingCondition


class TestSchedulesMatchProtocols:
    """The vector schedules must reproduce the protocol objects' p."""

    def test_staged_matches_algorithm1(self):
        sizes = np.array([1, 3, 7])
        schedule = StagedSchedule(sizes, delta_est=16)
        protos = [
            StagedSyncDiscovery(i, range(s), np.random.default_rng(0), 16)
            for i, s in enumerate(sizes)
        ]
        for slot in range(20):
            p_vec = schedule.probabilities(np.full(3, slot))
            for i, proto in enumerate(protos):
                assert p_vec[i] == pytest.approx(proto.transmit_probability(slot))

    def test_growing_matches_algorithm2(self):
        sizes = np.array([2, 5])
        schedule = GrowingEstimateSchedule(sizes)
        protos = [
            GrowingEstimateSyncDiscovery(i, range(s), np.random.default_rng(0))
            for i, s in enumerate(sizes)
        ]
        for slot in range(200):
            p_vec = schedule.probabilities(np.full(2, slot))
            for i, proto in enumerate(protos):
                assert p_vec[i] == pytest.approx(proto.transmit_probability(slot))

    def test_flat_matches_algorithm3(self):
        sizes = np.array([1, 4, 9])
        schedule = FlatSchedule(sizes, delta_est=8)
        protos = [
            FlatSyncDiscovery(i, range(s), np.random.default_rng(0), 8)
            for i, s in enumerate(sizes)
        ]
        p_vec = schedule.probabilities(np.zeros(3, dtype=np.int64))
        for i, proto in enumerate(protos):
            assert p_vec[i] == pytest.approx(proto.transmit_probability(0))

    def test_mixed_local_slots(self):
        # Different nodes at different local slots (staggered starts).
        schedule = StagedSchedule(np.array([1, 1]), delta_est=16)
        p = schedule.probabilities(np.array([0, 3]))
        assert p[0] == pytest.approx(min(0.5, 1 / 2))
        assert p[1] == pytest.approx(min(0.5, 1 / 16))

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            FlatSchedule(np.array([0]), delta_est=4)


class TestFastEngine:
    def make_network(self):
        topo = topology.clique(6)
        return build_network(topo, channels.homogeneous(6, 2))

    def test_completes_on_clique(self):
        net = self.make_network()
        sim = FastSlottedSimulator(
            net, FlatSchedule(np.full(6, 2), delta_est=8), RngFactory(3)
        )
        result = sim.run(StoppingCondition.slots(20_000))
        assert result.completed
        assert result.metadata["engine"] == "slotted-fast"

    def test_neighbor_tables_reconstructed_from_spans(self):
        net = self.make_network()
        sim = FastSlottedSimulator(
            net, FlatSchedule(np.full(6, 2), delta_est=8), RngFactory(3)
        )
        result = sim.run(StoppingCondition.slots(20_000))
        for nid in net.node_ids:
            expected = {v: net.span(v, nid) for v in net.discoverable_neighbors(nid)}
            assert result.neighbor_tables[nid] == expected

    def test_schedule_size_mismatch_rejected(self):
        net = self.make_network()
        with pytest.raises(ConfigurationError, match="covers"):
            FastSlottedSimulator(
                net, FlatSchedule(np.full(4, 2), delta_est=8), RngFactory(0)
            )

    def test_start_offsets_delay_discovery(self):
        net = self.make_network()
        offsets = {nid: 50 for nid in net.node_ids}
        sim = FastSlottedSimulator(
            net,
            FlatSchedule(np.full(6, 2), delta_est=8),
            RngFactory(3),
            start_offsets=offsets,
        )
        result = sim.run(StoppingCondition.slots(20_000))
        assert result.completed
        assert min(result.covered_times()) >= 50.0
        assert result.last_start_time == 50.0

    def test_heavy_erasure_blocks_everything(self):
        net = self.make_network()
        sim = FastSlottedSimulator(
            net,
            FlatSchedule(np.full(6, 2), delta_est=8),
            RngFactory(3),
            erasure_prob=0.999999,
        )
        result = sim.run(StoppingCondition.slots(500))
        assert result.num_covered == 0

    def test_isolated_pair_no_shared_channel(self):
        net = M2HeWNetwork(
            [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({1}))],
            adjacency=[(0, 1)],
        )
        sim = FastSlottedSimulator(
            net, FlatSchedule(np.array([1, 1]), delta_est=2), RngFactory(0)
        )
        result = sim.run(StoppingCondition.slots(100))
        # No links to cover: vacuously complete immediately.
        assert result.completed
        assert result.num_links == 0

    def test_deterministic_given_seed(self):
        net = self.make_network()

        def run(seed):
            sim = FastSlottedSimulator(
                net, FlatSchedule(np.full(6, 2), delta_est=8), RngFactory(seed)
            )
            return sim.run(StoppingCondition.slots(20_000))

        a, b = run(11), run(11)
        assert a.coverage == b.coverage
        c = run(12)
        assert a.coverage != c.coverage
