"""Unit tests for the campaign service building blocks.

Covers the request surface (``repro.service.campaigns``), job
persistence (``jobs``), the verify-before-serve result store
(``store``), quota scheduling (``scheduler``), the progress bridge
(``progress``), HTTP request parsing (``http``) and the job executor
(``worker``) — everything below the asyncio app, which
``test_service_app.py`` exercises end to end.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import (
    ArchiveCorruptionError,
    ConfigurationError,
    JobCancelledError,
    QuotaExceededError,
)
from repro.resilience.chaos import flip_byte
from repro.service.campaigns import (
    CampaignRequest,
    campaign_specs,
    request_fingerprint,
    resolve_fault_plan,
)
from repro.service.http import HttpError, _read_request
from repro.service.jobs import CampaignJob, JobStore
from repro.service.progress import ProgressTracker
from repro.service.scheduler import CampaignScheduler, QuotaPolicy
from repro.service.store import ResultStore
from repro.service.worker import execute_job
from repro.sim.batch import batch_fingerprint, run_batch
from repro.workloads.scenarios import scenario

QUICK = dict(
    scenario="single_common_channel",
    protocols=("algorithm3",),
    trials=2,
    max_slots=50_000,
)


def request(**overrides):
    kwargs = dict(QUICK)
    kwargs.update(overrides)
    return CampaignRequest(**kwargs)


def make_job(job_id="job-000001", seq=1, **overrides):
    req = request(**overrides)
    return CampaignJob(
        job_id=job_id,
        seq=seq,
        request=req,
        fingerprint=request_fingerprint(req),
    )


class TestCampaignRequest:
    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            request(scenario="atlantis")

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            request(protocols=("telepathy",))

    def test_duplicate_protocols(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            request(protocols=("algorithm3", "algorithm3"))

    def test_empty_protocols(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            request(protocols=())

    def test_bad_counts(self):
        with pytest.raises(ConfigurationError, match="trials"):
            request(trials=0)
        with pytest.raises(ConfigurationError, match="max_slots"):
            request(max_slots=0)
        with pytest.raises(ConfigurationError, match="delta_est"):
            request(delta_est=0)

    def test_bad_fault_selector(self):
        with pytest.raises(ConfigurationError, match="fault selector"):
            request(faults="gremlins")

    def test_from_dict_round_trip(self):
        req = request(faults="none", client="bench")
        assert CampaignRequest.from_dict(req.as_dict()) == req

    def test_from_dict_rejects_unknown_keys(self):
        payload = request().as_dict()
        payload["workers"] = 4
        with pytest.raises(ConfigurationError, match="unknown campaign request"):
            CampaignRequest.from_dict(payload)

    def test_from_dict_requires_scenario_and_protocols(self):
        with pytest.raises(ConfigurationError, match="'scenario'"):
            CampaignRequest.from_dict({"protocols": ["algorithm3"]})
        with pytest.raises(ConfigurationError, match="'protocols'"):
            CampaignRequest.from_dict({"scenario": "single_common_channel"})

    def test_from_dict_rejects_string_protocols(self):
        with pytest.raises(ConfigurationError, match="list of protocol"):
            CampaignRequest.from_dict(
                {"scenario": "single_common_channel", "protocols": "algorithm3"}
            )

    def test_from_dict_type_checks_integers(self):
        payload = request().as_dict()
        payload["trials"] = "2"
        with pytest.raises(ConfigurationError, match="must be an integer"):
            CampaignRequest.from_dict(payload)
        payload["trials"] = True
        with pytest.raises(ConfigurationError, match="must be an integer"):
            CampaignRequest.from_dict(payload)

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            CampaignRequest.from_dict(["algorithm3"])


class TestCampaignSpecs:
    def test_expansion_names_and_order(self):
        req = request(protocols=("algorithm1", "algorithm3"))
        specs = campaign_specs(req)
        assert [s.name for s in specs] == [
            "single_common_channel_algorithm1",
            "single_common_channel_algorithm3",
        ]
        for spec in specs:
            assert spec.trials == req.trials
            assert spec.network_seed == req.network_seed
            assert spec.runner_params["max_slots"] == req.max_slots

    def test_async_protocol_params(self):
        req = request(protocols=("algorithm4",), faults="none")
        (spec,) = campaign_specs(req)
        assert "max_slots" not in spec.runner_params
        assert spec.runner_params["delta_est"] >= 1

    def test_resolve_fault_plan_selectors(self):
        scen = scenario("single_common_channel")
        assert resolve_fault_plan("scenario", scen) is scen.fault_plan
        assert resolve_fault_plan("none", scen) is None
        assert resolve_fault_plan("jamming_light", scen) is not None


class TestJobStore:
    def test_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job()
        store.save(job)
        assert store.get(job.job_id) is job
        fresh = JobStore(tmp_path)
        (loaded,) = fresh.load_all()
        assert loaded.as_dict() == job.as_dict()

    def test_next_seq_and_order(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.next_seq() == 1
        store.save(make_job("job-000002", seq=2))
        store.save(make_job("job-000001", seq=1))
        assert store.next_seq() == 3
        assert [j.seq for j in store.jobs_in_order()] == [1, 2]

    def test_running_demotes_to_queued_on_load(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job()
        job.state = "running"
        store.save(job)
        fresh = JobStore(tmp_path)
        (loaded,) = fresh.load_all()
        assert loaded.state == "queued"
        # The demotion is persisted, not just in-memory.
        record = json.loads((tmp_path / "job-000001.json").read_text())
        assert record["state"] == "queued"

    def test_corrupt_record_raises(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_job())
        (tmp_path / "job-000001.json").write_text("{not json")
        with pytest.raises(ArchiveCorruptionError, match="corrupt"):
            JobStore(tmp_path).load_all()

    def test_invalid_state_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job state"):
            job = make_job()
            job.state = "queued"
            CampaignJob(
                job_id="x", seq=1, request=job.request,
                fingerprint=job.fingerprint, state="paused",
            )


def populate_store(store: ResultStore, req: CampaignRequest) -> str:
    """Run the campaign directly into its store slot; returns the key."""
    specs = campaign_specs(req)
    fingerprint = batch_fingerprint(specs, req.base_seed)
    run_batch(specs, base_seed=req.base_seed, output_dir=store.path_for(fingerprint))
    return fingerprint


class TestResultStore:
    def test_lookup_serves_only_verified(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.lookup("a" * 64) is None
        fingerprint = populate_store(store, request())
        path = store.lookup(fingerprint)
        assert path is not None and path.is_dir()
        assert store.verify(fingerprint).ok

    def test_corrupt_archive_is_discarded(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = populate_store(store, request())
        flip_byte(
            store.path_for(fingerprint) / "single_common_channel_algorithm3.json",
            index=10,
        )
        assert store.lookup(fingerprint) is None
        assert not store.path_for(fingerprint).exists()

    def test_malformed_fingerprints_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ConfigurationError, match="malformed"):
                store.path_for(bad)

    def test_read_file_only_manifest_names(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = populate_store(store, request())
        names = store.archive_files(fingerprint)
        assert names[0] == "manifest.json"
        assert "single_common_channel_algorithm3.json" in names
        for name in names:
            assert store.read_file(fingerprint, name)
        with pytest.raises(ConfigurationError, match="not a file"):
            store.read_file(fingerprint, "../../etc/passwd")


class TestStoreEviction:
    def _filled(self, tmp_path, **caps):
        """A store holding three archives, touched in seed order."""
        store = ResultStore(tmp_path, **caps)
        fingerprints = []
        for seed in (0, 1, 2):
            fingerprints.append(
                populate_store(store, request(base_seed=seed))
            )
            store.touch(fingerprints[-1])
        return store, fingerprints

    def test_cap_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="max_archives"):
            ResultStore(tmp_path, max_archives=0)
        with pytest.raises(ConfigurationError, match="max_bytes"):
            ResultStore(tmp_path, max_bytes=0)

    def test_no_caps_never_evicts(self, tmp_path):
        store, fingerprints = self._filled(tmp_path)
        assert store.enforce_limits() == []
        assert store.stored_fingerprints() == sorted(fingerprints)

    def test_count_cap_evicts_least_recently_used(self, tmp_path):
        store, fingerprints = self._filled(tmp_path, max_archives=2)
        store.touch(fingerprints[0])  # oldest becomes most recent
        evicted = store.enforce_limits()
        assert evicted == [fingerprints[1]]
        assert sorted(store.stored_fingerprints()) == sorted(
            [fingerprints[0], fingerprints[2]]
        )

    def test_lookup_refreshes_recency(self, tmp_path):
        store, fingerprints = self._filled(tmp_path, max_archives=1)
        assert store.lookup(fingerprints[0]) is not None  # touch via use
        evicted = store.enforce_limits()
        assert fingerprints[0] not in evicted
        assert store.stored_fingerprints() == [fingerprints[0]]

    def test_byte_cap_evicts_until_under(self, tmp_path):
        store, fingerprints = self._filled(tmp_path)
        one_archive = store._archive_bytes(store.path_for(fingerprints[0]))
        capped = ResultStore(tmp_path, max_bytes=one_archive + 1)
        evicted = capped.enforce_limits()
        assert len(evicted) == 2
        assert capped.total_bytes() <= one_archive + 1

    def test_protected_fingerprints_survive(self, tmp_path):
        store, fingerprints = self._filled(tmp_path, max_archives=1)
        evicted = store.enforce_limits(protect={fingerprints[0]})
        assert fingerprints[0] not in evicted
        assert fingerprints[0] in store.stored_fingerprints()

    def test_corrupt_archives_evicted_first(self, tmp_path):
        store, fingerprints = self._filled(tmp_path, max_archives=2)
        store.touch(fingerprints[2])  # newest recency, then corrupt it
        flip_byte(
            store.path_for(fingerprints[2])
            / "single_common_channel_algorithm3.json",
            index=10,
        )
        evicted = store.enforce_limits()
        assert evicted == [fingerprints[2]]

    def test_torn_lru_index_tolerated(self, tmp_path):
        store, fingerprints = self._filled(tmp_path, max_archives=2)
        (tmp_path / ".lru-index.json").write_text('{"kind": "lru", "cou')
        evicted = store.enforce_limits()  # falls back to empty recency
        assert len(evicted) == 1
        assert len(store.stored_fingerprints()) == 2


class TestQuotaPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_active"):
            QuotaPolicy(max_active=0)
        with pytest.raises(ConfigurationError, match="max_queued"):
            QuotaPolicy(max_queued=0)
        with pytest.raises(ConfigurationError, match="max_per_client"):
            QuotaPolicy(max_per_client=0)
        with pytest.raises(ConfigurationError, match="min_interval"):
            QuotaPolicy(min_interval=-1.0)


class TestCampaignScheduler:
    def test_fifo_under_max_active(self):
        sched = CampaignScheduler(QuotaPolicy(max_active=1))
        first = make_job("job-000001", seq=1, trials=2)
        second = make_job("job-000002", seq=2, trials=3)
        sched.submit(first)
        sched.submit(second)
        assert sched.start_next() is first
        assert sched.start_next() is None  # slot taken
        sched.finish(first.job_id)
        assert sched.start_next() is second

    def test_queue_depth_limit(self):
        sched = CampaignScheduler(QuotaPolicy(max_queued=1))
        sched.submit(make_job("job-000001", seq=1, trials=2))
        with pytest.raises(QuotaExceededError, match="queue is full"):
            sched.submit(make_job("job-000002", seq=2, trials=3))

    def test_per_client_limit(self):
        sched = CampaignScheduler(QuotaPolicy(max_per_client=1, max_queued=8))
        sched.submit(make_job("job-000001", seq=1, trials=2, client="alice"))
        with pytest.raises(QuotaExceededError, match="'alice'"):
            sched.submit(make_job("job-000002", seq=2, trials=3, client="alice"))
        # A different client is unaffected.
        sched.submit(make_job("job-000003", seq=3, trials=3, client="bob"))

    def test_min_interval_uses_injected_clock(self):
        now = [0.0]
        sched = CampaignScheduler(
            QuotaPolicy(min_interval=10.0, max_per_client=8),
            clock=lambda: now[0],
        )
        sched.submit(make_job("job-000001", seq=1, trials=2))
        now[0] = 5.0
        with pytest.raises(QuotaExceededError, match="must wait"):
            sched.submit(make_job("job-000002", seq=2, trials=3))
        now[0] = 10.0
        sched.submit(make_job("job-000002", seq=2, trials=3))

    def test_requeue_bypasses_quotas(self):
        sched = CampaignScheduler(QuotaPolicy(max_queued=1))
        sched.submit(make_job("job-000001", seq=1, trials=2))
        sched.requeue(make_job("job-000002", seq=2, trials=3))
        assert [j.seq for j in sched.queued_jobs()] == [1, 2]

    def test_cancel_queued(self):
        sched = CampaignScheduler()
        job = make_job()
        sched.submit(job)
        assert sched.cancel_queued(job.job_id) is True
        assert sched.cancel_queued(job.job_id) is False
        assert not sched.has_work


class TestProgressTracker:
    def test_cursor_protocol(self):
        tracker = ProgressTracker()
        tracker.emit("j1", "state", "queued")
        tracker.emit("j1", "progress", "running", experiment="e", completed=1, total=2)
        events = tracker.events_since("j1", 0)
        assert [e.seq for e in events] == [0, 1]
        cursor = events[-1].seq + 1
        assert tracker.events_since("j1", cursor) == []
        tracker.emit("j1", "state", "done")
        (tail,) = tracker.events_since("j1", cursor)
        assert tail.state == "done"
        assert tracker.latest("j1").state == "done"
        assert tracker.latest("unknown") is None

    def test_event_dict_omits_unset_fields(self):
        tracker = ProgressTracker()
        state = tracker.emit("j1", "state", "queued").as_dict()
        assert "experiment" not in state and "completed" not in state
        progress = tracker.emit(
            "j1", "progress", "running", experiment="e", completed=1, total=4
        ).as_dict()
        assert progress["experiment"] == "e"
        assert (progress["completed"], progress["total"]) == (1, 4)


def parse_request(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await _read_request(reader)

    return asyncio.run(go())


class TestHttpParsing:
    def test_basic_request(self):
        req = parse_request(
            b"GET /campaigns/job-1?since=3 HTTP/1.1\r\nHost: h\r\n\r\n"
        )
        assert req.method == "GET"
        assert req.path == "/campaigns/job-1"
        assert req.query == {"since": "3"}
        assert req.body == b""

    def test_body_and_json(self):
        body = json.dumps({"scenario": "x"}).encode()
        req = parse_request(
            b"POST /campaigns HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert req.json() == {"scenario": "x"}

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse_request(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_rejected(self):
        raw = b"POST /campaigns HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse_request(raw)
        assert err.value.status == 413

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as err:
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_chunked_request_body_rejected(self):
        with pytest.raises(HttpError) as err:
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert err.value.status == 400

    def test_empty_body_json_is_400(self):
        req = parse_request(b"POST /campaigns HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400


class TestExecuteJob:
    def test_runs_verifies_and_caches(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = make_job()
        result = execute_job(
            job, store=store, checkpoint_root=tmp_path / "ckpt"
        )
        assert result.cached is False and result.restored == 0
        assert store.verify(job.fingerprint).ok
        # Journals are gone once the archive is verified.
        assert not (tmp_path / "ckpt" / job.fingerprint).exists()
        again = execute_job(
            job, store=store, checkpoint_root=tmp_path / "ckpt"
        )
        assert again.cached is True and again.archive == result.archive

    def test_tampered_fingerprint_refused(self, tmp_path):
        job = make_job()
        job.fingerprint = "0" * 64
        with pytest.raises(ConfigurationError, match="tampered"):
            execute_job(
                job,
                store=ResultStore(tmp_path / "store"),
                checkpoint_root=tmp_path / "ckpt",
            )

    def test_cancellation_keeps_journal_then_resumes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = make_job()
        seen = []
        # Cancel at the first progress point: the probe flips as soon as
        # one trial is journaled (the observer runs after journaling).
        flag = {"set": False}

        def observer(experiment, completed, total):
            seen.append((experiment, completed, total))
            flag["set"] = True

        with pytest.raises(JobCancelledError):
            execute_job(
                job,
                store=store,
                checkpoint_root=tmp_path / "ckpt",
                on_progress=observer,
                cancelled=lambda: flag["set"],
            )
        assert seen  # at least one trial completed and was journaled
        assert store.lookup(job.fingerprint) is None
        # The journal survived the cancellation; re-execution restores it.
        resumed = execute_job(
            job, store=store, checkpoint_root=tmp_path / "ckpt"
        )
        assert resumed.cached is False
        assert resumed.restored > 0
        assert store.verify(job.fingerprint).ok

    def test_resumed_archive_matches_direct_run(self, tmp_path):
        req = request()
        store = ResultStore(tmp_path / "store")
        job = make_job()
        flag = {"set": False}

        def observer(experiment, completed, total):
            flag["set"] = True

        with pytest.raises(JobCancelledError):
            execute_job(
                job,
                store=store,
                checkpoint_root=tmp_path / "ckpt",
                on_progress=observer,
                cancelled=lambda: flag["set"],
            )
        execute_job(job, store=store, checkpoint_root=tmp_path / "ckpt")

        direct = tmp_path / "direct"
        run_batch(campaign_specs(req), base_seed=req.base_seed, output_dir=direct)
        archive = store.path_for(job.fingerprint)
        for reference in sorted(direct.iterdir()):
            assert (archive / reference.name).read_bytes() == (
                reference.read_bytes()
            ), f"{reference.name} differs between resumed and direct runs"
