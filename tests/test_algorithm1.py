"""Unit tests for Algorithm 1 (StagedSyncDiscovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm1 import StagedSyncDiscovery
from repro.core.base import Mode
from repro.exceptions import ConfigurationError


def make(channels=(0, 1, 2, 3), delta_est=8, seed=0):
    return StagedSyncDiscovery(
        0, channels, np.random.default_rng(seed), delta_est=delta_est
    )


class TestSchedule:
    def test_stage_length(self):
        assert make(delta_est=8).slots_per_stage == 3
        assert make(delta_est=2).slots_per_stage == 1
        assert make(delta_est=9).slots_per_stage == 4

    def test_slot_in_stage_cycles(self):
        p = make(delta_est=8)  # stage length 3
        assert [p.slot_in_stage(i) for i in range(7)] == [1, 2, 3, 1, 2, 3, 1]

    def test_probability_formula(self):
        # |A| = 4: slot 1 -> min(1/2, 4/2) = 1/2; slot 2 -> min(1/2, 1) = 1/2;
        # slot 3 -> 4/8 = 1/2 ... need a case below 1/2:
        p = make(channels=(0,), delta_est=8)  # |A| = 1
        assert p.transmit_probability(0) == pytest.approx(0.5)  # 1/2 vs 1/2
        assert p.transmit_probability(1) == pytest.approx(0.25)  # 1/4
        assert p.transmit_probability(2) == pytest.approx(0.125)  # 1/8

    def test_probability_capped_at_half(self):
        p = make(channels=tuple(range(10)), delta_est=4)
        for slot in range(4):
            assert p.transmit_probability(slot) <= 0.5

    def test_probability_sweeps_geometrically(self):
        p = make(channels=(0, 1), delta_est=64)  # stage length 6
        probs = [p.transmit_probability(i) for i in range(6)]
        # min(1/2, 2/2^i): 1/2, 1/2, 1/4, 1/8, 1/16, 1/32
        assert probs == pytest.approx([0.5, 0.5, 0.25, 0.125, 0.0625, 0.03125])

    def test_delta_est_validated(self):
        with pytest.raises(ConfigurationError):
            make(delta_est=1)

    def test_delta_est_property(self):
        assert make(delta_est=32).delta_est == 32


class TestBehavior:
    def test_decisions_never_quiet(self):
        p = make()
        for slot in range(50):
            assert p.decide_slot(slot).mode in (Mode.TRANSMIT, Mode.LISTEN)

    def test_empirical_transmit_rate_matches_slot_probability(self):
        p = make(channels=(0,), delta_est=16, seed=3)
        # slot-in-stage 4 has p = min(1/2, 1/16)
        slot = 3  # 0-based slot 3 -> i = 4
        n = 30_000
        hits = sum(
            p.decide_slot(slot + k * p.slots_per_stage).mode is Mode.TRANSMIT
            for k in range(n)
        )
        assert hits / n == pytest.approx(1.0 / 16.0, abs=0.006)

    def test_deterministic_given_seed(self):
        a = make(seed=9)
        b = make(seed=9)
        for slot in range(100):
            da, db = a.decide_slot(slot), b.decide_slot(slot)
            assert (da.mode, da.channel) == (db.mode, db.channel)
