"""Unit tests for repro.core.neighbor_table."""

from __future__ import annotations

import pytest

from repro.core.messages import HelloMessage
from repro.core.neighbor_table import NeighborTable
from repro.exceptions import SimulationError


@pytest.fixture
def table() -> NeighborTable:
    return NeighborTable(owner_id=0, owner_channels={0, 1, 2})


class TestRecordHello:
    def test_first_hello_is_new(self, table):
        assert table.record_hello(HelloMessage(1, frozenset({1, 5})), 10.0)
        assert 1 in table
        assert len(table) == 1

    def test_channels_intersected_with_owner(self, table):
        table.record_hello(HelloMessage(1, frozenset({1, 2, 9})), 0.0)
        assert table.common_channels(1) == {1, 2}

    def test_repeat_hello_not_new_and_counted(self, table):
        msg = HelloMessage(1, frozenset({0}))
        assert table.record_hello(msg, 1.0)
        assert not table.record_hello(msg, 2.0)
        assert table.record(1).hello_count == 2

    def test_first_heard_time_kept(self, table):
        msg = HelloMessage(1, frozenset({0}))
        table.record_hello(msg, 5.0)
        table.record_hello(msg, 9.0)
        assert table.first_heard_at(1) == 5.0

    def test_own_hello_is_engine_bug(self, table):
        with pytest.raises(SimulationError, match="own hello"):
            table.record_hello(HelloMessage(0, frozenset({0})), 0.0)


class TestQueries:
    def test_unknown_neighbor_raises(self, table):
        with pytest.raises(SimulationError, match="not discovered"):
            table.record(9)

    def test_first_heard_none_for_unknown(self, table):
        assert table.first_heard_at(9) is None

    def test_neighbor_ids(self, table):
        table.record_hello(HelloMessage(1, frozenset({0})), 0.0)
        table.record_hello(HelloMessage(2, frozenset({1})), 1.0)
        assert table.neighbor_ids == {1, 2}

    def test_as_dict_is_paper_output(self, table):
        table.record_hello(HelloMessage(1, frozenset({0, 9})), 0.0)
        assert table.as_dict() == {1: frozenset({0})}

    def test_total_hellos(self, table):
        msg1 = HelloMessage(1, frozenset({0}))
        msg2 = HelloMessage(2, frozenset({1}))
        table.record_hello(msg1, 0.0)
        table.record_hello(msg1, 1.0)
        table.record_hello(msg2, 2.0)
        assert table.total_hellos() == 3

    def test_owner_metadata(self, table):
        assert table.owner_id == 0
        assert table.owner_channels == {0, 1, 2}
