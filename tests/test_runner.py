"""Unit tests for repro.sim.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.clock import (
    ConstantDriftClock,
    PerfectClock,
    RandomWalkDriftClock,
    SinusoidalDriftClock,
)
from repro.sim.runner import (
    make_clocks,
    random_start_offsets,
    run_asynchronous,
    run_synchronous,
    run_trials,
)


@pytest.fixture
def clique_net():
    topo = topology.clique(5)
    return build_network(topo, channels.homogeneous(5, 2))


class TestRunSynchronous:
    def test_fast_engine_default(self, clique_net):
        r = run_synchronous(
            clique_net, "algorithm3", seed=0, max_slots=20_000, delta_est=8
        )
        assert r.completed
        assert r.metadata["engine"] == "slotted-fast"
        assert r.metadata["protocol"] == "algorithm3"

    def test_reference_engine(self, clique_net):
        r = run_synchronous(
            clique_net,
            "algorithm1",
            seed=0,
            max_slots=20_000,
            delta_est=8,
            engine="reference",
        )
        assert r.completed
        assert r.metadata["engine"] == "slotted-reference"

    def test_baselines_auto_route_to_reference_engine(self, clique_net):
        r = run_synchronous(
            clique_net,
            "universal_sweep",
            seed=0,
            max_slots=20_000,
            delta_est=4,
            universal_channels=[0, 1],
        )
        assert r.metadata["engine"] == "slotted-reference"

    def test_baselines_refuse_explicit_fast_engine(self, clique_net):
        with pytest.raises(ConfigurationError, match="vectorized"):
            run_synchronous(
                clique_net,
                "universal_sweep",
                seed=0,
                max_slots=100,
                delta_est=4,
                universal_channels=[0, 1],
                engine="fast",
            )

    def test_baseline_on_reference_engine(self, clique_net):
        r = run_synchronous(
            clique_net,
            "deterministic_scan",
            seed=0,
            max_slots=100,
            engine="reference",
            universal_channels=[0, 1],
            id_space_size=5,
        )
        assert r.completed
        # One epoch = 2 channels x 5 ids = 10 slots suffices.
        assert r.completion_time < 10

    def test_unknown_engine(self, clique_net):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_synchronous(
                clique_net, "algorithm3", seed=0, max_slots=10, delta_est=4, engine="warp"
            )

    def test_trace_rejected_on_fast_engine(self, clique_net):
        from repro.sim.trace import ExecutionTrace

        with pytest.raises(ConfigurationError, match="trace"):
            run_synchronous(
                clique_net,
                "algorithm3",
                seed=0,
                max_slots=10,
                delta_est=4,
                engine="fast",
                trace=ExecutionTrace(),
            )

    def test_trace_routes_auto_to_reference_engine(self, clique_net):
        from repro.sim.trace import ExecutionTrace

        trace = ExecutionTrace()
        r = run_synchronous(
            clique_net,
            "algorithm3",
            seed=0,
            max_slots=10_000,
            delta_est=4,
            trace=trace,
        )
        assert r.metadata["engine"] == "slotted-reference"
        assert trace.node_ids


class TestRunAsynchronous:
    def test_completes(self, clique_net):
        r = run_asynchronous(
            clique_net,
            seed=0,
            delta_est=8,
            max_frames_per_node=50_000,
            drift_bound=0.05,
            start_spread=3.0,
        )
        assert r.completed
        assert r.time_unit == "seconds"
        assert r.metadata["drift_bound"] == 0.05

    def test_clock_models_all_run(self, clique_net):
        for model in ("perfect", "constant", "random_walk", "sinusoidal"):
            r = run_asynchronous(
                clique_net,
                seed=1,
                delta_est=8,
                max_frames_per_node=50_000,
                drift_bound=0.1,
                clock_model=model,
            )
            assert r.completed, model

    def test_invalid_spread(self, clique_net):
        with pytest.raises(ConfigurationError, match="start_spread"):
            run_asynchronous(
                clique_net,
                seed=0,
                delta_est=4,
                max_frames_per_node=10,
                start_spread=-1.0,
            )


class TestMakeClocks:
    def net(self):
        topo = topology.line(4)
        return build_network(topo, channels.homogeneous(4, 1))

    def test_perfect(self, rng):
        clocks = make_clocks(self.net(), "perfect", 0.1, rng)
        assert all(isinstance(c, PerfectClock) for c in clocks.values())

    def test_constant_within_bound(self, rng):
        clocks = make_clocks(self.net(), "constant", 0.1, rng)
        assert all(isinstance(c, ConstantDriftClock) for c in clocks.values())
        assert all(abs(c.rate - 1.0) <= 0.1 for c in clocks.values())

    def test_zero_drift_gives_perfect(self, rng):
        clocks = make_clocks(self.net(), "constant", 0.0, rng)
        assert all(isinstance(c, PerfectClock) for c in clocks.values())

    def test_other_models(self, rng):
        assert all(
            isinstance(c, RandomWalkDriftClock)
            for c in make_clocks(self.net(), "random_walk", 0.1, rng).values()
        )
        assert all(
            isinstance(c, SinusoidalDriftClock)
            for c in make_clocks(self.net(), "sinusoidal", 0.1, rng).values()
        )

    def test_unknown_model(self, rng):
        with pytest.raises(ConfigurationError, match="clock model"):
            make_clocks(self.net(), "quartz", 0.1, rng)


class TestRunTrials:
    def test_derives_distinct_seeds(self, clique_net):
        results = run_trials(
            lambda seed: run_synchronous(
                clique_net, "algorithm3", seed=seed, max_slots=20_000, delta_est=8
            ),
            num_trials=3,
            base_seed=5,
        )
        assert len(results) == 3
        times = [r.completion_time for r in results]
        assert len(set(times)) > 1  # trials differ

    def test_reproducible(self, clique_net):
        def trial(seed):
            return run_synchronous(
                clique_net, "algorithm3", seed=seed, max_slots=20_000, delta_est=8
            )

        a = run_trials(trial, 2, base_seed=9)
        b = run_trials(trial, 2, base_seed=9)
        assert [r.completion_time for r in a] == [r.completion_time for r in b]

    def test_invalid_count(self, clique_net):
        with pytest.raises(ConfigurationError):
            run_trials(lambda s: None, 0, 1)  # type: ignore[arg-type]


class TestRandomStartOffsets:
    def test_range(self, clique_net, rng):
        offsets = random_start_offsets(clique_net, 10, rng)
        assert set(offsets) == set(clique_net.node_ids)
        assert all(0 <= v <= 10 for v in offsets.values())

    def test_zero_max(self, clique_net, rng):
        offsets = random_start_offsets(clique_net, 0, rng)
        assert all(v == 0 for v in offsets.values())

    def test_negative_rejected(self, clique_net, rng):
        with pytest.raises(ConfigurationError):
            random_start_offsets(clique_net, -1, rng)
