"""Additional asynchronous-engine behaviors: erasure, heard-on, QUIET."""

from __future__ import annotations

import pytest

from repro.analysis.stats import mean
from repro.core.registry import make_async_factory
from repro.net import build_network, channels, topology
from repro.sim.async_engine import AsyncSimulator
from repro.sim.rng import RngFactory
from repro.sim.runner import run_asynchronous, run_trials
from repro.sim.stopping import StoppingCondition


@pytest.fixture
def small_net():
    topo = topology.clique(5)
    return build_network(topo, channels.homogeneous(5, 2))


class TestAsyncErasure:
    def test_erasure_slows_but_completes(self, small_net):
        def mean_time(erasure):
            results = run_trials(
                lambda seed: run_asynchronous(
                    small_net,
                    seed=seed,
                    delta_est=8,
                    max_frames_per_node=300_000,
                    erasure_prob=erasure,
                ),
                num_trials=5,
                base_seed=4,
            )
            assert all(r.completed for r in results)
            return mean([r.completion_time for r in results])

        assert mean_time(0.6) > mean_time(0.0)


class TestAsyncHeardOn:
    def test_confirmed_channels_subset_of_span(self, small_net):
        protocols = {}
        base_factory = make_async_factory("algorithm4", delta_est=8)

        def factory(nid, chs, rng):
            proto = base_factory(nid, chs, rng)
            protocols[nid] = proto
            return proto

        sim = AsyncSimulator(small_net, factory, RngFactory(5))
        sim.run(StoppingCondition(max_frames_per_node=100_000))
        confirmed_any = False
        for nid, proto in protocols.items():
            for v in proto.neighbor_table.neighbor_ids:
                confirmed = proto.neighbor_table.confirmed_channels(v)
                assert confirmed <= small_net.span(v, nid)
                if confirmed:
                    confirmed_any = True
        assert confirmed_any


class TestFastEngineModesWithErasure:
    def test_channel_dependent_with_erasure(self):
        from repro.net import M2HeWNetwork, NodeSpec
        from repro.sim.runner import run_synchronous

        nodes = [
            NodeSpec(i, frozenset({0, 1}), position=(float(i), 0.0))
            for i in range(3)
        ]
        net = M2HeWNetwork(
            nodes,
            channel_adjacency={0: [(0, 1), (1, 2), (0, 2)], 1: [(0, 1), (1, 2)]},
        )
        result = run_synchronous(
            net,
            "algorithm3",
            seed=0,
            max_slots=100_000,
            delta_est=4,
            erasure_prob=0.3,
        )
        assert result.completed
        for nid in net.node_ids:
            assert (
                frozenset(result.neighbor_tables[nid])
                == net.discoverable_neighbors(nid)
            )

    def test_asymmetric_with_erasure(self, rng):
        from repro.net import build_asymmetric_network
        from repro.net.topology import asymmetric_random_geometric
        from repro.sim.runner import run_synchronous

        topo = asymmetric_random_geometric(
            8, min_range=0.3, max_range=0.8, rng=rng
        )
        net = build_asymmetric_network(topo, {i: {0, 1} for i in range(8)})
        result = run_synchronous(
            net,
            "algorithm3",
            seed=1,
            max_slots=200_000,
            delta_est=8,
            erasure_prob=0.3,
        )
        assert result.completed
