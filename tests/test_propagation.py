"""Tests for channel-dependent propagation (§V extension (c))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NetworkModelError
from repro.net import M2HeWNetwork, NodeSpec, network_from_dict, network_to_dict
from repro.net.propagation import (
    build_channel_dependent_network,
    channel_dependent_adjacency,
    channel_radius,
)
from repro.net.topology import Topology, line
from repro.sim.runner import run_asynchronous, run_synchronous


class TestChannelRadius:
    def test_linear_decay(self):
        assert channel_radius(0, 4, 1.0, 0.5) == pytest.approx(1.0)
        assert channel_radius(3, 4, 1.0, 0.5) == pytest.approx(0.5)
        assert channel_radius(1, 4, 1.0, 0.5) == pytest.approx(1.0 - 0.5 / 3)

    def test_zero_decay_uniform(self):
        for c in range(5):
            assert channel_radius(c, 5, 0.7, 0.0) == pytest.approx(0.7)

    def test_single_channel(self):
        assert channel_radius(0, 1, 2.0, 0.9) == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            channel_radius(5, 4, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            channel_radius(0, 4, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            channel_radius(0, 4, 1.0, 1.0)


class TestChannelDependentAdjacency:
    def test_low_channels_reach_further(self):
        positions = {0: (0.0, 0.0), 1: (0.8, 0.0)}
        adjacency = channel_dependent_adjacency(
            positions, num_channels=2, base_radius=1.0, range_decay=0.5
        )
        assert adjacency[0] == [(0, 1)]  # radius 1.0 reaches 0.8
        assert adjacency[1] == []  # radius 0.5 does not


class TestChannelDependentNetwork:
    def net(self):
        # Three collinear nodes at x = 0, 1, 2; channels {0, 1}; channel 0
        # reaches 2.5 (all pairs), channel 1 reaches 1.25 (adjacent only).
        nodes = [NodeSpec(i, frozenset({0, 1}), position=(float(i), 0.0)) for i in range(3)]
        channel_adjacency = {
            0: [(0, 1), (1, 2), (0, 2)],
            1: [(0, 1), (1, 2)],
        }
        return M2HeWNetwork(nodes, channel_adjacency=channel_adjacency)

    def test_span_differs_per_pair(self):
        net = self.net()
        assert net.span(0, 1) == {0, 1}
        assert net.span(0, 2) == {0}  # only the long-range channel

    def test_span_subset_of_intersection(self):
        net = self.net()
        net.validate()

    def test_neighbors_per_channel(self):
        net = self.net()
        assert net.neighbors_on(0, 0) == {1, 2}
        assert net.neighbors_on(0, 1) == {1}
        assert net.hears_on(0, 1) == {1}
        assert net.hears(0) == {1, 2}

    def test_rho_reflects_partial_spans(self):
        net = self.net()
        # Worst link: (0, 2) with span {0} and |A(2)| = 2.
        assert net.min_span_ratio == pytest.approx(0.5)

    def test_flags(self):
        net = self.net()
        assert net.is_channel_dependent
        assert net.is_symmetric

    def test_serialization_roundtrip(self):
        net = self.net()
        restored = network_from_dict(network_to_dict(net))
        assert restored.is_channel_dependent
        assert restored.span(0, 2) == {0}
        assert restored.channel_adjacency_pairs() == net.channel_adjacency_pairs()

    def test_restriction(self):
        sub = self.net().restricted_to([0, 2])
        assert sub.span(0, 2) == {0}
        assert sub.num_links == 2

    def test_with_channel_assignment(self):
        new = self.net().with_channel_assignment({0: {0}, 1: {0}, 2: {0, 1}})
        assert new.span(0, 1) == {0}
        assert new.is_channel_dependent

    def test_channel_adjacency_pairs_requires_mode(self):
        plain = M2HeWNetwork(
            [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))],
            adjacency=[(0, 1)],
        )
        with pytest.raises(NetworkModelError, match="channel-dependent"):
            plain.channel_adjacency_pairs()

    def test_exactly_one_mode_enforced(self):
        nodes = [NodeSpec(0, frozenset({0}))]
        with pytest.raises(NetworkModelError, match="exactly one"):
            M2HeWNetwork(nodes, adjacency=[], channel_adjacency={})


class TestBuilder:
    def test_build_from_line(self):
        topo = line(3)  # positions x = 0, 1, 2
        assignment = {i: {0, 1} for i in range(3)}
        net = build_channel_dependent_network(
            topo, assignment, base_radius=2.5, range_decay=0.6
        )
        # channel 0 radius 2.5 (all pairs); channel 1 radius 1.0 (adjacent).
        assert net.span(0, 2) == {0}
        assert net.span(0, 1) == {0, 1}

    def test_requires_positions(self):
        from repro.net.topology import clique

        with pytest.raises(ConfigurationError, match="positions"):
            build_channel_dependent_network(
                clique(3), {i: {0} for i in range(3)}, 1.0, 0.1
            )

    def test_missing_assignment(self):
        with pytest.raises(ConfigurationError, match="missing node"):
            build_channel_dependent_network(line(3), {0: {0}}, 1.0, 0.1)

    def test_zero_decay_matches_uniform_model(self):
        from repro.net import build_network
        from repro.net.topology import random_geometric

        rng = np.random.default_rng(4)
        topo = random_geometric(10, radius=0.4, rng=rng)
        assignment = {i: {0, 1, 2} for i in range(10)}
        uniform = build_network(topo, assignment)
        diverse = build_channel_dependent_network(
            topo, assignment, base_radius=0.4, range_decay=0.0
        )
        assert {l.key for l in uniform.links()} == {l.key for l in diverse.links()}
        for link in uniform.links():
            assert diverse.span(*link.key) == link.span


class TestDiscoveryOnChannelDependentNetworks:
    def net(self):
        nodes = [
            NodeSpec(i, frozenset({0, 1}), position=(float(i), 0.0))
            for i in range(4)
        ]
        channel_adjacency = {
            0: [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)],
            1: [(0, 1), (1, 2), (2, 3)],
        }
        return M2HeWNetwork(nodes, channel_adjacency=channel_adjacency)

    def test_sync_discovery_complete_with_bracketed_channels(self):
        # Under diverse propagation the hello still claims A(v), so the
        # recorded common set is an upper bound on the true span; the
        # channels actually heard on are a confirmed lower bound ([23]).
        net = self.net()
        for engine in ("fast", "reference"):
            result = run_synchronous(
                net,
                "algorithm3",
                seed=3,
                max_slots=60_000,
                delta_est=8,
                engine=engine,
            )
            assert result.completed, engine
            for nid in net.node_ids:
                truth = net.discoverable_neighbors(nid)
                table = result.neighbor_tables[nid]
                assert frozenset(table) == truth, engine
                for v, recorded in table.items():
                    span = net.span(v, nid)
                    claimed = net.channels_of(v) & net.channels_of(nid)
                    assert span <= recorded <= claimed, (engine, v, nid)

    def test_reference_engine_confirms_heard_channels(self):
        from repro.core.registry import make_sync_factory
        from repro.sim.rng import RngFactory
        from repro.sim.slotted import SlottedSimulator
        from repro.sim.stopping import StoppingCondition

        net = self.net()
        sim = SlottedSimulator(
            net,
            make_sync_factory("algorithm3", delta_est=8),
            RngFactory(3),
        )
        sim.run(StoppingCondition.slots(60_000))
        for nid, proto in sim.protocols.items():
            for v in proto.neighbor_table.neighbor_ids:
                confirmed = proto.neighbor_table.confirmed_channels(v)
                assert confirmed  # heard at least once somewhere
                assert confirmed <= net.span(v, nid)

    def test_async_discovery_complete_with_bracketed_channels(self):
        net = self.net()
        result = run_asynchronous(
            net,
            seed=4,
            delta_est=8,
            max_frames_per_node=120_000,
            drift_bound=0.05,
            start_spread=3.0,
        )
        assert result.completed
        for nid in net.node_ids:
            truth = net.discoverable_neighbors(nid)
            table = result.neighbor_tables[nid]
            assert frozenset(table) == truth
            for v, recorded in table.items():
                assert net.span(v, nid) <= recorded

    def test_interference_is_per_channel(self):
        # Node 3 transmits on channel 0 and is audible to node 0 on
        # channel 0 only via... actually (0,3) not adjacent on 0? pairs
        # include (1,3) not (0,3): so 3's transmissions never reach 0.
        # Use the reference engine with scripts to pin the semantics.
        from repro.core.base import SlotDecision, SynchronousProtocol
        from repro.sim.rng import RngFactory
        from repro.sim.slotted import SlottedSimulator
        from repro.sim.stopping import StoppingCondition

        net = self.net()

        class Scripted(SynchronousProtocol):
            actions = {
                0: SlotDecision.listen(0),
                1: SlotDecision.transmit(0),
                3: SlotDecision.transmit(0),
                2: SlotDecision.quiet(),
            }

            def decide_slot(self, local_slot):
                return self.actions[self.node_id]

        sim = SlottedSimulator(
            net, lambda nid, chs, rng: Scripted(nid, chs, rng), RngFactory(0)
        )
        result = sim.run(StoppingCondition.slots(1, stop_on_full_coverage=False))
        # Node 3's transmission does not reach node 0 on channel 0
        # (no (0,3) adjacency on that channel), so node 1's hello is
        # received clear despite the simultaneous transmission.
        assert result.coverage[(1, 0)] == 0.0
