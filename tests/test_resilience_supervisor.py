"""Tests for supervised trial execution and resilient ``run_batch``.

The invariant under test throughout: recovery (retries, quarantine
isolation, backend downgrades, checkpoint resume) may change *how*
trials execute, never *what* they compute — archives from a recovered
campaign are byte-identical to an uninterrupted fault-free run's.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import (
    ConfigurationError,
    TrialExecutionError,
    TrialQuarantinedError,
)
from repro.resilience import (
    ChaosEvent,
    ChaosPlan,
    RetryPolicy,
    parse_chaos_spec,
    run_supervised_trials,
    verify_archive,
)
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.parallel import pool_supported, run_spec_trials
from repro.workloads.generator import WorkloadConfig, generate_network

PARAMS = {"delta_est": 4, "max_slots": 30_000}
NO_SLEEP = {"sleep": lambda _delay: None}
FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)


def small_workload() -> WorkloadConfig:
    return WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 5},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )


@pytest.fixture(scope="module")
def network():
    return generate_network(small_workload(), seed=0)


@pytest.fixture(scope="module")
def reference(network):
    """Fail-fast results the supervised paths must reproduce exactly."""
    results = run_spec_trials(
        network, "algorithm1", trials=6, base_seed=7, runner_params=PARAMS
    )
    return [r.to_dict() for r in results]


def _supervised_dicts(outcome):
    return [r.to_dict() for _, r in outcome.results_in_order()]


class TestSupervisedIdentity:
    def test_fault_free_matches_fail_fast(self, network, reference):
        outcome = run_supervised_trials(
            network, "algorithm1", trials=6, base_seed=7, runner_params=PARAMS
        )
        assert outcome.complete
        assert outcome.events == []
        assert _supervised_dicts(outcome) == reference

    def test_chaos_retry_recovers_identically(self, network, reference):
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chaos=parse_chaos_spec("raise@1,raise@4x2"),
            policy=FAST_RETRY,
            **NO_SLEEP,
        )
        assert outcome.complete
        assert any(e.kind == "retry" for e in outcome.events)
        assert _supervised_dicts(outcome) == reference

    def test_vectorized_downgrade_recovers_identically(self, network):
        reference = run_spec_trials(
            network,
            "algorithm1",
            trials=4,
            base_seed=7,
            runner_params=PARAMS,
            backend="vectorized",
        )
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=4,
            base_seed=7,
            runner_params=PARAMS,
            backend="vectorized",
            chaos=parse_chaos_spec("raise@0"),
            policy=FAST_RETRY,
            **NO_SLEEP,
        )
        assert outcome.complete
        assert any(e.kind == "downgrade_vectorized" for e in outcome.events)
        assert _supervised_dicts(outcome) == [r.to_dict() for r in reference]


class TestQuarantine:
    def test_poison_trial_quarantined_others_survive(self, network, reference):
        # All six trials share one serial chunk; isolation must salvage
        # the five healthy ones and quarantine only the poison trial.
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chaos=ChaosPlan(events=(ChaosEvent(trial=2, mode="raise", times=-1),)),
            policy=FAST_RETRY,
            **NO_SLEEP,
        )
        assert not outcome.complete
        assert [q.trial for q in outcome.quarantined] == [2]
        assert outcome.quarantined[0].base_seed == 7
        assert sorted(outcome.completed) == [0, 1, 3, 4, 5]
        for trial, result in outcome.results_in_order():
            assert result.to_dict() == reference[trial]

    def test_quarantine_disabled_raises_with_replay_coordinates(self, network):
        with pytest.raises(TrialQuarantinedError) as excinfo:
            run_supervised_trials(
                network,
                "algorithm1",
                trials=6,
                base_seed=7,
                runner_params=PARAMS,
                chaos=ChaosPlan(
                    events=(ChaosEvent(trial=2, mode="raise", times=-1),)
                ),
                policy=RetryPolicy(base_delay=0.0, jitter=0.0, quarantine=False),
                **NO_SLEEP,
            )
        err = excinfo.value
        assert err.trial_indices == (2,)
        assert err.base_seed == 7
        assert err.__cause__ is not None

    def test_timeout_chaos_quarantines_chunk(self, network, reference):
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=3,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=1,
            chaos=parse_chaos_spec("timeout@0x-1"),
            policy=FAST_RETRY,
            **NO_SLEEP,
        )
        assert [q.trial for q in outcome.quarantined] == [0]
        assert "timed out" in outcome.quarantined[0].error
        for trial, result in outcome.results_in_order():
            assert result.to_dict() == reference[trial]

    def test_campaign_retry_budget_aborts(self, network):
        with pytest.raises(TrialExecutionError, match="retry budget"):
            run_supervised_trials(
                network,
                "algorithm1",
                trials=6,
                base_seed=7,
                runner_params=PARAMS,
                chunk_size=2,
                chaos=parse_chaos_spec("raise@0,raise@2,raise@4"),
                policy=RetryPolicy(
                    base_delay=0.0, jitter=0.0, max_total_retries=1
                ),
                **NO_SLEEP,
            )


@pytest.mark.skipif(not pool_supported(), reason="platform cannot host a pool")
class TestPooledSupervision:
    def test_soft_failure_retries_on_pool(self, network, reference):
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            max_workers=2,
            backend="process",
            chunk_size=2,
            chaos=parse_chaos_spec("raise@2"),
            policy=FAST_RETRY,
            **NO_SLEEP,
        )
        assert outcome.complete
        assert _supervised_dicts(outcome) == reference

    def test_worker_death_rebuilds_then_downgrades(self, network, reference):
        # The exit event keeps firing at attempt 0 (pool breakage charges
        # the pool, not the chunk), so after pool_downgrade_after
        # breakages the campaign degrades to in-process execution, where
        # exit-mode chaos softens to a raise and retries clear it.
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            max_workers=2,
            backend="process",
            chunk_size=2,
            chaos=parse_chaos_spec("exit@0x3"),
            policy=RetryPolicy(base_delay=0.0, jitter=0.0, max_retries=4),
            **NO_SLEEP,
        )
        kinds = [e.kind for e in outcome.events]
        assert "pool_rebuild" in kinds
        assert "downgrade_pool" in kinds
        assert outcome.complete
        assert _supervised_dicts(outcome) == reference


def _specs(trials=5):
    return [
        ExperimentSpec(
            name="e1",
            workload=small_workload(),
            protocol="algorithm1",
            trials=trials,
            runner_params=dict(PARAMS),
        ),
        ExperimentSpec(
            name="e2",
            workload=small_workload(),
            protocol="algorithm2",
            trials=trials,
            runner_params=dict(PARAMS),
        ),
    ]


def _archive_bytes(directory):
    return {p.name: p.read_bytes() for p in sorted(directory.iterdir())}


class TestResilientRunBatch:
    def test_supervised_archive_equals_legacy(self, tmp_path):
        run_batch(_specs(), base_seed=11, output_dir=tmp_path / "legacy")
        run_batch(
            _specs(),
            base_seed=11,
            output_dir=tmp_path / "supervised",
            retry=FAST_RETRY,
        )
        assert _archive_bytes(tmp_path / "legacy") == _archive_bytes(
            tmp_path / "supervised"
        )

    def test_chaos_recovery_archive_is_byte_identical(self, tmp_path):
        run_batch(_specs(), base_seed=11, output_dir=tmp_path / "clean")
        run_batch(
            _specs(),
            base_seed=11,
            output_dir=tmp_path / "chaos",
            retry=FAST_RETRY,
            chaos=parse_chaos_spec("raise@0,raise@3"),
        )
        assert _archive_bytes(tmp_path / "clean") == _archive_bytes(
            tmp_path / "chaos"
        )
        assert verify_archive(tmp_path / "chaos").ok

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        run_batch(_specs(), base_seed=11, output_dir=tmp_path / "clean")
        ck = tmp_path / "ck"
        run_batch(_specs(), base_seed=11, checkpoint_dir=ck)
        # Simulate a kill after two completed trials of e1 and a torn
        # final append on e2, then resume into an output directory.
        e1 = ck / "e1.journal.jsonl"
        lines = e1.read_text().splitlines()
        e1.write_text("\n".join(lines[:3]) + "\n")
        with open(ck / "e2.journal.jsonl", "a") as handle:
            handle.write('{"kind": "trial", "trial": 9')
        outcomes = run_batch(
            _specs(),
            base_seed=11,
            output_dir=tmp_path / "resumed",
            checkpoint_dir=ck,
        )
        assert outcomes[0].restored == 2
        assert outcomes[1].restored == 5
        assert _archive_bytes(tmp_path / "clean") == _archive_bytes(
            tmp_path / "resumed"
        )

    def test_resume_rejects_different_campaign(self, tmp_path):
        ck = tmp_path / "ck"
        run_batch(_specs(), base_seed=11, checkpoint_dir=ck)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_batch(_specs(), base_seed=12, checkpoint_dir=ck)

    def test_quarantine_recorded_in_manifest(self, tmp_path):
        out = tmp_path / "quarantined"
        outcomes = run_batch(
            _specs(),
            base_seed=11,
            output_dir=out,
            retry=FAST_RETRY,
            chaos=parse_chaos_spec("raise@2x-1"),
        )
        assert all(o.completed_fraction < 1.0 for o in outcomes)
        manifest = json.loads((out / "manifest.json").read_text())
        quarantined = manifest["resilience"]["quarantined"]
        assert [(q["experiment"], q["trial"]) for q in quarantined] == [
            ("e1", 2),
            ("e2", 2),
        ]
        assert all(q["base_seed"] == 11 for q in quarantined)
        # The archive itself is still internally consistent.
        assert verify_archive(out).ok
        # Archived trial payloads keep their true indices despite the gap.
        payload = json.loads((out / "e1.json").read_text())
        assert [t["metadata"]["trial"] for t in payload["trials"]] == [0, 1, 3, 4]

    def test_clean_manifest_has_no_resilience_section(self, tmp_path):
        run_batch(
            _specs(),
            base_seed=11,
            output_dir=tmp_path / "out",
            retry=FAST_RETRY,
            chaos=parse_chaos_spec("raise@0"),  # recovered: not archived
        )
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert "resilience" not in manifest

    def test_archive_self_verifies(self, tmp_path):
        run_batch(_specs(), base_seed=11, output_dir=tmp_path / "out")
        report = verify_archive(tmp_path / "out")
        assert report.ok
        assert report.files_checked == 3
