"""Tests for the process-pool trial execution backend."""

from __future__ import annotations

import concurrent.futures
import json
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.exceptions import (
    ConfigurationError,
    SimulationError,
    TrialExecutionError,
    TrialTimeoutError,
)
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.parallel import (
    _collect_in_order,
    chunk_indices,
    default_chunk_size,
    pool_supported,
    resolve_plan,
    run_spec_trials,
)
from repro.sim.rng import derive_trial_seed
from repro.sim.runner import replay_trial, run_experiment_trial
from repro.workloads.generator import WorkloadConfig


def tiny_net() -> M2HeWNetwork:
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 1})),
        NodeSpec(2, frozenset({0, 1})),
    ]
    return M2HeWNetwork(nodes, adjacency=[(0, 1), (1, 2), (0, 2)])


def small_workload() -> WorkloadConfig:
    return WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 5},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )


PARAMS = {"delta_est": 4, "max_slots": 30_000}


class TestResolvePlan:
    def test_single_worker_is_serial(self):
        plan = resolve_plan(10, max_workers=1, backend="auto")
        assert plan.backend == "serial"
        assert plan.max_workers == 1

    def test_auto_multi_worker_uses_pool(self):
        if not pool_supported():  # pragma: no cover - exotic hosts
            pytest.skip("no multiprocessing on this platform")
        plan = resolve_plan(10, max_workers=4, backend="auto")
        assert plan.backend == "process"
        assert plan.max_workers == 4
        assert plan.start_method is not None

    def test_explicit_serial_wins_over_workers(self):
        plan = resolve_plan(10, max_workers=8, backend="serial")
        assert plan.backend == "serial"

    def test_auto_degrades_without_pool_support(self, monkeypatch):
        monkeypatch.setattr("repro.sim.parallel.pool_supported", lambda: False)
        plan = resolve_plan(10, max_workers=8, backend="auto")
        assert plan.backend == "serial"

    def test_explicit_process_without_pool_support_raises(self, monkeypatch):
        monkeypatch.setattr("repro.sim.parallel.pool_supported", lambda: False)
        with pytest.raises(ConfigurationError, match="cannot host"):
            resolve_plan(10, max_workers=8, backend="process")

    def test_process_with_one_worker_degrades(self):
        plan = resolve_plan(10, max_workers=1, backend="process")
        assert plan.backend == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_plan(10, backend="threads")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            resolve_plan(10, max_workers=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            resolve_plan(10, max_workers=2, chunk_size=0)


class TestChunking:
    def test_exact_partition(self):
        assert chunk_indices(6, 3) == [(0, 1, 2), (3, 4, 5)]

    def test_ragged_tail(self):
        assert chunk_indices(7, 3) == [(0, 1, 2), (3, 4, 5), (6,)]

    def test_chunk_larger_than_trials(self):
        assert chunk_indices(2, 10) == [(0, 1)]

    def test_default_chunk_size_amortizes(self):
        # 100 trials over 4 workers -> 16 chunks of 7.
        assert default_chunk_size(100, 4) == 7
        assert default_chunk_size(3, 8) == 1

    def test_covers_every_index_once(self):
        indices = [i for c in chunk_indices(23, 4) for i in c]
        assert indices == list(range(23))


class TestWorkerCountInvariance:
    def test_results_identical_across_worker_counts(self):
        net = tiny_net()
        serial = run_spec_trials(
            net, "algorithm3", trials=6, base_seed=3, runner_params=PARAMS
        )
        pooled = run_spec_trials(
            net,
            "algorithm3",
            trials=6,
            base_seed=3,
            runner_params=PARAMS,
            max_workers=3,
            backend="process",
            chunk_size=2,
        )
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]

    def test_chunk_size_does_not_matter(self):
        net = tiny_net()
        runs = [
            run_spec_trials(
                net,
                "algorithm3",
                trials=5,
                base_seed=9,
                runner_params=PARAMS,
                max_workers=2,
                backend="process",
                chunk_size=size,
            )
            for size in (1, 4)
        ]
        assert [r.to_dict() for r in runs[0]] == [r.to_dict() for r in runs[1]]

    def test_results_ordered_by_trial_index(self):
        net = tiny_net()
        results = run_spec_trials(
            net,
            "algorithm3",
            trials=5,
            base_seed=3,
            runner_params=PARAMS,
            max_workers=2,
            backend="process",
            chunk_size=1,
        )
        # Trial t is replayable in-process from its derived seed; order
        # in the returned list must match the index-derived seeds.
        for t, result in enumerate(results):
            replay = run_experiment_trial(
                net,
                "algorithm3",
                seed=derive_trial_seed(3, t),
                runner_params=PARAMS,
            )
            assert replay.to_dict() == result.to_dict()

    def test_batch_archive_byte_identical(self, tmp_path):
        spec = ExperimentSpec(
            name="inv",
            workload=small_workload(),
            protocol="algorithm3",
            trials=4,
            runner_params=dict(PARAMS),
        )
        d1, d2 = tmp_path / "serial", tmp_path / "pool"
        run_batch([spec], base_seed=1, output_dir=d1, max_workers=1)
        run_batch(
            [spec],
            base_seed=1,
            output_dir=d2,
            max_workers=4,
            backend="process",
            chunk_size=1,
        )
        for name in ("inv.json", "manifest.json"):
            assert (d1 / name).read_bytes() == (d2 / name).read_bytes()


class TestFailurePropagation:
    def test_worker_exception_surfaced_with_replay_info(self):
        net = tiny_net()
        # algorithm1 without delta_est is a poison payload: it raises
        # only once the worker actually executes the trial.
        with pytest.raises(TrialExecutionError) as info:
            run_spec_trials(
                net,
                "algorithm1",
                trials=3,
                base_seed=5,
                runner_params={"max_slots": 100},
                max_workers=2,
                backend="process",
                chunk_size=1,
                experiment="poison",
            )
        err = info.value
        assert err.experiment == "poison"
        assert err.base_seed == 5
        assert err.trial_indices == (0,)
        # The carried indices + base seed replay the failure in-process.
        with pytest.raises(ConfigurationError):
            run_experiment_trial(
                net,
                "algorithm1",
                seed=derive_trial_seed(err.base_seed, err.trial_indices[0]),
                runner_params={"max_slots": 100},
            )

    def test_serial_fallback_same_error_surface(self):
        with pytest.raises(TrialExecutionError) as info:
            run_spec_trials(
                tiny_net(),
                "algorithm1",
                trials=2,
                base_seed=5,
                runner_params={"max_slots": 100},
                max_workers=1,
                experiment="poison",
            )
        assert info.value.trial_indices == (0,)
        assert isinstance(info.value, SimulationError)

    def test_unknown_protocol_wrapped(self):
        spec_err = pytest.raises(
            TrialExecutionError,
            run_spec_trials,
            tiny_net(),
            "telepathy",
            trials=1,
            base_seed=0,
        )
        assert "telepathy" in str(spec_err.value)


class _StubFuture:
    """Future double: returns a payload, raises, or times out."""

    def __init__(self, payload=None, error=None, timeout=False):
        self._payload = payload
        self._error = error
        self._timeout = timeout
        self.seen_timeouts = []

    def result(self, timeout=None):
        self.seen_timeouts.append(timeout)
        if self._timeout:
            raise concurrent.futures.TimeoutError()
        if self._error is not None:
            raise self._error
        return self._payload


class TestCollectInOrder:
    """Timeout/crash paths exercised with stub futures — no fork, no
    pool, no real clocks, so they run identically on every platform."""

    def test_reassembles_in_dispatch_order(self):
        pending = [
            ((0, 1), _StubFuture(payload=["r0", "r1"])),
            ((2,), _StubFuture(payload=["r2"])),
        ]
        out = _collect_in_order(
            pending, trial_timeout=None, experiment="e", base_seed=0
        )
        assert out == ["r0", "r1", "r2"]

    def test_timeout_budget_scales_with_chunk(self):
        fut = _StubFuture(payload=[])
        _collect_in_order(
            [((0, 1, 2), fut)], trial_timeout=1.5, experiment="e", base_seed=0
        )
        assert fut.seen_timeouts == [4.5]

    def test_no_timeout_waits_forever(self):
        fut = _StubFuture(payload=[])
        _collect_in_order(
            [((0,), fut)], trial_timeout=None, experiment="e", base_seed=0
        )
        assert fut.seen_timeouts == [None]

    def test_timeout_raises_typed_error(self):
        pending = [((4, 5), _StubFuture(timeout=True))]
        with pytest.raises(TrialTimeoutError) as info:
            _collect_in_order(
                pending, trial_timeout=0.5, experiment="slowpoke", base_seed=11
            )
        err = info.value
        assert err.trial_indices == (4, 5)
        assert err.base_seed == 11
        assert err.experiment == "slowpoke"
        assert "timed out" in str(err)

    def test_crashed_worker_raises_typed_error(self):
        # BrokenProcessPool is what a hard worker death surfaces as.
        broken = BrokenProcessPool("worker died")
        pending = [((0,), _StubFuture(error=broken))]
        with pytest.raises(TrialExecutionError) as info:
            _collect_in_order(
                pending, trial_timeout=None, experiment="crash", base_seed=2
            )
        assert info.value.trial_indices == (0,)
        assert info.value.__cause__ is broken

    def test_typed_errors_pass_through_unwrapped(self):
        original = TrialExecutionError("inner", trial_indices=(7,), base_seed=1)
        pending = [((0,), _StubFuture(error=original))]
        with pytest.raises(TrialExecutionError) as info:
            _collect_in_order(
                pending, trial_timeout=None, experiment="e", base_seed=0
            )
        assert info.value is original


class TestAsyncProtocolFanOut:
    def test_algorithm4_parallel_matches_serial(self):
        net = tiny_net()
        params = {"delta_est": 4, "max_frames_per_node": 50_000}
        serial = run_spec_trials(
            net, "algorithm4", trials=3, base_seed=2, runner_params=params
        )
        pooled = run_spec_trials(
            net,
            "algorithm4",
            trials=3,
            base_seed=2,
            runner_params=params,
            max_workers=3,
            backend="process",
            chunk_size=1,
        )
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]


class TestArchiveManifestJson:
    def test_manifest_does_not_record_worker_count(self, tmp_path):
        spec = ExperimentSpec(
            name="m",
            workload=small_workload(),
            protocol="algorithm3",
            trials=2,
            runner_params=dict(PARAMS),
        )
        run_batch([spec], base_seed=1, output_dir=tmp_path, max_workers=2)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert "workers" not in json.dumps(manifest)
        assert manifest["base_seed"] == 1


class TestReplayContract:
    """A carried (base_seed, trial_index) must reconstruct the trial."""

    def test_replay_trial_reproduces_archived_result(self):
        net = tiny_net()
        params = {"delta_est": 4, "max_slots": 30_000}
        results = run_spec_trials(
            net, "algorithm1", trials=4, base_seed=9, runner_params=params
        )
        replayed = replay_trial(
            net,
            "algorithm1",
            base_seed=9,
            trial_index=2,
            runner_params=params,
        )
        assert replayed.to_dict() == results[2].to_dict()

    def test_replay_trial_reproduces_failure(self):
        net = tiny_net()
        with pytest.raises(TrialExecutionError) as info:
            run_spec_trials(
                net,
                "algorithm1",
                trials=2,
                base_seed=5,
                runner_params={"max_slots": 100},
                experiment="poison",
            )
        err = info.value
        # The same coordinates raise the same underlying error in-process.
        with pytest.raises(ConfigurationError):
            replay_trial(
                net,
                "algorithm1",
                base_seed=err.base_seed,
                trial_index=err.trial_indices[0],
                runner_params={"max_slots": 100},
            )

    def test_timeout_error_carries_replay_coordinates(self):
        # TrialTimeoutError is a TrialExecutionError: same replay fields.
        err = TrialTimeoutError(
            "m", experiment="e", trial_indices=(3, 4), base_seed=6
        )
        assert isinstance(err, TrialExecutionError)
        assert err.trial_indices == (3, 4)
        assert err.base_seed == 6

    def test_typed_error_passes_through_serial_loop_unwrapped(self, monkeypatch):
        # A TrialExecutionError raised below the dispatch layer must
        # surface as-is (replay fields intact), not double-wrapped.
        original = TrialExecutionError(
            "inner", experiment="inner-exp", trial_indices=(1,), base_seed=3
        )

        def poisoned(*_args, **_kwargs):
            raise original

        monkeypatch.setattr("repro.sim.parallel.run_experiment_trial", poisoned)
        with pytest.raises(TrialExecutionError) as info:
            run_spec_trials(
                tiny_net(),
                "algorithm1",
                trials=1,
                base_seed=0,
                runner_params={"delta_est": 4, "max_slots": 100},
                experiment="outer-exp",
            )
        assert info.value is original

    def test_wrapped_error_chains_the_original_traceback(self):
        with pytest.raises(TrialExecutionError) as info:
            run_spec_trials(
                tiny_net(),
                "algorithm1",
                trials=1,
                base_seed=0,
                runner_params={"max_slots": 100},
            )
        assert isinstance(info.value.__cause__, ConfigurationError)
