"""Unit tests for repro.sim.stopping."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.stopping import StoppingCondition


class TestStoppingCondition:
    def test_slots_shorthand(self):
        s = StoppingCondition.slots(100)
        assert s.max_slots == 100
        assert s.stop_on_full_coverage

    def test_frames_shorthand(self):
        s = StoppingCondition.frames(50, stop_on_full_coverage=False)
        assert s.max_frames_per_node == 50
        assert not s.stop_on_full_coverage

    def test_require_slot_budget(self):
        assert StoppingCondition.slots(10).require_slot_budget() == 10
        with pytest.raises(ConfigurationError, match="max_slots"):
            StoppingCondition(max_real_time=5.0).require_slot_budget()

    def test_require_async_budget(self):
        StoppingCondition(max_real_time=1.0).require_async_budget()
        StoppingCondition(max_frames_per_node=1).require_async_budget()
        with pytest.raises(ConfigurationError, match="asynchronous"):
            StoppingCondition(max_slots=5).require_async_budget()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_slots": 0},
            {"max_slots": -5},
            {"max_real_time": 0.0},
            {"max_frames_per_node": 0},
        ],
    )
    def test_non_positive_budgets_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StoppingCondition(**kwargs)
