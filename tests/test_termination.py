"""Tests for the termination-detection extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm3 import FlatSyncDiscovery
from repro.core.algorithm4 import AsyncFrameDiscovery
from repro.core.base import Mode
from repro.core.messages import HelloMessage
from repro.core.termination import (
    SelfTerminatingAsyncProtocol,
    SelfTerminatingProtocol,
    TerminationPolicy,
    recommended_quiet_threshold,
)
from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.termination_runner import run_terminating_async, run_terminating_sync


def make_wrapper(threshold=10, policy=TerminationPolicy.SLEEP, channels=(0, 1)):
    inner = FlatSyncDiscovery(0, channels, np.random.default_rng(0), delta_est=4)
    return SelfTerminatingProtocol(inner, threshold, policy)


class TestRecommendedThreshold:
    def test_monotone_in_epsilon(self):
        tight = recommended_quiet_threshold(4, 8, 0.5, 1e-4)
        loose = recommended_quiet_threshold(4, 8, 0.5, 1e-1)
        assert tight > loose

    def test_scales_with_contention(self):
        easy = recommended_quiet_threshold(2, 4, 1.0, 0.01)
        hard = recommended_quiet_threshold(8, 32, 0.25, 0.01)
        assert hard > easy

    def test_validates_epsilon(self):
        with pytest.raises(ConfigurationError):
            recommended_quiet_threshold(4, 8, 0.5, 0.0)


class TestSyncWrapper:
    def test_delegates_identity(self):
        w = make_wrapper()
        assert w.node_id == 0
        assert w.channels == {0, 1}
        assert w.hello().sender == 0

    def test_terminates_after_quiet_threshold(self):
        w = make_wrapper(threshold=5)
        # With no progress ever (virtual progress at slot -1), slots
        # 0..4 are the five quiet decisions; slot 5 stops.
        for slot in range(5):
            d = w.decide_slot(slot)
            assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)
        assert w.terminated_at is None
        w.decide_slot(5)
        assert w.terminated_at == 5.0

    def test_progress_resets_counter(self):
        w = make_wrapper(threshold=5)
        w.decide_slot(0)
        w.on_receive(HelloMessage(1, frozenset({0})), heard_at=3.0)
        # Progress at 3 keeps slots 4..8 active; slot 9 stops.
        assert w.decide_slot(8).mode in (Mode.TRANSMIT, Mode.LISTEN)
        assert w.terminated_at is None
        w.decide_slot(9)
        assert w.terminated_at == 9.0

    def test_sleep_policy_goes_quiet(self):
        w = make_wrapper(threshold=2, policy=TerminationPolicy.SLEEP)
        for slot in range(10):
            w.decide_slot(slot)
        assert w.terminated_at is not None
        assert w.decide_slot(20).mode is Mode.QUIET

    def test_beacon_policy_never_listens_after_stop(self):
        w = make_wrapper(threshold=2, policy=TerminationPolicy.BEACON)
        for slot in range(200):
            d = w.decide_slot(slot)
            if w.terminated_at is not None and slot > w.terminated_at:
                assert d.mode in (Mode.TRANSMIT, Mode.QUIET)
        # With p = 0.5 it must transmit sometimes after stopping.
        post = [w.decide_slot(300 + i).mode for i in range(100)]
        assert Mode.TRANSMIT in post

    def test_duplicate_hellos_are_not_progress(self):
        w = make_wrapper(threshold=5)
        msg = HelloMessage(1, frozenset({0}))
        w.on_receive(msg, 0.0)
        w.on_receive(msg, 4.0)  # duplicate: no progress
        w.decide_slot(6)
        assert w.terminated_at == 6.0

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            make_wrapper(threshold=0)


class TestAsyncWrapper:
    def test_frame_termination(self):
        inner = AsyncFrameDiscovery(0, (0,), np.random.default_rng(0), delta_est=4)
        w = SelfTerminatingAsyncProtocol(inner, 3, TerminationPolicy.SLEEP)
        for frame in range(10):
            w.decide_frame(frame)
        assert w.terminated_at is not None
        assert w.decide_frame(20).mode is Mode.QUIET


class TestTerminatingRuns:
    @pytest.fixture
    def net(self):
        topo = topology.clique(6)
        return build_network(topo, channels.homogeneous(6, 2))

    def test_generous_threshold_no_false_stops(self, net):
        threshold = recommended_quiet_threshold(
            net.max_channel_set_size, 8, net.min_span_ratio, 1e-3
        )
        outcome = run_terminating_sync(
            net,
            "algorithm3",
            seed=1,
            max_slots=50 * threshold,
            quiet_threshold=threshold,
            delta_est=8,
            policy=TerminationPolicy.BEACON,
        )
        assert outcome.all_stopped
        assert not outcome.false_stops
        assert outcome.output_complete

    def test_tiny_threshold_causes_false_stops(self, net):
        outcome = run_terminating_sync(
            net,
            "algorithm3",
            seed=1,
            max_slots=3000,
            quiet_threshold=1,
            delta_est=8,
            policy=TerminationPolicy.SLEEP,
        )
        assert outcome.false_stops  # stopping after 1 quiet slot is hopeless

    def test_sleep_policy_can_strand_others(self, net):
        # With SLEEP, early stoppers go silent; with a marginal threshold
        # this leaves some nodes' tables incomplete more often than the
        # BEACON policy does. At minimum, BEACON with the same threshold
        # must do no worse.
        def completeness(policy):
            ok = 0
            for seed in range(6):
                outcome = run_terminating_sync(
                    net,
                    "algorithm3",
                    seed=seed,
                    max_slots=4000,
                    quiet_threshold=30,
                    delta_est=8,
                    policy=policy,
                )
                ok += outcome.output_complete
            return ok

        assert completeness(TerminationPolicy.BEACON) >= completeness(
            TerminationPolicy.SLEEP
        )

    def test_async_terminating_run(self, net):
        outcome = run_terminating_async(
            net,
            seed=2,
            max_frames_per_node=20_000,
            quiet_threshold=400,
            delta_est=8,
            drift_bound=0.05,
            start_spread=3.0,
            policy=TerminationPolicy.BEACON,
        )
        assert outcome.all_stopped
        assert outcome.output_complete
        assert not outcome.false_stops

    def test_metadata_recorded(self, net):
        outcome = run_terminating_sync(
            net,
            "algorithm3",
            seed=0,
            max_slots=2000,
            quiet_threshold=50,
            delta_est=8,
        )
        meta = outcome.result.metadata
        assert meta["quiet_threshold"] == 50
        assert meta["termination_policy"] == "beacon"
