"""Property-based tests (hypothesis) for the protocol layer."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.algorithm1 import StagedSyncDiscovery
from repro.core.algorithm2 import GrowingEstimateSyncDiscovery
from repro.core.algorithm3 import FlatSyncDiscovery
from repro.core.algorithm4 import AsyncFrameDiscovery
from repro.core.base import Mode
from repro.core.params import stage_length

channel_sets = st.sets(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=10
)
delta_ests = st.integers(min_value=2, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31)
slots = st.integers(min_value=0, max_value=5000)


class TestProbabilityRanges:
    @given(channel_sets, delta_ests, slots)
    @settings(max_examples=200, deadline=None)
    def test_alg1_probability_in_range(self, chans, delta_est, slot):
        p = StagedSyncDiscovery(0, chans, np.random.default_rng(0), delta_est)
        prob = p.transmit_probability(slot)
        assert 0.0 < prob <= 0.5
        i = p.slot_in_stage(slot)
        assert prob == min(0.5, len(chans) / 2**i)

    @given(channel_sets, slots)
    @settings(max_examples=200, deadline=None)
    def test_alg2_probability_in_range(self, chans, slot):
        p = GrowingEstimateSyncDiscovery(0, chans, np.random.default_rng(0))
        prob = p.transmit_probability(slot)
        assert 0.0 < prob <= 0.5
        d, i = p.schedule_position(slot)
        assert 1 <= i <= stage_length(d)

    @given(channel_sets, delta_ests)
    @settings(max_examples=200, deadline=None)
    def test_alg3_probability_formula(self, chans, delta_est):
        p = FlatSyncDiscovery(0, chans, np.random.default_rng(0), delta_est)
        assert p.transmit_probability(0) == min(0.5, len(chans) / delta_est)

    @given(channel_sets, delta_ests)
    @settings(max_examples=200, deadline=None)
    def test_alg4_probability_formula(self, chans, delta_est):
        p = AsyncFrameDiscovery(0, chans, np.random.default_rng(0), delta_est)
        assert p.frame_transmit_probability == min(
            0.5, len(chans) / (3 * delta_est)
        )


class TestDecisionValidity:
    @given(channel_sets, delta_ests, seeds)
    @settings(max_examples=100, deadline=None)
    def test_sync_decisions_use_available_channels(self, chans, delta_est, seed):
        rng = np.random.default_rng(seed)
        for proto in (
            StagedSyncDiscovery(0, chans, rng, delta_est),
            GrowingEstimateSyncDiscovery(0, chans, rng),
            FlatSyncDiscovery(0, chans, rng, delta_est),
        ):
            for slot in range(30):
                d = proto.decide_slot(slot)
                assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)
                assert d.channel in chans

    @given(channel_sets, delta_ests, seeds)
    @settings(max_examples=100, deadline=None)
    def test_async_decisions_use_available_channels(self, chans, delta_est, seed):
        proto = AsyncFrameDiscovery(
            0, chans, np.random.default_rng(seed), delta_est
        )
        for frame in range(30):
            d = proto.decide_frame(frame)
            assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)
            assert d.channel in chans


class TestAlgorithm2Schedule:
    @given(slots)
    @settings(max_examples=300, deadline=None)
    def test_estimates_nondecreasing(self, slot):
        p = GrowingEstimateSyncDiscovery(0, {0}, np.random.default_rng(0))
        d1 = p.current_estimate(slot)
        d2 = p.current_estimate(slot + 1)
        assert d2 in (d1, d1 + 1)

    @given(st.integers(min_value=2, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_slots_until_estimate_matches_positions(self, target):
        p = GrowingEstimateSyncDiscovery(0, {0}, np.random.default_rng(0))
        first = GrowingEstimateSyncDiscovery.slots_until_estimate(target)
        assert p.schedule_position(first) == (target, 1)
