"""Unit tests for repro.core.registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DeterministicScanProtocol, UniversalSweepProtocol
from repro.core import (
    AsyncFrameDiscovery,
    FlatSyncDiscovery,
    GrowingEstimateSyncDiscovery,
    StagedSyncDiscovery,
    make_async_factory,
    make_sync_factory,
)
from repro.exceptions import ConfigurationError


def build(factory, channels=(0, 1)):
    return factory(0, frozenset(channels), np.random.default_rng(0))


class TestSyncFactory:
    def test_algorithm1(self):
        proto = build(make_sync_factory("algorithm1", delta_est=8))
        assert isinstance(proto, StagedSyncDiscovery)
        assert proto.delta_est == 8

    def test_algorithm2(self):
        proto = build(make_sync_factory("algorithm2"))
        assert isinstance(proto, GrowingEstimateSyncDiscovery)

    def test_algorithm3(self):
        proto = build(make_sync_factory("algorithm3", delta_est=4))
        assert isinstance(proto, FlatSyncDiscovery)

    def test_universal_sweep(self):
        proto = build(
            make_sync_factory(
                "universal_sweep", delta_est=4, universal_channels=[0, 1, 2]
            )
        )
        assert isinstance(proto, UniversalSweepProtocol)

    def test_deterministic_scan(self):
        proto = build(
            make_sync_factory(
                "deterministic_scan", universal_channels=[0, 1], id_space_size=8
            )
        )
        assert isinstance(proto, DeterministicScanProtocol)

    def test_missing_required_params(self):
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_sync_factory("algorithm1")
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_sync_factory("algorithm3")
        with pytest.raises(ConfigurationError, match="universal_channels"):
            make_sync_factory("universal_sweep", delta_est=4)
        with pytest.raises(ConfigurationError, match="id_space_size"):
            make_sync_factory("deterministic_scan", universal_channels=[0])

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown synchronous"):
            make_sync_factory("nope")


class TestAsyncFactory:
    def test_algorithm4(self):
        proto = build(make_async_factory("algorithm4", delta_est=4))
        assert isinstance(proto, AsyncFrameDiscovery)

    def test_missing_delta_est(self):
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_async_factory("algorithm4")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown asynchronous"):
            make_async_factory("bogus", delta_est=2)
