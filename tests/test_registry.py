"""Unit tests for repro.core.registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DeterministicScanProtocol, UniversalSweepProtocol
from repro.core import (
    AsyncFrameDiscovery,
    FlatSyncDiscovery,
    GrowingEstimateSyncDiscovery,
    StagedSyncDiscovery,
    make_async_factory,
    make_sync_factory,
)
from repro.core.mcdis import McDisDiscovery
from repro.core.registry import (
    ASYNCHRONOUS_PROTOCOLS,
    BATCHED_PROTOCOLS,
    PROTOCOL_SPECS,
    SYNCHRONOUS_PROTOCOLS,
    VECTORIZED_PROTOCOLS,
    ProtocolSpec,
    protocol_spec,
)
from repro.core.robust import RobustFlatDiscovery, RobustStagedDiscovery
from repro.exceptions import ConfigurationError


def build(factory, channels=(0, 1)):
    return factory(0, frozenset(channels), np.random.default_rng(0))


class TestSyncFactory:
    def test_algorithm1(self):
        proto = build(make_sync_factory("algorithm1", delta_est=8))
        assert isinstance(proto, StagedSyncDiscovery)
        assert proto.delta_est == 8

    def test_algorithm2(self):
        proto = build(make_sync_factory("algorithm2"))
        assert isinstance(proto, GrowingEstimateSyncDiscovery)

    def test_algorithm3(self):
        proto = build(make_sync_factory("algorithm3", delta_est=4))
        assert isinstance(proto, FlatSyncDiscovery)

    def test_universal_sweep(self):
        proto = build(
            make_sync_factory(
                "universal_sweep", delta_est=4, universal_channels=[0, 1, 2]
            )
        )
        assert isinstance(proto, UniversalSweepProtocol)

    def test_deterministic_scan(self):
        proto = build(
            make_sync_factory(
                "deterministic_scan", universal_channels=[0, 1], id_space_size=8
            )
        )
        assert isinstance(proto, DeterministicScanProtocol)

    def test_missing_required_params(self):
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_sync_factory("algorithm1")
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_sync_factory("algorithm3")
        with pytest.raises(ConfigurationError, match="universal_channels"):
            make_sync_factory("universal_sweep", delta_est=4)
        with pytest.raises(ConfigurationError, match="id_space_size"):
            make_sync_factory("deterministic_scan", universal_channels=[0])

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown synchronous"):
            make_sync_factory("nope")

    def test_robust_staged(self):
        proto = build(make_sync_factory("robust_staged", delta_est=8))
        assert isinstance(proto, RobustStagedDiscovery)

    def test_robust_flat(self):
        proto = build(make_sync_factory("robust_flat", delta_est=8))
        assert isinstance(proto, RobustFlatDiscovery)

    def test_mcdis(self):
        proto = build(make_sync_factory("mcdis"))
        assert isinstance(proto, McDisDiscovery)

    def test_rivals_missing_delta_est(self):
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_sync_factory("robust_staged")
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_sync_factory("robust_flat")

    def test_async_name_rejected_by_sync_factory(self):
        with pytest.raises(ConfigurationError, match="unknown synchronous"):
            make_sync_factory("algorithm4", delta_est=4)


class TestSpecTable:
    def test_names_unique_and_constants_consistent(self):
        names = [spec.name for spec in PROTOCOL_SPECS]
        assert len(set(names)) == len(names)
        assert SYNCHRONOUS_PROTOCOLS == tuple(
            s.name for s in PROTOCOL_SPECS if s.kind == "sync"
        )
        assert ASYNCHRONOUS_PROTOCOLS == tuple(
            s.name for s in PROTOCOL_SPECS if s.kind == "async"
        )
        assert set(BATCHED_PROTOCOLS) <= set(VECTORIZED_PROTOCOLS)
        assert set(VECTORIZED_PROTOCOLS) <= set(SYNCHRONOUS_PROTOCOLS)

    def test_every_sync_spec_builds(self):
        # Registering a spec without a builder branch must be impossible
        # to miss: build every sync name with the uniform parameter set.
        for name in SYNCHRONOUS_PROTOCOLS:
            factory = make_sync_factory(
                name,
                delta_est=4,
                universal_channels=[0, 1],
                id_space_size=4,
            )
            assert build(factory) is not None, name

    def test_rivals_registered(self):
        assert {"mcdis", "robust_staged", "robust_flat"} <= set(
            SYNCHRONOUS_PROTOCOLS
        )
        assert protocol_spec("mcdis").vectorized is False
        assert protocol_spec("robust_flat").batched is True

    def test_protocol_spec_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            protocol_spec("warp_drive")

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ProtocolSpec("x", "quantum", "bad kind")
        with pytest.raises(ConfigurationError, match="vectorized"):
            ProtocolSpec("x", "sync", "batched needs vectorized", batched=True)


class TestAsyncFactory:
    def test_algorithm4(self):
        proto = build(make_async_factory("algorithm4", delta_est=4))
        assert isinstance(proto, AsyncFrameDiscovery)

    def test_missing_delta_est(self):
        with pytest.raises(ConfigurationError, match="delta_est"):
            make_async_factory("algorithm4")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown asynchronous"):
            make_async_factory("bogus", delta_est=2)
