"""Unit tests for repro.net.topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import topology


class TestTopologyDataclass:
    def test_pairs_canonicalized(self):
        topo = topology.Topology(3, [(2, 1), (1, 2), (0, 1)])
        assert topo.pairs == [(0, 1), (1, 2)]

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            topology.Topology(2, [(0, 0)])

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown node"):
            topology.Topology(2, [(0, 5)])

    def test_max_radio_degree(self):
        topo = topology.star(5)
        assert topo.max_radio_degree == 5

    def test_to_graph_roundtrip(self):
        topo = topology.ring(5)
        graph = topo.to_graph()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 5


class TestGenerators:
    def test_line(self):
        topo = topology.line(4)
        assert topo.pairs == [(0, 1), (1, 2), (2, 3)]
        assert topo.is_connected

    def test_ring_minimum_size(self):
        with pytest.raises(ConfigurationError, match=">= 3"):
            topology.ring(2)

    def test_ring(self):
        topo = topology.ring(6)
        assert len(topo.pairs) == 6
        assert topo.max_radio_degree == 2

    def test_star(self):
        topo = topology.star(3)
        assert topo.num_nodes == 4
        assert all(0 in pair for pair in topo.pairs)

    def test_clique(self):
        topo = topology.clique(5)
        assert len(topo.pairs) == 10
        assert topo.max_radio_degree == 4

    def test_grid_4_neighborhood(self):
        topo = topology.grid(2, 3)
        assert topo.num_nodes == 6
        # 2x3 grid: 3 horizontal x 2 rows + 3 vertical = 7 edges.
        assert len(topo.pairs) == 7

    def test_grid_diagonal(self):
        plain = topology.grid(3, 3)
        diag = topology.grid(3, 3, diagonal=True)
        assert len(diag.pairs) > len(plain.pairs)

    def test_grid_positions(self):
        topo = topology.grid(2, 2)
        assert topo.positions[3] == (1.0, 1.0)

    def test_two_cliques_bridge(self):
        topo = topology.two_cliques_bridge(3)
        assert topo.num_nodes == 6
        assert (2, 3) in topo.pairs
        assert topo.is_connected

    def test_random_geometric_radius_respected(self, rng):
        topo = topology.random_geometric(15, radius=0.2, rng=rng)
        positions = topo.positions
        for u, v in topo.pairs:
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            assert (dx * dx + dy * dy) ** 0.5 <= 0.2 + 1e-12

    def test_random_geometric_connected_flag(self, rng):
        topo = topology.random_geometric(
            10, radius=0.6, rng=rng, require_connected=True
        )
        assert topo.is_connected

    def test_random_geometric_impossible_connectivity_raises(self, rng):
        with pytest.raises(ConfigurationError, match="connected"):
            topology.random_geometric(
                30, radius=0.01, rng=rng, require_connected=True, max_attempts=3
            )

    def test_random_geometric_deterministic(self):
        a = topology.random_geometric(8, 0.3, np.random.default_rng(5))
        b = topology.random_geometric(8, 0.3, np.random.default_rng(5))
        assert a.pairs == b.pairs
        assert a.positions == b.positions

    def test_erdos_renyi_probability_extremes(self, rng):
        empty = topology.erdos_renyi(6, 0.0, rng)
        assert empty.pairs == []
        full = topology.erdos_renyi(6, 1.0, rng)
        assert len(full.pairs) == 15

    def test_erdos_renyi_invalid_probability(self, rng):
        with pytest.raises(ConfigurationError, match="edge_probability"):
            topology.erdos_renyi(5, 1.5, rng)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            topology.grid(0, 3)
        with pytest.raises(ConfigurationError):
            topology.random_geometric(5, -1.0, rng)
        with pytest.raises(ConfigurationError):
            topology.two_cliques_bridge(1)
