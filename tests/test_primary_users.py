"""Unit tests for repro.net.primary_users."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import topology
from repro.net.primary_users import (
    PrimaryUser,
    PrimaryUserField,
    availability_from_primary_users,
)


class TestPrimaryUser:
    def test_blocks_inside_radius(self):
        pu = PrimaryUser(position=(0.5, 0.5), channel=2, radius=0.3)
        assert pu.blocks((0.5, 0.7))
        assert not pu.blocks((0.5, 0.9))

    def test_blocks_on_boundary(self):
        pu = PrimaryUser(position=(0.0, 0.0), channel=0, radius=1.0)
        assert pu.blocks((1.0, 0.0))

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError, match="radius"):
            PrimaryUser(position=(0, 0), channel=0, radius=0.0)

    def test_invalid_channel(self):
        with pytest.raises(ConfigurationError, match="channel"):
            PrimaryUser(position=(0, 0), channel=-1, radius=1.0)


class TestPrimaryUserField:
    def test_channel_outside_universal_rejected(self):
        with pytest.raises(ConfigurationError, match="outside universal"):
            PrimaryUserField(
                universal_size=2,
                users=[PrimaryUser(position=(0, 0), channel=2, radius=0.5)],
            )

    def test_available_channels_subtracts_blockers(self):
        field = PrimaryUserField(
            universal_size=4,
            users=[
                PrimaryUser(position=(0.0, 0.0), channel=1, radius=0.5),
                PrimaryUser(position=(1.0, 1.0), channel=3, radius=0.5),
            ],
        )
        assert field.available_channels((0.0, 0.1)) == {0, 2, 3}
        assert field.available_channels((1.0, 0.9)) == {0, 1, 2}
        assert field.available_channels((0.5, 0.5)) == {0, 1, 2, 3}

    def test_random_field_deterministic(self):
        a = PrimaryUserField.random(6, 5, 0.2, np.random.default_rng(3))
        b = PrimaryUserField.random(6, 5, 0.2, np.random.default_rng(3))
        assert [(u.position, u.channel) for u in a.users] == [
            (u.position, u.channel) for u in b.users
        ]

    def test_random_field_count(self, rng):
        field = PrimaryUserField.random(6, 7, 0.2, rng)
        assert len(field.users) == 7


class TestAvailabilityFromPrimaryUsers:
    def test_requires_positions(self, rng):
        topo = topology.clique(3)  # no positions
        field = PrimaryUserField(universal_size=3, users=[])
        with pytest.raises(ConfigurationError, match="positions"):
            availability_from_primary_users(topo, field)

    def test_no_users_gives_universal_everywhere(self):
        topo = topology.grid(2, 2)
        field = PrimaryUserField(universal_size=3, users=[])
        a = availability_from_primary_users(topo, field)
        assert all(a[i] == {0, 1, 2} for i in range(4))

    def test_spatial_heterogeneity(self):
        topo = topology.line(3)  # positions (0,0), (1,0), (2,0)
        field = PrimaryUserField(
            universal_size=2,
            users=[PrimaryUser(position=(0.0, 0.0), channel=1, radius=0.5)],
        )
        a = availability_from_primary_users(topo, field)
        assert a[0] == {0}
        assert a[1] == {0, 1}
        assert a[2] == {0, 1}

    def test_min_channels_floor_enforced(self):
        topo = topology.line(2)
        field = PrimaryUserField(
            universal_size=1,
            users=[PrimaryUser(position=(0.0, 0.0), channel=0, radius=5.0)],
        )
        with pytest.raises(ConfigurationError, match="too dense"):
            availability_from_primary_users(topo, field, min_channels=1)
