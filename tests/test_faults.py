"""Unit tests for the fault-injection subsystem (models, timelines,
serialization, runtime compilation, glitched clocks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ClockModelError, ConfigurationError
from repro.faults import (
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    FaultPlan,
    FixedWindows,
    GilbertElliott,
    GlitchedClock,
    JammingBursts,
    NodeChurn,
    RenewalActivity,
    as_fault_plan,
    compile_plan,
    fault_preset,
    fault_preset_names,
    plan_from_dict,
    plan_to_dict,
    realize,
)
from repro.net import M2HeWNetwork, NodeSpec
from repro.net.primary_users import PrimaryUser
from repro.sim.clock import ConstantDriftClock, PerfectClock
from repro.sim.rng import RngFactory


def positioned_net() -> M2HeWNetwork:
    nodes = [
        NodeSpec(0, frozenset({0, 1}), position=(0.1, 0.1)),
        NodeSpec(1, frozenset({0, 1}), position=(0.9, 0.9)),
    ]
    return M2HeWNetwork(nodes, adjacency=[(0, 1)])


class TestFixedWindows:
    def test_empty_is_trivial(self):
        assert FixedWindows(()).is_trivial
        assert not FixedWindows(((1.0, 2.0),)).is_trivial

    def test_rejects_inverted_and_overlapping(self):
        with pytest.raises(ConfigurationError):
            FixedWindows(((2.0, 1.0),))
        with pytest.raises(ConfigurationError):
            FixedWindows(((-1.0, 1.0),))
        with pytest.raises(ConfigurationError):
            FixedWindows(((0.0, 5.0), (4.0, 6.0)))

    def test_window_timeline_queries(self):
        tl = realize(FixedWindows(((10.0, 20.0), (30.0, 40.0))))
        assert not tl.active_at(9.9)
        assert tl.active_at(10.0)
        assert not tl.active_at(20.0)  # half-open
        assert tl.overlaps_on(19.0, 31.0)
        assert not tl.overlaps_on(20.0, 30.0)
        assert tl.on_time_before(35.0) == pytest.approx(15.0)
        assert tl.on_time_before(100.0) == pytest.approx(20.0)


class TestRenewalActivity:
    def test_validation_and_duty_cycle(self):
        act = RenewalActivity(mean_on=10.0, mean_off=30.0)
        assert act.duty_cycle == pytest.approx(0.25)
        assert not act.is_trivial
        with pytest.raises(ConfigurationError):
            RenewalActivity(mean_on=0.0, mean_off=1.0)

    def test_from_duty_cycle(self):
        act = RenewalActivity.from_duty_cycle(0.2, mean_on=100.0)
        assert act.duty_cycle == pytest.approx(0.2)
        with pytest.raises(ConfigurationError):
            RenewalActivity.from_duty_cycle(0.0, mean_on=1.0)

    def test_realize_requires_rng(self):
        with pytest.raises(ConfigurationError):
            realize(RenewalActivity(mean_on=1.0, mean_off=1.0))

    def test_query_order_independence(self):
        spec = RenewalActivity(mean_on=5.0, mean_off=15.0)
        times = [0.0, 3.0, 7.5, 42.0, 11.1, 100.0, 55.5]
        a = realize(spec, np.random.default_rng(77))
        forward = [a.active_at(t) for t in sorted(times)]
        b = realize(spec, np.random.default_rng(77))
        shuffled = {t: b.active_at(t) for t in times}
        assert forward == [shuffled[t] for t in sorted(times)]

    def test_on_time_matches_windows(self):
        spec = RenewalActivity(mean_on=5.0, mean_off=5.0, start_on=True)
        tl = realize(spec, np.random.default_rng(1))
        # on_time_before is non-decreasing and bounded by elapsed time.
        prev = 0.0
        for t in np.linspace(0.0, 200.0, 81):
            cur = tl.on_time_before(float(t))
            assert prev <= cur <= float(t) + 1e-9
            prev = cur

    def test_pinned_start_state(self):
        on = realize(
            RenewalActivity(1.0, 1.0, start_on=True), np.random.default_rng(0)
        )
        off = realize(
            RenewalActivity(1.0, 1.0, start_on=False), np.random.default_rng(0)
        )
        assert on.active_at(0.0)
        assert not off.active_at(0.0)


class TestModels:
    def test_bernoulli_validation(self):
        assert BernoulliLoss(0.0).is_trivial
        assert not BernoulliLoss(0.3).is_trivial
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.0)

    def test_gilbert_elliott(self):
        ge = GilbertElliott(mean_good=300.0, mean_bad=100.0)
        assert ge.stationary_bad == pytest.approx(0.25)
        assert GilbertElliott(p_good=0.0, p_bad=0.0).is_trivial
        with pytest.raises(ConfigurationError):
            GilbertElliott(p_good=1.0, p_bad=1.0)
        with pytest.raises(ConfigurationError):
            GilbertElliott(mean_good=0.0)

    def test_jamming_channels(self):
        jam = JammingBursts(FixedWindows(((0.0, 1.0),)), channels=(3, 1))
        assert jam.channels == (1, 3)
        with pytest.raises(ConfigurationError):
            JammingBursts(FixedWindows(((0.0, 1.0),)), channels=())
        with pytest.raises(ConfigurationError):
            JammingBursts(FixedWindows(((0.0, 1.0),)), channels=(1, 1))
        assert JammingBursts.from_duty_cycle(0.0, mean_burst=10.0).is_trivial
        assert not JammingBursts.from_duty_cycle(0.4, mean_burst=10.0).is_trivial

    def test_node_churn_accepts_mapping_and_pairs(self):
        a = NodeChurn(joins={2: 5.0, 1: 3.0}, crashes=[(0, 9.0)])
        assert a.joins == ((1, 3.0), (2, 5.0))
        assert a.crashes == ((0, 9.0),)
        assert NodeChurn().is_trivial
        with pytest.raises(ConfigurationError):
            NodeChurn(joins=[(1, 1.0), (1, 2.0)])
        with pytest.raises(ConfigurationError):
            NodeChurn(crashes={0: -1.0})

    def test_clock_glitch_validation(self):
        g = ClockGlitch(spike=0.05, activity=FixedWindows(((0.0, 1.0),)))
        assert not g.is_trivial
        assert ClockGlitch(0.0, FixedWindows(((0.0, 1.0),))).is_trivial
        assert ClockGlitch(0.1, FixedWindows(())).is_trivial
        with pytest.raises(ConfigurationError):
            ClockGlitch(spike=1.0, activity=FixedWindows(((0.0, 1.0),)))


class TestFaultPlan:
    def test_trivial_detection(self):
        assert FaultPlan().is_trivial
        assert FaultPlan(models=(BernoulliLoss(0.0), NodeChurn())).is_trivial
        assert not FaultPlan(models=(BernoulliLoss(0.1),)).is_trivial

    def test_rejects_non_models(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(models=("not a model",))


class TestSerialization:
    def full_plan(self) -> FaultPlan:
        return FaultPlan(
            models=(
                BernoulliLoss(0.1),
                GilbertElliott(0.02, 0.8, 400.0, 40.0),
                JammingBursts(
                    RenewalActivity(10.0, 30.0, start_on=True), channels=(0, 2)
                ),
                DynamicPrimaryUsers(
                    users=(PrimaryUser((0.5, 0.5), channel=1, radius=0.3),),
                    activity=FixedWindows(((5.0, 25.0),)),
                ),
                NodeChurn(joins={1: 10.0}, crashes={0: 99.0}),
                ClockGlitch(0.02, RenewalActivity(3.0, 9.0), nodes=(0,)),
            )
        )

    def test_round_trip(self):
        plan = self.full_plan()
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_round_trip_through_json(self):
        import json

        plan = self.full_plan()
        rebuilt = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert rebuilt == plan

    def test_as_fault_plan(self):
        plan = self.full_plan()
        assert as_fault_plan(None) is None
        assert as_fault_plan(plan) is plan
        assert as_fault_plan(plan_to_dict(plan)) == plan
        with pytest.raises(ConfigurationError):
            as_fault_plan(42)

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            plan_from_dict({"models": [{"kind": "solar_flare"}]})
        with pytest.raises(ConfigurationError):
            plan_from_dict({})


class TestPresets:
    def test_presets_build_nontrivial_plans(self):
        names = fault_preset_names()
        assert names == sorted(names) and names
        for name in names:
            plan = fault_preset(name)
            assert isinstance(plan, FaultPlan) and not plan.is_trivial, name
        with pytest.raises(ConfigurationError):
            fault_preset("nope")


class TestGlitchedClock:
    def test_spike_adds_on_time(self):
        tl = realize(FixedWindows(((10.0, 20.0),)))
        clock = GlitchedClock(PerfectClock(offset=0.0), tl, spike=0.1)
        assert clock.local_from_real(10.0) == pytest.approx(10.0)
        assert clock.local_from_real(20.0) == pytest.approx(21.0)
        assert clock.local_from_real(30.0) == pytest.approx(31.0)

    def test_inverse_round_trip(self):
        tl = realize(FixedWindows(((5.0, 9.0), (12.0, 30.0))))
        base = ConstantDriftClock(0.01, offset=3.0, drift_bound=0.02)
        clock = GlitchedClock(base, tl, spike=0.05)
        for real in (0.0, 4.9, 7.3, 11.0, 25.0, 100.0):
            local = clock.local_from_real(real)
            assert clock.real_from_local(local) == pytest.approx(
                real, abs=1e-6
            )

    def test_combined_bound_must_stay_below_one(self):
        tl = realize(FixedWindows(((0.0, 1.0),)))
        base = ConstantDriftClock(0.5, offset=0.0, drift_bound=0.6)
        with pytest.raises(ClockModelError):
            GlitchedClock(base, tl, spike=0.5)


class TestCompilePlan:
    def test_trivial_plan_compiles_to_none(self):
        net = positioned_net()
        assert compile_plan(FaultPlan(), net, RngFactory(0), "slots") is None
        assert (
            compile_plan(
                FaultPlan(models=(BernoulliLoss(0.0),)),
                net,
                RngFactory(0),
                "slots",
            )
            is None
        )

    def test_rejects_bad_inputs(self):
        net = positioned_net()
        plan = FaultPlan(models=(BernoulliLoss(0.5),))
        with pytest.raises(ConfigurationError):
            compile_plan(plan, net, RngFactory(0), "fortnights")
        with pytest.raises(ConfigurationError):
            compile_plan("nope", net, RngFactory(0), "slots")

    def test_jamming_validates_channels_against_universal_set(self):
        net = positioned_net()  # universal set {0, 1}
        plan = FaultPlan(
            models=(JammingBursts(FixedWindows(((0.0, 1.0),)), channels=(7,)),)
        )
        with pytest.raises(ConfigurationError):
            compile_plan(plan, net, RngFactory(0), "slots")

    def test_primary_users_require_positions(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))]
        net = M2HeWNetwork(nodes, adjacency=[(0, 1)])
        plan = FaultPlan(
            models=(
                DynamicPrimaryUsers(
                    users=(PrimaryUser((0.5, 0.5), channel=0, radius=0.5),),
                    activity=FixedWindows(((0.0, 10.0),)),
                ),
            )
        )
        with pytest.raises(ConfigurationError):
            compile_plan(plan, net, RngFactory(0), "slots")

    def test_churn_validates_node_ids(self):
        net = positioned_net()
        plan = FaultPlan(models=(NodeChurn(crashes={42: 1.0}),))
        with pytest.raises(ConfigurationError):
            compile_plan(plan, net, RngFactory(0), "slots")

    def test_churn_accessors(self):
        net = positioned_net()
        plan = FaultPlan(
            models=(NodeChurn(joins={1: 2.5}, crashes={0: 10.0}),)
        )
        rt = compile_plan(plan, net, RngFactory(0), "slots")
        assert rt.join_time(1) == 2.5
        assert rt.join_offset(1) == 3
        assert rt.join_offset(0) == 0
        assert rt.crash_time(0) == 10.0
        assert rt.alive(0, 9.9) and not rt.alive(0, 10.0)
        assert rt.alive(1, 1e9)

    def test_blocked_tracks_timeline(self):
        net = positioned_net()
        plan = FaultPlan(
            models=(
                JammingBursts(FixedWindows(((5.0, 8.0),)), channels=(0,)),
            )
        )
        rt = compile_plan(plan, net, RngFactory(0), "slots")
        rt.begin_slot(4)
        assert not rt.blocked(0, 0)
        rt.begin_slot(5)
        assert rt.blocked(0, 0) and not rt.blocked(0, 1)
        rt.begin_slot(8)
        assert not rt.blocked(0, 0)
        events = rt.describe()["events"]
        assert [e["on"] for e in events] == [True, False]

    def test_pu_affects_only_nodes_in_radius(self):
        net = positioned_net()  # node 0 at (.1,.1), node 1 at (.9,.9)
        plan = FaultPlan(
            models=(
                DynamicPrimaryUsers(
                    users=(PrimaryUser((0.1, 0.1), channel=0, radius=0.2),),
                    activity=FixedWindows(((0.0, 100.0),)),
                ),
            )
        )
        rt = compile_plan(plan, net, RngFactory(0), "slots")
        rt.begin_slot(0)
        assert rt.blocked(0, 0)
        assert not rt.blocked(1, 0)

    def test_identical_trajectories_for_same_seed(self):
        net = positioned_net()
        plan = FaultPlan(
            models=(
                JammingBursts(RenewalActivity(5.0, 15.0), channels=(0,)),
            )
        )
        flips = []
        for _ in range(2):
            rt = compile_plan(plan, net, RngFactory(123), "slots")
            for t in range(500):
                rt.begin_slot(t)
            flips.append(rt.describe()["events"])
        assert flips[0] == flips[1]
