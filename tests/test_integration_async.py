"""Integration tests: Algorithm 4 end to end under clock drift.

Checks the paper's asynchronous guarantees on real engine executions:
full discovery with exact tables, Theorem 9's frame budget, Theorem 10's
real-time bound, and Lemmas 4/7 on recorded traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import alignment
from repro.core import bounds
from repro.net import build_network, channels, topology
from repro.sim.runner import run_asynchronous, run_trials
from repro.sim.trace import ExecutionTrace


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    topo = topology.random_geometric(
        10, radius=0.5, rng=rng, require_connected=True
    )
    assignment = channels.common_channel_plus_random(
        topo.num_nodes, universal_size=5, set_size=2, rng=rng
    )
    return build_network(topo, assignment)


class TestFullDiscovery:
    def test_exact_tables_no_drift(self):
        net = small_net()
        result = run_asynchronous(
            net,
            seed=1,
            delta_est=8,
            max_frames_per_node=200_000,
            drift_bound=0.0,
            start_spread=5.0,
        )
        assert result.completed
        for nid in net.node_ids:
            expected = {
                v: net.span(v, nid) for v in net.discoverable_neighbors(nid)
            }
            assert result.neighbor_tables[nid] == expected

    @pytest.mark.parametrize("drift", [1e-4, 0.05, 1.0 / 7.0])
    def test_completes_under_drift(self, drift):
        net = small_net()
        result = run_asynchronous(
            net,
            seed=2,
            delta_est=8,
            max_frames_per_node=200_000,
            drift_bound=drift,
            clock_model="constant",
            start_spread=10.0,
        )
        assert result.completed

    @pytest.mark.parametrize("model", ["random_walk", "sinusoidal"])
    def test_time_varying_drift_models(self, model):
        net = small_net()
        result = run_asynchronous(
            net,
            seed=3,
            delta_est=8,
            max_frames_per_node=200_000,
            drift_bound=1.0 / 7.0,
            clock_model=model,
            start_spread=10.0,
        )
        assert result.completed


class TestTheorem9:
    def test_discovery_within_frame_budget(self):
        net = small_net()
        epsilon = 0.2
        delta_est = 8
        budget = bounds.theorem9_frame_budget(
            net.max_channel_set_size,
            delta_est,
            net.min_span_ratio,
            net.num_nodes,
            epsilon,
        )
        results = run_trials(
            lambda seed: run_asynchronous(
                net,
                seed=seed,
                delta_est=delta_est,
                max_frames_per_node=budget,
                drift_bound=1.0 / 7.0,
                start_spread=5.0,
            ),
            num_trials=6,
            base_seed=77,
        )
        # Theorem 9: success probability >= 1 - eps = 0.8. The bound is
        # very loose in practice; all trials should finish.
        assert sum(r.completed for r in results) >= 5

    def test_theorem10_realtime_bound(self):
        net = small_net()
        epsilon = 0.2
        delta_est = 8
        drift = 0.1
        frame_length = 1.0
        realtime_bound = bounds.theorem10_realtime_bound(
            net.max_channel_set_size,
            delta_est,
            net.min_span_ratio,
            net.num_nodes,
            epsilon,
            frame_length,
            drift,
        )
        result = run_asynchronous(
            net,
            seed=5,
            delta_est=delta_est,
            frame_length=frame_length,
            max_real_time=realtime_bound,
            drift_bound=drift,
            start_spread=5.0,
        )
        assert result.completed
        assert result.completion_after_all_started <= realtime_bound


class TestTraceLemmas:
    def run_traced(self, drift, seed=9, model="constant"):
        net = small_net()
        trace = ExecutionTrace()
        run_asynchronous(
            net,
            seed=seed,
            delta_est=8,
            max_frames_per_node=300,
            drift_bound=drift,
            clock_model=model,
            start_spread=7.0,
            stop_on_full_coverage=False,
            trace=trace,
        )
        return trace

    def test_lemma4_on_engine_trace(self):
        trace = self.run_traced(drift=1.0 / 7.0)
        report = alignment.check_lemma4_trace(trace)
        assert report.holds
        assert report.max_overlap <= 3

    def test_lemma4_random_walk_trace(self):
        trace = self.run_traced(drift=1.0 / 7.0, model="random_walk")
        assert alignment.check_lemma4_trace(trace).holds

    def test_lemma7_on_engine_trace(self):
        trace = self.run_traced(drift=1.0 / 7.0)
        nodes = trace.node_ids[:4]
        t_s = 7.0
        for v in nodes:
            for u in nodes:
                if u == v:
                    continue
                fv = trace.frames_of(v)
                gu = trace.frames_of(u)
                holds, checked, failures = alignment.scan_lemma7(
                    fv, gu, np.linspace(t_s, t_s + 100, 60)
                )
                assert checked > 0
                assert not failures, (v, u)

    def test_lemma8_on_engine_trace(self):
        trace = self.run_traced(drift=0.1)
        v, u = trace.node_ids[0], trace.node_ids[1]
        all_frames = {nid: trace.frames_of(nid) for nid in trace.node_ids}
        report = alignment.build_admissible_sequence(
            trace.frames_of(v), trace.frames_of(u), all_frames, t_s=7.0
        )
        assert report.all_aligned
        assert report.disjoint_overlap
        assert report.satisfies_bound


class TestDriftAblation:
    def test_graceful_degradation_beyond_assumption(self):
        # Even past delta = 1/7 the randomized protocol usually still
        # works (the analysis breaks, not necessarily the protocol);
        # at extreme asymmetric drift it keeps working because listeners
        # with long frames still catch short slots. What we check here:
        # the engine stays correct (no false discoveries) at any drift.
        net = small_net()
        result = run_asynchronous(
            net,
            seed=6,
            delta_est=8,
            max_frames_per_node=50_000,
            drift_bound=0.4,
            start_spread=5.0,
        )
        for nid in net.node_ids:
            truth = net.discoverable_neighbors(nid)
            discovered = set(result.neighbor_tables[nid])
            assert discovered <= truth  # soundness regardless of drift
