"""End-to-end: every named scenario supports complete, sound discovery."""

from __future__ import annotations

import pytest

from repro.sim.runner import run_synchronous
from repro.workloads.scenarios import scenario, scenario_names


@pytest.mark.parametrize("name", scenario_names())
def test_every_scenario_discovers_completely(name):
    s = scenario(name)
    network = s.build(seed=0)
    result = run_synchronous(
        network,
        "algorithm3",
        seed=1,
        max_slots=500_000,
        delta_est=s.delta_est,
    )
    assert result.completed, name
    # Soundness on every model variant (symmetric / asymmetric /
    # channel-dependent): discovered ids are exactly the true neighbor
    # ids, and recorded channel sets contain the true span.
    for nid in network.node_ids:
        truth = network.discoverable_neighbors(nid)
        table = result.neighbor_tables[nid]
        assert frozenset(table) == truth, (name, nid)
        for v, recorded in table.items():
            assert network.span(v, nid) <= recorded, (name, v, nid)


@pytest.mark.parametrize("name", ["campus_pu_dynamics", "jammed_urban"])
def test_fault_laden_scenarios_discover_under_their_faults(name):
    s = scenario(name)
    assert s.fault_plan is not None and not s.fault_plan.is_trivial
    network = s.build(seed=0)
    result = run_synchronous(
        network,
        "algorithm3",
        seed=1,
        max_slots=500_000,
        delta_est=s.delta_est,
        faults=s.fault_plan,
    )
    assert result.completed, name
    assert "faults" in result.metadata
    # Faults degrade timing, never soundness: every discovered id is a
    # true neighbor.
    for nid in network.node_ids:
        truth = network.discoverable_neighbors(nid)
        assert frozenset(result.neighbor_tables[nid]) <= truth, (name, nid)


@pytest.mark.parametrize("name", ["rural_sparse", "urban_dense"])
def test_scenarios_complete_async_too(name):
    from repro.sim.runner import run_asynchronous

    s = scenario(name)
    network = s.build(seed=0)
    result = run_asynchronous(
        network,
        seed=2,
        delta_est=s.delta_est,
        max_frames_per_node=500_000,
        drift_bound=0.05,
        start_spread=5.0,
    )
    assert result.completed, name
