"""Unit tests for repro.analysis.alignment (Lemmas 4, 7, 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import alignment
from repro.exceptions import ConfigurationError
from repro.sim.clock import ConstantDriftClock, PerfectClock, PiecewiseDriftClock


def frames(drift=0.0, offset_real=0.0, count=100, L=1.0, node_id=0, bound=None):
    clock = ConstantDriftClock(drift, drift_bound=bound if bound is not None else max(abs(drift), 0.0))
    return alignment.synthesize_frames(clock, L, offset_real, count, node_id=node_id)


class TestSynthesizeFrames:
    def test_contiguous(self):
        fs = frames(count=5)
        for a, b in zip(fs, fs[1:]):
            assert b.start == pytest.approx(a.end)

    def test_perfect_clock_frame_length(self):
        fs = frames(count=3, L=2.0)
        assert all(f.duration == pytest.approx(2.0) for f in fs)

    def test_drifted_real_duration(self):
        fs = frames(drift=1 / 7, count=3, L=1.0)
        assert all(f.duration == pytest.approx(1.0 / (1 + 1 / 7)) for f in fs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            alignment.synthesize_frames(PerfectClock(), 1.0, 0.0, 0)
        with pytest.raises(ConfigurationError):
            alignment.synthesize_frames(PerfectClock(), 0.0, 0.0, 5)


class TestOverlapAndAligned:
    def test_overlapping_frames_open_interval(self):
        a = frames(count=3, node_id=0)
        b = frames(count=3, node_id=1)
        # Identical geometry: frame i overlaps exactly frame i (boundaries
        # touch neighbors but open-interval semantics exclude them).
        assert alignment.overlapping_frames(a[1], b) == [b[1]]

    def test_is_aligned_identical_frames(self):
        a, b = frames(count=1)[0], frames(count=1, node_id=1)[0]
        assert alignment.is_aligned(a, b)

    def test_is_aligned_detects_contained_slot(self):
        a = frames(count=2, node_id=0)  # frames [0,1), [1,2)
        b = frames(count=2, node_id=1, offset_real=0.9)  # [0.9, 1.9) ...
        # Slot [1.0, 1.333) of a[1]... check slot of b inside a or vice versa:
        # slots of a[1]: [1, 4/3), [4/3, 5/3), [5/3, 2). Frame b[0] = [0.9, 1.9):
        # slot [1, 4/3) of a[1] is inside b[0] -> aligned(a[1], b[0]).
        assert alignment.is_aligned(a[1], b[0])

    def test_not_aligned_when_slots_straddle(self):
        # Frame g shorter than one slot of f cannot contain any slot.
        f = frames(count=1, L=3.0)[0]
        g = frames(count=1, L=0.5, node_id=1, offset_real=1.1)[0]
        assert not alignment.is_aligned(f, g)


class TestLemma4:
    def test_holds_for_small_drift(self):
        by_node = {
            0: frames(drift=0.1, bound=0.1, count=60),
            1: frames(drift=-0.1, bound=0.1, count=60, offset_real=0.37, node_id=1),
        }
        report = alignment.check_lemma4(by_node)
        assert report.holds
        assert report.max_overlap <= 3
        assert report.frames_checked > 0

    def test_violated_beyond_one_third(self):
        # delta = 0.6 means rates 1.6 vs 0.4: a slow frame spans four
        # fast frames -> overlap > 3.
        by_node = {
            0: frames(drift=0.6, bound=0.6, count=200),
            1: frames(drift=-0.6, bound=0.6, count=40, node_id=1),
        }
        report = alignment.check_lemma4(by_node)
        assert not report.holds
        assert report.max_overlap > 3
        assert report.violations

    def test_exactly_three_achievable(self):
        # Even perfect clocks with phase offset give 2; mild drift gives 3.
        by_node = {
            0: frames(drift=1 / 7, bound=1 / 7, count=300),
            1: frames(drift=-1 / 7, bound=1 / 7, count=300, offset_real=0.1, node_id=1),
        }
        report = alignment.check_lemma4(by_node)
        assert report.holds
        assert report.max_overlap == 3


class TestLemma7:
    def test_holds_at_assumption_boundary(self):
        fv = frames(drift=1 / 7, bound=1 / 7, count=400)
        gu = frames(drift=-1 / 7, bound=1 / 7, count=400, offset_real=0.53, node_id=1)
        holds, checked, failures = alignment.scan_lemma7(
            fv, gu, np.linspace(0, 150, 400)
        )
        assert checked > 0
        assert holds == checked
        assert not failures

    def test_vacuous_when_frames_missing(self):
        fv = frames(count=1)
        gu = frames(count=1, node_id=1)
        report = alignment.check_lemma7_at(fv, gu, 0.0)
        assert not report.candidates_available

    def test_reports_aligned_pair_indices(self):
        fv = frames(count=10)
        gu = frames(count=10, node_id=1)
        report = alignment.check_lemma7_at(fv, gu, 2.5)
        assert report.holds
        fi, gj = report.aligned_pair
        assert fv[0].frame_index <= fi
        assert gu[0].frame_index <= gj

    def test_can_fail_with_extreme_drift(self):
        # Way beyond 1/7: a very slow transmitter clock (rate 0.1) makes
        # every transmitted slot 10/3 real seconds long, while a very
        # fast receiver clock (rate 1.9) makes listening frames ~0.53
        # seconds — no slot ever fits inside a frame, so the Lemma 7
        # guarantee is lost outside the assumption.
        fv = frames(drift=-0.9, bound=0.9, count=40)
        gu = frames(drift=0.9, bound=0.9, count=400, node_id=1, offset_real=0.4)
        holds, checked, failures = alignment.scan_lemma7(
            fv, gu, np.linspace(0, 60, 50)
        )
        assert checked > 0
        assert holds == 0
        assert failures  # the guarantee is indeed lost out of assumption


class TestLemma8:
    def test_sequence_admissible_and_long_enough(self):
        fv = frames(drift=0.1, bound=1 / 7, count=240)
        gu = frames(drift=-0.1, bound=1 / 7, count=240, offset_real=0.7, node_id=1)
        report = alignment.build_admissible_sequence(
            fv, gu, {0: fv, 1: gu}, t_s=0.0
        )
        assert report.all_aligned
        assert report.disjoint_overlap
        assert report.satisfies_bound
        assert len(report.pairs) >= report.full_frames // 6 - 2

    def test_pairs_strictly_precede(self):
        fv = frames(count=100)
        gu = frames(count=100, node_id=1, offset_real=0.3)
        report = alignment.build_admissible_sequence(
            fv, gu, {0: fv, 1: gu}, t_s=0.0
        )
        for (f1, g1), (f2, g2) in zip(report.pairs, report.pairs[1:]):
            assert f1.start < f2.start
            assert g1.start < g2.start
