"""Unit tests for repro.core.params."""

from __future__ import annotations

import pytest

from repro.core.params import (
    MAX_DRIFT_RATE,
    stage_length,
    validate_delta_est,
    validate_drift,
    validate_epsilon,
    validate_frame_length,
)
from repro.exceptions import ConfigurationError


class TestValidateDeltaEst:
    def test_accepts_two_and_above(self):
        assert validate_delta_est(2) == 2
        assert validate_delta_est(1000) == 1000

    @pytest.mark.parametrize("bad", [1, 0, -3])
    def test_rejects_below_two(self, bad):
        with pytest.raises(ConfigurationError):
            validate_delta_est(bad)

    @pytest.mark.parametrize("bad", [2.0, "2", True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ConfigurationError):
            validate_delta_est(bad)  # type: ignore[arg-type]


class TestValidateEpsilon:
    def test_open_interval(self):
        assert validate_epsilon(0.1) == 0.1
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                validate_epsilon(bad)


class TestValidateDrift:
    def test_basic_range(self):
        assert validate_drift(0.0) == 0.0
        assert validate_drift(0.5) == 0.5
        with pytest.raises(ConfigurationError):
            validate_drift(-0.1)
        with pytest.raises(ConfigurationError):
            validate_drift(1.0)

    def test_assumption_one_enforced(self):
        assert validate_drift(MAX_DRIFT_RATE, enforce_assumption=True) == pytest.approx(
            1.0 / 7.0
        )
        with pytest.raises(ConfigurationError, match="Assumption 1"):
            validate_drift(0.2, enforce_assumption=True)

    def test_assumption_constant(self):
        assert MAX_DRIFT_RATE == pytest.approx(1.0 / 7.0)


class TestFrameLength:
    def test_positive_only(self):
        assert validate_frame_length(2.5) == 2.5
        with pytest.raises(ConfigurationError):
            validate_frame_length(0.0)


class TestStageLength:
    @pytest.mark.parametrize(
        "delta_est,expected",
        [(2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4), (17, 5)],
    )
    def test_ceil_log2(self, delta_est, expected):
        assert stage_length(delta_est) == expected
