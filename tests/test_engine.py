"""Unit tests for repro.sim.engine (generic DES driver)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import DiscreteEventEngine


class TestDiscreteEventEngine:
    def test_runs_to_exhaustion(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(2.0, lambda: fired.append(2))
        end = engine.run()
        assert fired == [1, 2]
        assert end == 2.0
        assert engine.events_executed == 2

    def test_until_leaves_future_events_queued(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        end = engine.run(until=3.0)
        assert fired == [1]
        assert end == 3.0
        engine.run()
        assert fired == [1, 5]

    def test_max_events(self):
        engine = DiscreteEventEngine()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run(max_events=2)
        assert fired == [1.0, 2.0]

    def test_request_stop_from_handler(self):
        engine = DiscreteEventEngine()
        fired = []

        def first():
            fired.append("first")
            engine.request_stop()

        engine.schedule(1.0, first)
        engine.schedule(2.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first"]
        # A later run resumes with remaining events.
        engine.run()
        assert fired == ["first", "second"]

    def test_events_can_schedule_events(self):
        engine = DiscreteEventEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule_after(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        end = engine.run()
        assert fired == [0, 1, 2, 3]
        assert end == 3.0

    def test_schedule_after_negative_delay_rejected(self):
        engine = DiscreteEventEngine()
        with pytest.raises(SimulationError, match="non-negative"):
            engine.schedule_after(-1.0, lambda: None)
