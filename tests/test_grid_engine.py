"""Tests for the parameter-grid batched engine and its dispatch layers.

The grid generalizes the (B, N) trial batch to (G, B, N): one kernel
pass advances many spec points — different schedules, erasure rates,
offsets and fault plans — each spec point owning a contiguous row
slice. The load-bearing guarantee is unchanged from trial batching:
every (spec, trial) result is byte-identical to the same trial on the
serial fast engine, for any grid composition G and any batch size B,
so grid fusion is purely a dispatch optimization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.presets import fault_preset
from repro.net import build_network, channels, topology
from repro.sim.batch import ExperimentSpec, _grid_groups, run_batch
from repro.sim.batched import GridBatchedSimulator, GridCell
from repro.sim.fast_slotted import FastSlottedSimulator
from repro.sim.parallel import run_grid_spec_trials, run_spec_trials
from repro.sim.rng import RngFactory, derive_trial_seed
from repro.sim.runner import (
    _resolve_faults,
    _vector_schedule,
    grid_batchable,
    run_experiment_grid_batched,
    run_experiment_trial,
)
from repro.sim.stopping import StoppingCondition
from repro.workloads.generator import WorkloadConfig

BASE_SEED = 1717


def homogeneous_net(n: int = 10):
    rng = np.random.default_rng(7)
    topo = topology.random_geometric(n, 0.6, rng)
    return build_network(topo, channels.uniform_random_subsets(n, 5, 3, rng))


def heterogeneous_net(n: int = 10):
    rng = np.random.default_rng(11)
    topo = topology.random_geometric(n, 0.6, rng)
    assignment = channels.uniform_random_subsets(n, 6, 2, rng, set_size_max=5)
    assignment = channels.repair_pair_overlap(topo, assignment, rng)
    return build_network(topo, assignment)


def cell(net, protocol, batch, *, delta_est=10, seed_base=0, **kwargs):
    return GridCell(
        schedule=_vector_schedule(protocol, net, delta_est),
        rng_factories=[
            RngFactory(derive_trial_seed(BASE_SEED, seed_base + i))
            for i in range(batch)
        ],
        **kwargs,
    )


def serial_reference(net, grid_cell, stopping, *, seed_base=0):
    """Run each of a cell's rows on the serial fast engine.

    ``seed_base`` must match the one the cell was built with: the grid
    engine consumes the caller's factories, so the reference re-derives
    the same per-row seeds.
    """
    out = []
    for i in range(len(grid_cell.rng_factories)):
        sim = FastSlottedSimulator(
            net,
            grid_cell.schedule,
            RngFactory(derive_trial_seed(BASE_SEED, seed_base + i)),
            start_offsets=grid_cell.start_offsets,
            erasure_prob=grid_cell.erasure_prob,
            faults=grid_cell.faults,
        )
        out.append(sim.run(stopping))
    return out


class TestGridMatchesSerial:
    """Bit-for-bit agreement for every (G, B) composition."""

    @pytest.mark.parametrize("batch", [1, 4, 32])
    def test_single_cell_grid(self, batch):
        net = homogeneous_net()
        c = cell(net, "algorithm2", batch, delta_est=None)
        stopping = StoppingCondition(max_slots=300, stop_on_full_coverage=True)
        expected = serial_reference(net, c, stopping)
        sim = GridBatchedSimulator(net, [c])
        flat = sim.run(stopping)
        assert sim.cell_slices == [slice(0, batch)]
        assert flat == expected

    @pytest.mark.parametrize("batch", [1, 4, 32])
    def test_three_cell_grid_mixed_knobs(self, batch):
        net = heterogeneous_net()
        cells = [
            cell(net, "algorithm3", batch, delta_est=10),
            cell(net, "algorithm3", batch, delta_est=25, erasure_prob=0.2),
            cell(
                net,
                "algorithm1",
                batch,
                delta_est=10,
                start_offsets={0: 3, 4: 1},
            ),
        ]
        stopping = StoppingCondition(max_slots=400, stop_on_full_coverage=True)
        expected = [serial_reference(net, c, stopping) for c in cells]
        sim = GridBatchedSimulator(net, cells)
        flat = sim.run(stopping)
        for g, sl in enumerate(sim.cell_slices):
            assert flat[sl.start : sl.stop] == expected[g], f"cell {g}"

    def test_mixed_fault_plans_per_cell(self):
        net = homogeneous_net()
        cells = [
            cell(net, "algorithm2", 3, delta_est=None),
            cell(
                net,
                "algorithm2",
                3,
                delta_est=None,
                seed_base=3,
                faults=_resolve_faults(fault_preset("jamming_light")),
            ),
            cell(
                net,
                "algorithm2",
                2,
                delta_est=None,
                seed_base=6,
                erasure_prob=0.1,
                faults=_resolve_faults(fault_preset("crash_node0")),
            ),
        ]
        stopping = StoppingCondition(max_slots=300, stop_on_full_coverage=True)
        expected = [
            serial_reference(net, c, stopping, seed_base=base)
            for c, base in zip(cells, (0, 3, 6))
        ]
        sim = GridBatchedSimulator(net, cells)
        flat = sim.run(stopping)
        for g, sl in enumerate(sim.cell_slices):
            assert flat[sl.start : sl.stop] == expected[g], f"cell {g}"

    def test_ragged_batch_sizes(self):
        net = homogeneous_net(8)
        cells = [
            cell(net, "algorithm2", 1, delta_est=None),
            cell(net, "algorithm2", 5, delta_est=None, seed_base=1),
        ]
        stopping = StoppingCondition(max_slots=300, stop_on_full_coverage=True)
        expected = [
            serial_reference(net, c, stopping, seed_base=base)
            for c, base in zip(cells, (0, 1))
        ]
        sim = GridBatchedSimulator(net, cells)
        assert sim.batch_size == 6
        flat = sim.run(stopping)
        for g, sl in enumerate(sim.cell_slices):
            assert flat[sl.start : sl.stop] == expected[g], f"cell {g}"


class TestBudgetEdges:
    """Zero- and one-slot executions must agree with the serial engine."""

    def test_one_slot_budget(self):
        net = homogeneous_net(6)
        c = cell(net, "algorithm2", 3, delta_est=None)
        stopping = StoppingCondition(max_slots=1, stop_on_full_coverage=False)
        expected = serial_reference(net, c, stopping)
        assert GridBatchedSimulator(net, [c]).run(stopping) == expected
        assert all(r.horizon == 1.0 for r in expected)

    def test_zero_links_stop_before_first_slot(self):
        # A single node has no links: coverage is complete at slot 0, so
        # both engines must stop without executing anything.
        rng = np.random.default_rng(3)
        net = build_network(
            topology.clique(1), channels.uniform_random_subsets(1, 3, 2, rng)
        )
        c = cell(net, "algorithm2", 2, delta_est=None)
        stopping = StoppingCondition(max_slots=50, stop_on_full_coverage=True)
        expected = serial_reference(net, c, stopping)
        results = GridBatchedSimulator(net, [c]).run(stopping)
        assert results == expected
        assert all(r.completed for r in results)


class TestInternalBranches:
    """The specialized fast paths and their general fallbacks agree."""

    def test_scalar_size_fast_path_taken_and_equal(self):
        # Homogeneous |A(u)|: the scalar-bound channel draw is used.
        net = homogeneous_net()
        c = cell(net, "algorithm2", 4, delta_est=None)
        sim = GridBatchedSimulator(net, [c])
        assert sim._scalar_size is not None

    def test_scalar_size_none_branch(self):
        # Heterogeneous |A(u)| forces the array-bound draw.
        net = heterogeneous_net()
        c = cell(net, "algorithm2", 4, delta_est=None)
        stopping = StoppingCondition(max_slots=300, stop_on_full_coverage=True)
        sim = GridBatchedSimulator(net, [c])
        assert sim._scalar_size is None
        assert sim.run(stopping) == serial_reference(net, c, stopping)

    def test_shared_offsets_none_branch(self):
        # Different per-cell offsets: no globally shared offset row.
        net = homogeneous_net(8)
        cells = [
            cell(net, "algorithm2", 2, delta_est=None),
            cell(
                net,
                "algorithm2",
                2,
                delta_est=None,
                seed_base=2,
                start_offsets={1: 2},
            ),
        ]
        stopping = StoppingCondition(max_slots=300, stop_on_full_coverage=True)
        sim = GridBatchedSimulator(net, cells)
        assert sim._shared_offsets is None
        expected = [
            serial_reference(net, c, stopping, seed_base=base)
            for c, base in zip(cells, (0, 2))
        ]
        flat = sim.run(stopping)
        for g, sl in enumerate(sim.cell_slices):
            assert flat[sl.start : sl.stop] == expected[g]

    def test_shared_offsets_present_when_uniform(self):
        net = homogeneous_net(8)
        cells = [
            cell(net, "algorithm2", 2, delta_est=None),
            cell(net, "algorithm2", 2, delta_est=None, seed_base=2),
        ]
        assert GridBatchedSimulator(net, cells)._shared_offsets is not None


def pow2_net(n: int = 12):
    """Even node count, |A(u)| = 4 everywhere: raw-pick eligible."""
    rng = np.random.default_rng(21)
    topo = topology.random_geometric(n, 0.6, rng)
    return build_network(topo, channels.uniform_random_subsets(n, 6, 4, rng))


class TestRawPickFastPath:
    """The raw-word channel draw: engaged only when provably identical."""

    def test_engaged_and_byte_identical(self):
        net = pow2_net()
        c = cell(net, "algorithm1", 4)
        stopping = StoppingCondition(max_slots=400, stop_on_full_coverage=True)
        sim = GridBatchedSimulator(net, [c])
        assert sim._raw_shift is not None
        assert sim.run(stopping) == serial_reference(net, c, stopping)

    def test_non_pow2_size_falls_back(self):
        net = homogeneous_net()  # |A(u)| = 3: masked draw has rejection
        sim = GridBatchedSimulator(
            net, [cell(net, "algorithm2", 2, delta_est=None)]
        )
        assert sim._scalar_size == 3
        assert sim._raw_shift is None

    def test_odd_node_count_falls_back(self):
        # An odd draw count leaves a buffered 32-bit half inside the
        # bit generator that raw words cannot replicate.
        rng = np.random.default_rng(23)
        topo = topology.random_geometric(11, 0.6, rng)
        net = build_network(
            topo, channels.uniform_random_subsets(11, 6, 4, rng)
        )
        sim = GridBatchedSimulator(
            net, [cell(net, "algorithm2", 2, delta_est=None)]
        )
        assert sim._scalar_size == 4
        assert sim._raw_shift is None

    def test_verifier_leaves_live_stream_untouched(self):
        from repro.sim.batched import _raw_pick_verified

        g = RngFactory(derive_trial_seed(BASE_SEED, 0)).stream("pick")
        before = g.bit_generator.state
        assert _raw_pick_verified(g, 4, 12)
        assert g.bit_generator.state == before


class TestProfiler:
    """Opt-in profiling: observational, never affects results."""

    def test_disabled_by_default(self):
        net = homogeneous_net(6)
        sim = GridBatchedSimulator(net, [cell(net, "algorithm2", 2, delta_est=None)])
        assert sim.profile() is None

    def test_profile_phases_and_byte_identity(self):
        net = homogeneous_net(6)
        stopping = StoppingCondition(max_slots=200, stop_on_full_coverage=True)
        plain = GridBatchedSimulator(
            net, [cell(net, "algorithm2", 3, delta_est=None)]
        ).run(stopping)
        profiled_sim = GridBatchedSimulator(
            net, [cell(net, "algorithm2", 3, delta_est=None)], profile=True
        )
        assert profiled_sim.run(stopping) == plain
        snap = profiled_sim.profile()
        assert snap is not None
        for phase in ("schedule", "rng", "channel", "reception", "delivery",
                      "result"):
            assert snap[phase]["laps"] >= 1
            assert snap[phase]["seconds"] >= 0.0
        assert abs(sum(p["share"] for p in snap.values()) - 1.0) < 1e-9

    def test_serial_engine_profiler(self):
        net = homogeneous_net(6)
        schedule = _vector_schedule("algorithm2", net, None)
        stopping = StoppingCondition(max_slots=200, stop_on_full_coverage=True)
        plain = FastSlottedSimulator(net, schedule, RngFactory(3)).run(stopping)
        sim = FastSlottedSimulator(net, schedule, RngFactory(3), profile=True)
        assert sim.run(stopping) == plain
        snap = sim.profile()
        assert snap is not None and snap["reception"]["laps"] >= 1


class TestRunnerGridDispatch:
    """run_experiment_grid_batched groups, falls back and stamps."""

    def test_mixed_eligible_and_fallback_entries(self):
        net = homogeneous_net(6)
        seeds = [derive_trial_seed(5, i) for i in range(3)]
        entries = [
            ("algorithm2", seeds, {"max_slots": 2_000}),
            ("algorithm1", seeds, {"max_slots": 2_000, "delta_est": 8}),
            # engine=reference is not grid-eligible: per-trial fallback.
            ("algorithm1", seeds, {"engine": "reference", "delta_est": 8,
                                   "max_slots": 2_000}),
        ]
        per_entry = run_experiment_grid_batched(net, entries)
        for (protocol, entry_seeds, params), results in zip(entries, per_entry):
            expected = [
                run_experiment_trial(
                    net, protocol, seed=s, runner_params=params
                )
                for s in entry_seeds
            ]
            assert results == expected

    def test_stopping_condition_groups_stay_correct(self):
        net = homogeneous_net(6)
        seeds = [derive_trial_seed(5, i) for i in range(2)]
        entries = [
            ("algorithm2", seeds, {"max_slots": 1_000}),
            ("algorithm2", seeds, {"max_slots": 50,
                                   "stop_on_full_coverage": False}),
        ]
        per_entry = run_experiment_grid_batched(net, entries)
        for (protocol, entry_seeds, params), results in zip(entries, per_entry):
            expected = [
                run_experiment_trial(
                    net, protocol, seed=s, runner_params=params
                )
                for s in entry_seeds
            ]
            assert results == expected

    def test_empty_entry_returns_empty(self):
        net = homogeneous_net(5)
        per_entry = run_experiment_grid_batched(
            net, [("algorithm2", [], {"max_slots": 100})]
        )
        assert per_entry == [[]]

    def test_grid_batchable_predicate(self):
        assert grid_batchable("algorithm2", {"max_slots": 10})
        assert grid_batchable("algorithm3", {"delta_est": 9})
        assert not grid_batchable("algorithm4", {})
        assert not grid_batchable("algorithm2", {"engine": "reference"})
        assert not grid_batchable("algorithm2", {"universal_channels": None})


class TestParallelGridDispatch:
    """run_grid_spec_trials: chunked, pooled, byte-identical."""

    PARAMS = {"max_slots": 3_000, "delta_est": None}

    def _network(self):
        return homogeneous_net(6)

    def _serial(self, net, trials):
        return run_spec_trials(
            net,
            "algorithm2",
            trials=trials,
            base_seed=21,
            runner_params=self.PARAMS,
            backend="serial",
        )

    @pytest.mark.parametrize("batch_size", [1, 4, 32])
    def test_matches_per_spec_serial(self, batch_size):
        net = self._network()
        entries = [
            ("algorithm2", 7, self.PARAMS),
            ("algorithm2", 3, {**self.PARAMS, "erasure_prob": 0.15}),
        ]
        per_entry = run_grid_spec_trials(
            net, entries, base_seed=21, batch_size=batch_size
        )
        assert per_entry[0] == self._serial(net, 7)
        expected_b = run_spec_trials(
            net,
            "algorithm2",
            trials=3,
            base_seed=21,
            runner_params={**self.PARAMS, "erasure_prob": 0.15},
            backend="serial",
        )
        assert per_entry[1] == expected_b

    def test_pooled_matches_serial_dispatch(self):
        net = self._network()
        entries = [("algorithm2", 6, self.PARAMS)]
        serial_dispatch = run_grid_spec_trials(net, entries, base_seed=21)
        pooled = run_grid_spec_trials(
            net, entries, base_seed=21, max_workers=2, chunk_size=2
        )
        assert pooled == serial_dispatch

    def test_progress_callback_fires_per_entry(self):
        net = self._network()
        seen = []
        run_grid_spec_trials(
            net,
            [("algorithm2", 5, self.PARAMS), ("algorithm2", 2, self.PARAMS)],
            base_seed=21,
            batch_size=2,
            on_progress=lambda j, done, total: seen.append((j, done, total)),
        )
        assert (0, 5, 5) in seen and (1, 2, 2) in seen
        firsts = [e for e in seen if e[0] == 0]
        assert firsts == sorted(firsts, key=lambda e: e[1])

    def test_rejects_empty_grid_and_bad_trials(self):
        net = self._network()
        with pytest.raises(ConfigurationError, match="at least one"):
            run_grid_spec_trials(net, [])
        with pytest.raises(ConfigurationError, match="trials"):
            run_grid_spec_trials(net, [("algorithm2", 0, self.PARAMS)])


class TestBatchGridFusion:
    """run_batch fuses same-network vectorized specs; archives agree."""

    WORKLOAD = WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 6},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )

    def _specs(self):
        return [
            ExperimentSpec(
                name="base",
                workload=self.WORKLOAD,
                protocol="algorithm2",
                trials=5,
                runner_params={"max_slots": 5_000, "delta_est": None},
            ),
            ExperimentSpec(
                name="erased",
                workload=self.WORKLOAD,
                protocol="algorithm2",
                trials=5,
                runner_params={
                    "max_slots": 5_000,
                    "delta_est": None,
                    "erasure_prob": 0.2,
                },
            ),
            ExperimentSpec(
                name="alg3",
                workload=self.WORKLOAD,
                protocol="algorithm3",
                trials=3,
                runner_params={"max_slots": 5_000, "delta_est": 12},
            ),
        ]

    def test_specs_group_for_vectorized_backend_only(self):
        specs = self._specs()
        assert _grid_groups(specs, "vectorized") == [[0, 1, 2]]
        assert _grid_groups(specs, "serial") == []
        assert _grid_groups(specs, "process") == []

    def test_network_seed_splits_groups(self):
        specs = self._specs()
        moved = ExperimentSpec(
            name="other_net",
            workload=self.WORKLOAD,
            protocol="algorithm2",
            trials=2,
            network_seed=9,
            runner_params={"max_slots": 5_000, "delta_est": None},
        )
        assert _grid_groups([*specs, moved], "vectorized") == [[0, 1, 2]]

    @pytest.mark.parametrize("batch_size", [1, 4, 32])
    def test_archives_byte_identical_to_serial(self, tmp_path, batch_size):
        specs = self._specs()
        run_batch(specs, base_seed=77, output_dir=tmp_path / "serial",
                  backend="serial")
        run_batch(specs, base_seed=77, output_dir=tmp_path / "grid",
                  backend="vectorized", batch_size=batch_size)
        for name in ("base", "erased", "alg3", "manifest"):
            serial = (tmp_path / "serial" / f"{name}.json").read_bytes()
            grid = (tmp_path / "grid" / f"{name}.json").read_bytes()
            assert grid == serial, name

    def test_progress_reports_per_experiment(self):
        seen = []
        run_batch(
            self._specs(),
            base_seed=77,
            backend="vectorized",
            on_progress=lambda name, done, total: seen.append(
                (name, done, total)
            ),
        )
        names = {name for name, _, _ in seen}
        assert names == {"base", "erased", "alg3"}
        assert ("alg3", 3, 3) in seen


class TestGridValidation:
    def test_needs_at_least_one_cell(self):
        net = homogeneous_net(5)
        with pytest.raises(ConfigurationError, match="at least one cell"):
            GridBatchedSimulator(net, [])

    def test_cell_needs_factories(self):
        net = homogeneous_net(5)
        bad = GridCell(
            schedule=_vector_schedule("algorithm2", net, None),
            rng_factories=[],
        )
        with pytest.raises(ConfigurationError, match="RngFactory"):
            GridBatchedSimulator(net, [bad])

    def test_cell_schedule_must_cover_network(self):
        net = homogeneous_net(5)
        other = _vector_schedule("algorithm2", homogeneous_net(6), None)
        bad = GridCell(schedule=other, rng_factories=[RngFactory(0)])
        with pytest.raises(ConfigurationError, match="covers"):
            GridBatchedSimulator(net, [bad])

    def test_cell_erasure_range(self):
        net = homogeneous_net(5)
        bad = cell(net, "algorithm2", 1, delta_est=None, erasure_prob=1.0)
        with pytest.raises(ConfigurationError, match="erasure_prob"):
            GridBatchedSimulator(net, [bad])
