"""Tests for DiscoveryResult JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SimulationError
from repro.net import build_network, channels, topology
from repro.sim.results import DiscoveryResult, load_result, result_from_dict
from repro.sim.runner import run_synchronous


def sample_result():
    return DiscoveryResult(
        time_unit="slots",
        coverage={(0, 1): 5.0, (1, 0): None},
        horizon=50.0,
        completed=False,
        neighbor_tables={0: {1: frozenset({2, 3})}, 1: {}},
        start_times={0: 0.0, 1: 3.0},
        network_params={"N": 2, "S": 2},
        metadata={"protocol": "algorithm3", "weird": object()},
    )


class TestRoundTrip:
    def test_basic_roundtrip(self):
        original = sample_result()
        restored = result_from_dict(original.to_dict())
        assert restored.coverage == original.coverage
        assert restored.neighbor_tables == original.neighbor_tables
        assert restored.start_times == original.start_times
        assert restored.completed == original.completed
        assert restored.horizon == original.horizon

    def test_non_json_metadata_stringified(self):
        data = sample_result().to_dict()
        json.dumps(data)  # must be JSON-clean
        assert isinstance(data["metadata"]["weird"], str)

    def test_file_roundtrip(self, tmp_path):
        original = sample_result()
        path = tmp_path / "result.json"
        original.save(path)
        restored = load_result(path)
        assert restored.coverage == original.coverage

    def test_engine_result_roundtrip(self, tmp_path):
        net = build_network(topology.clique(4), channels.homogeneous(4, 2))
        result = run_synchronous(
            net, "algorithm3", seed=0, max_slots=20_000, delta_est=8
        )
        path = tmp_path / "run.json"
        result.save(path)
        restored = load_result(path)
        assert restored.completed
        assert restored.coverage == result.coverage
        assert restored.neighbor_tables == result.neighbor_tables
        assert restored.summary() == result.summary()

    def test_unknown_version_rejected(self):
        data = sample_result().to_dict()
        data["format_version"] = 99
        with pytest.raises(SimulationError, match="version"):
            result_from_dict(data)
