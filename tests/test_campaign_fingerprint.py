"""Fingerprint semantics: campaign identity is inputs, only inputs.

The dedup store, the checkpoint journals and the ``m2hew fingerprint``
command all key on the same digest, so these tests pin its contract:

* identical campaign inputs produce the identical digest — however the
  request is phrased (CLI, service request, raw specs) and whoever
  submits it (``client`` is quota accounting, not identity);
* changing any single input — one trial more, a different seed, a
  fault plan, protocol order — produces a distinct digest;
* execution knobs (workers, backend, chunking) are *not* inputs: the
  digest has no parameters for them, and archives for one digest are
  byte-identical regardless of them (``test_parallel.py`` and the CI
  smoke jobs pin the byte side);
* the journal header pins the digest, so a checkpoint can never resume
  a campaign it does not belong to.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience.checkpoint import campaign_fingerprint
from repro.service.campaigns import CampaignRequest, campaign_specs, request_fingerprint
from repro.sim.batch import batch_fingerprint, run_batch, spec_fingerprint

BASE = dict(
    scenario="single_common_channel",
    protocols=("algorithm3",),
    trials=2,
    max_slots=50_000,
)


def fingerprint_of(**overrides):
    kwargs = dict(BASE)
    kwargs.update(overrides)
    return request_fingerprint(CampaignRequest(**kwargs))


class TestIdentity:
    def test_identical_inputs_identical_digest(self):
        assert fingerprint_of() == fingerprint_of()

    def test_client_is_not_identity(self):
        # Quota accounting only — identical campaigns dedup across clients.
        assert fingerprint_of(client="alice") == fingerprint_of(client="bob")

    def test_request_and_specs_agree(self):
        request = CampaignRequest(**BASE)
        specs = campaign_specs(request)
        assert request_fingerprint(request) == batch_fingerprint(
            specs, request.base_seed
        )

    def test_digest_is_hex_sha256(self):
        digest = fingerprint_of()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_canonical_json_payload(self):
        # campaign_fingerprint canonicalizes: key insertion order is
        # irrelevant, so equal payloads hash equal however built.
        forward = campaign_fingerprint({"a": 1, "b": [2, 3]})
        backward = campaign_fingerprint(
            json.loads('{"b": [2, 3], "a": 1}')
        )
        assert forward == backward


class TestDistinctness:
    @pytest.mark.parametrize(
        "change",
        [
            {"trials": 3},
            {"base_seed": 1},
            {"network_seed": 1},
            {"max_slots": 60_000},
            {"delta_est": 4},
            {"faults": "jamming_light"},
            {"protocols": ("algorithm1",)},
            {"protocols": ("algorithm3", "algorithm1")},
            {"scenario": "rural_sparse"},
        ],
    )
    def test_any_single_input_change_changes_digest(self, change):
        assert fingerprint_of(**change) != fingerprint_of()

    def test_fault_selector_hashes_by_resolved_plan(self):
        # The digest covers the *resolved* fault plan, not the selector
        # string: on a scenario without a plan, "scenario" and "none"
        # describe the same campaign; on one with a plan they differ.
        assert fingerprint_of(faults="none") == fingerprint_of(faults="scenario")
        jammed = dict(BASE, scenario="jammed_urban")
        with_plan = fingerprint_of(**dict(jammed, faults="scenario"))
        without = fingerprint_of(**dict(jammed, faults="none"))
        assert with_plan != without

    def test_protocol_order_is_identity(self):
        # Spec order fixes manifest order, hence archived bytes.
        forward = fingerprint_of(protocols=("algorithm1", "algorithm3"))
        backward = fingerprint_of(protocols=("algorithm3", "algorithm1"))
        assert forward != backward

    def test_spec_fingerprint_varies_per_experiment(self):
        request = CampaignRequest(
            **{**BASE, "protocols": ("algorithm1", "algorithm3")}
        )
        specs = campaign_specs(request)
        digests = {spec_fingerprint(s, request.base_seed) for s in specs}
        assert len(digests) == len(specs)

    def test_base_seed_reaches_spec_fingerprint(self):
        request = CampaignRequest(**BASE)
        (spec,) = campaign_specs(request)
        assert spec_fingerprint(spec, 0) != spec_fingerprint(spec, 1)


class TestExecutionKnobsAreNotIdentity:
    def test_digest_has_no_execution_parameters(self):
        # The fingerprint functions take campaign inputs only — there is
        # nothing to pass for workers/backend/chunking, by construction.
        request = CampaignRequest(**BASE)
        specs = campaign_specs(request)
        before = batch_fingerprint(specs, request.base_seed)
        run_batch(specs, base_seed=request.base_seed, max_workers=2, chunk_size=1)
        # Executing (with any knobs) cannot perturb the digest.
        assert batch_fingerprint(specs, request.base_seed) == before


class TestJournalPinning:
    def test_checkpoint_refuses_foreign_campaign(self, tmp_path):
        request = CampaignRequest(**BASE)
        specs = campaign_specs(request)
        ckpt = tmp_path / "ckpt"
        run_batch(
            specs,
            base_seed=request.base_seed,
            output_dir=tmp_path / "out",
            checkpoint_dir=ckpt,
        )
        # Rerunning the same campaign against its journal is fine...
        run_batch(
            specs,
            base_seed=request.base_seed,
            output_dir=tmp_path / "out2",
            checkpoint_dir=ckpt,
        )
        # ...but a different base seed is a different campaign: the
        # journal's pinned fingerprint refuses it.
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_batch(
                specs,
                base_seed=request.base_seed + 1,
                output_dir=tmp_path / "out3",
                checkpoint_dir=ckpt,
            )


class TestCliFingerprintCommand:
    def test_plain_and_json_agree_with_library(self, capsys):
        from repro.cli import main

        args = [
            "fingerprint",
            "single_common_channel",
            "--protocols",
            "algorithm3",
            "--trials",
            "2",
            "--max-slots",
            "50000",
        ]
        assert main(args) == 0
        plain = capsys.readouterr().out.strip()
        assert plain == fingerprint_of()
        assert main(args + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fingerprint"] == plain
        assert payload["request"]["scenario"] == "single_common_channel"

    def test_batch_announces_same_fingerprint(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "batch",
                "single_common_channel",
                "--protocols",
                "algorithm3",
                "--trials",
                "2",
                "--max-slots",
                "50000",
                "--output",
                str(tmp_path / "out"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert f"campaign fingerprint: {fingerprint_of()}" in err
