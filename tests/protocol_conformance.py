"""Shared harness for the protocol-conformance suite.

``test_protocol_conformance.py`` parametrizes one set of behavioral
contracts over *every* protocol the registry lists — registering a new
protocol in :data:`repro.core.registry.PROTOCOL_SPECS` enrolls it here
with no further wiring. This module holds the pieces the tests share:
a standard conformance network, registry-driven factory/parameter
construction, and a tiny hand-rolled two-node exchange used to observe
a protocol's slot decisions and table updates directly (without an
engine in between).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.base import Mode, SlotDecision, SynchronousProtocol
from repro.core.registry import PROTOCOL_SPECS, ProtocolSpec, make_sync_factory
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.rng import RngFactory

#: Every synchronous registry entry — the conformance parametrization.
SYNC_SPECS: Tuple[ProtocolSpec, ...] = tuple(
    spec for spec in PROTOCOL_SPECS if spec.kind == "sync"
)

SYNC_NAMES: Tuple[str, ...] = tuple(spec.name for spec in SYNC_SPECS)

#: Degree bound handed to protocols that need one (>= the conformance
#: network's true max degree).
DELTA_EST = 4

#: Generous slot budget: enough for the slowest registered protocol
#: (mcdis rendezvous on heterogeneous sets) on the conformance network.
MAX_SLOTS = 20_000


def conformance_network() -> M2HeWNetwork:
    """4-node clique with heterogeneous channel sets and a shared
    channel 0 — every pair overlaps, so every protocol can finish."""
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 1, 2})),
        NodeSpec(2, frozenset({0, 2})),
        NodeSpec(3, frozenset({0, 1, 2, 3})),
    ]
    adjacency = [(a, b) for a in range(4) for b in range(a + 1, 4)]
    return M2HeWNetwork(nodes, adjacency=adjacency)


def universal_channels(network: M2HeWNetwork) -> List[int]:
    return sorted(network.universal_channel_set)


def id_space_size(network: M2HeWNetwork) -> int:
    return max(network.node_ids) + 1


def build_protocol(
    spec: ProtocolSpec,
    network: M2HeWNetwork,
    node_id: int,
    rng,
) -> SynchronousProtocol:
    """One protocol instance for ``node_id``, parameters off the spec."""
    factory = make_sync_factory(
        spec.name,
        delta_est=DELTA_EST,
        universal_channels=universal_channels(network),
        id_space_size=id_space_size(network),
    )
    return factory(node_id, network.channels_of(node_id), rng)


def node_stream(seed: int, node_id: int, *, warm_streams: int = 0):
    """The per-node stream a protocol would be handed, from a fresh
    factory; ``warm_streams`` unrelated streams are drawn first (stream
    isolation means they must not matter)."""
    factory = RngFactory(seed)
    for k in range(warm_streams):
        factory.stream(f"conformance-warmup:{k}").random(17)
    return factory.node_stream(node_id)


def decision_trace(
    protocol: SynchronousProtocol, slots: int
) -> List[Tuple[str, Optional[int]]]:
    """The protocol's decision sequence with no receptions, as data."""
    trace = []
    for slot in range(slots):
        decision = protocol.decide_slot(slot)
        trace.append((decision.mode.value, decision.channel))
    return trace


def run_pair_exchange(
    spec: ProtocolSpec,
    network: M2HeWNetwork,
    seed: int,
    slots: int,
    node_a: int = 0,
    node_b: int = 1,
) -> Tuple[SynchronousProtocol, SynchronousProtocol, List[int]]:
    """Drive two nodes slot-by-slot with ideal channels, by hand.

    Returns both protocol instances plus the per-slot neighbor-count
    history of ``node_a`` (for monotonicity checks). Delivery follows
    the engine's rule: a hello lands iff exactly one of the pair
    transmits on the channel the other is listening on.
    """
    factory = RngFactory(seed)
    proto_a = build_protocol(spec, network, node_a, factory.node_stream(node_a))
    proto_b = build_protocol(spec, network, node_b, factory.node_stream(node_b))
    history = []
    for slot in range(slots):
        da = proto_a.decide_slot(slot)
        db = proto_b.decide_slot(slot)
        _deliver(proto_a, da, proto_b, db, slot)
        _deliver(proto_b, db, proto_a, da, slot)
        history.append(len(proto_a.neighbor_table))
    return proto_a, proto_b, history


def _deliver(
    listener: SynchronousProtocol,
    listener_decision: SlotDecision,
    speaker: SynchronousProtocol,
    speaker_decision: SlotDecision,
    slot: int,
) -> None:
    if (
        listener_decision.mode is Mode.LISTEN
        and speaker_decision.mode is Mode.TRANSMIT
        and listener_decision.channel == speaker_decision.channel
    ):
        listener.on_receive(
            speaker.hello(), float(slot), channel=speaker_decision.channel
        )


def assert_valid_decision(
    protocol: SynchronousProtocol, decision: SlotDecision
) -> None:
    """Model invariants every decision must satisfy (§II)."""
    assert decision.mode in (Mode.TRANSMIT, Mode.LISTEN, Mode.QUIET)
    if decision.mode is Mode.QUIET:
        assert decision.channel is None
    else:
        assert decision.channel in protocol.channels
