"""Unit tests for Algorithm 2 (GrowingEstimateSyncDiscovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm2 import GrowingEstimateSyncDiscovery
from repro.core.params import stage_length


def make(channels=(0, 1), seed=0):
    return GrowingEstimateSyncDiscovery(0, channels, np.random.default_rng(seed))


class TestSchedule:
    def test_estimate_starts_at_two(self):
        p = make()
        assert p.current_estimate(0) == 2

    def test_stage_boundaries(self):
        p = make()
        # d=2: 1 slot; d=3: 2 slots; d=4: 2 slots; d=5: 3 slots ...
        expected = []
        for d in (2, 3, 4, 5):
            expected.extend([d] * stage_length(d))
        got = [p.current_estimate(i) for i in range(len(expected))]
        assert got == expected

    def test_schedule_position_slot_in_stage(self):
        p = make()
        # slot 0 -> (2, 1); slots 1,2 -> (3, 1..2); slots 3,4 -> (4, 1..2)
        assert p.schedule_position(0) == (2, 1)
        assert p.schedule_position(1) == (3, 1)
        assert p.schedule_position(2) == (3, 2)
        assert p.schedule_position(3) == (4, 1)
        assert p.schedule_position(4) == (4, 2)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            make().schedule_position(-1)

    def test_identical_across_nodes(self):
        # The schedule must be common knowledge: identical for all nodes
        # regardless of their channel sets or randomness.
        a = make(channels=(0,), seed=1)
        b = make(channels=tuple(range(7)), seed=99)
        for slot in range(200):
            assert a.schedule_position(slot) == b.schedule_position(slot)

    def test_probability_formula(self):
        p = make(channels=(0, 1, 2, 3))  # |A| = 4
        # slot 0: stage d=2, i=1 -> min(1/2, 4/2) = 1/2
        assert p.transmit_probability(0) == pytest.approx(0.5)
        # find a deep slot: estimate d=17 has stage length 5; its last
        # slot has i=5 -> p = min(1/2, 4/32) = 1/8
        first = GrowingEstimateSyncDiscovery.slots_until_estimate(17)
        assert p.schedule_position(first + 4) == (17, 5)
        assert p.transmit_probability(first + 4) == pytest.approx(4 / 32)

    def test_slots_until_estimate(self):
        assert GrowingEstimateSyncDiscovery.slots_until_estimate(2) == 0
        assert GrowingEstimateSyncDiscovery.slots_until_estimate(3) == 1
        assert GrowingEstimateSyncDiscovery.slots_until_estimate(5) == 5

    def test_slots_until_estimate_invalid(self):
        with pytest.raises(ValueError):
            GrowingEstimateSyncDiscovery.slots_until_estimate(1)


class TestBehavior:
    def test_decisions_valid(self):
        from repro.core.base import Mode

        p = make()
        for slot in range(300):
            d = p.decide_slot(slot)
            assert d.mode in (Mode.TRANSMIT, Mode.LISTEN)
            assert d.channel in p.channels

    def test_boundary_binary_search_random_access(self):
        # Jumping to a far slot without visiting earlier ones must work.
        p = make()
        d, i = p.schedule_position(10_000)
        assert d >= 2
        assert 1 <= i <= stage_length(d)
