"""Unit tests for repro.analysis.tables."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table, format_value
from repro.exceptions import ConfigurationError


class TestFormatValue:
    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_integral_float_trimmed(self):
        assert format_value(5.0) == "5"

    def test_float_digits(self):
        assert format_value(3.14159, float_digits=2) == "3.14"

    def test_scientific_for_extremes(self):
        assert "e" in format_value(1234567.89)
        assert "e" in format_value(0.00001)

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table([{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_missing_cells_render_dash(self):
        out = format_table([{"a": 1}, {"b": 2}])
        assert "-" in out.splitlines()[2]

    def test_column_order_respected(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = out.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_title(self):
        out = format_table([{"a": 1}], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([])
