"""Property-based tests (hypothesis) for the M2HeW network model."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.net import M2HeWNetwork, NodeSpec


@st.composite
def networks(draw):
    """Random small symmetric M2HeW networks."""
    n = draw(st.integers(min_value=2, max_value=8))
    universe = draw(st.integers(min_value=1, max_value=6))
    nodes = []
    for nid in range(n):
        size = draw(st.integers(min_value=1, max_value=universe))
        chans = draw(
            st.sets(
                st.integers(min_value=0, max_value=universe - 1),
                min_size=size,
                max_size=size,
            )
        )
        nodes.append(NodeSpec(nid, frozenset(chans)))
    pairs = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] < p[1]),
            max_size=n * (n - 1) // 2,
        )
    )
    return M2HeWNetwork(nodes, adjacency=sorted(pairs))


class TestModelInvariants:
    @given(networks())
    @settings(max_examples=150, deadline=None)
    def test_span_ratio_within_paper_range(self, network):
        # Paper Section II: span-ratio of any link lies in [1/S, 1].
        s = network.max_channel_set_size
        for link in network.links():
            assert 1.0 / s - 1e-12 <= link.span_ratio <= 1.0 + 1e-12

    @given(networks())
    @settings(max_examples=150, deadline=None)
    def test_links_symmetric(self, network):
        keys = {l.key for l in network.links()}
        assert {(b, a) for a, b in keys} == keys

    @given(networks())
    @settings(max_examples=150, deadline=None)
    def test_span_is_channel_intersection(self, network):
        for link in network.links():
            expected = network.channels_of(link.transmitter) & network.channels_of(
                link.receiver
            )
            assert link.span == expected

    @given(networks())
    @settings(max_examples=150, deadline=None)
    def test_degree_consistent_with_links(self, network):
        for nid in network.node_ids:
            for c in network.channels_of(nid):
                neighbors = network.neighbors_on(nid, c)
                for v in neighbors:
                    assert c in network.span(v, nid)
                assert network.degree_on(nid, c) == len(neighbors)

    @given(networks())
    @settings(max_examples=150, deadline=None)
    def test_max_degree_is_max_over_channels(self, network):
        computed = 0
        for nid in network.node_ids:
            for c in network.channels_of(nid):
                computed = max(computed, network.degree_on(nid, c))
        assert network.max_degree == computed

    @given(networks())
    @settings(max_examples=150, deadline=None)
    def test_validate_never_raises_on_constructed(self, network):
        network.validate()

    @given(networks())
    @settings(max_examples=100, deadline=None)
    def test_serialization_roundtrip(self, network):
        from repro.net import network_from_dict, network_to_dict

        restored = network_from_dict(network_to_dict(network))
        assert restored.node_ids == network.node_ids
        assert {l.key for l in restored.links()} == {
            l.key for l in network.links()
        }
        for nid in network.node_ids:
            assert restored.channels_of(nid) == network.channels_of(nid)

    @given(networks())
    @settings(max_examples=100, deadline=None)
    def test_restriction_preserves_spans(self, network):
        keep = network.node_ids[: max(1, len(network.node_ids) // 2)]
        sub = network.restricted_to(keep)
        for link in sub.links():
            assert link.span == network.span(link.transmitter, link.receiver)
