"""Tests for the repo's static-analysis subsystem (repro.devtools)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import (
    Finding,
    lint_paths,
    lint_source,
)
from repro.devtools.rules import all_rules, rules_by_id, select_rules

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Path that places a fixture inside a simulation-critical package, so
#: the D-series rules apply.
SIM_PATH = "src/repro/sim/_fixture.py"
#: Path inside the package but outside the sim-critical subset.
ANALYSIS_PATH = "src/repro/analysis/_fixture.py"
#: Path outside the repro package entirely.
SCRIPT_PATH = "scripts/fixture.py"


def check(source: str, path: str = SIM_PATH, rule: str = None) -> list:
    rules = select_rules([rule]) if rule else None
    return lint_source(textwrap.dedent(source), path, rules=rules)


def rule_ids(findings) -> set:
    return {f.rule_id for f in findings}


class TestRegistry:
    def test_all_series_present(self):
        ids = {rule.rule_id for rule in all_rules()}
        assert {"D101", "D102", "D103", "D104", "D105", "D106", "D107"} <= ids
        assert {"M201", "M202", "M203"} <= ids
        assert {"Q301", "Q302", "Q303", "Q304"} <= ids

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.rule_id and rule.title and rule.rationale

    def test_select_unknown_rule(self):
        with pytest.raises(KeyError):
            select_rules(["Z999"])

    def test_select_is_case_insensitive(self):
        (rule,) = select_rules(["d102"])
        assert rule.rule_id == "D102"


class TestD101BannedRandomImport:
    def test_flags_import(self):
        assert "D101" in rule_ids(check("import random\n", rule="D101"))

    def test_flags_from_import(self):
        assert "D101" in rule_ids(check("from random import choice\n", rule="D101"))

    def test_clean_outside_sim_packages(self):
        assert not check("import random\n", path=ANALYSIS_PATH, rule="D101")

    def test_other_imports_pass(self):
        assert not check("import numpy as np\n", rule="D101")


class TestD102DefaultRng:
    BAD = """
    import numpy as np

    def build(seed):
        return np.random.default_rng(seed)
    """
    GOOD = """
    from repro.sim.rng import make_generator

    def build(seed):
        return make_generator(seed)
    """

    def test_flags_default_rng(self):
        assert "D102" in rule_ids(check(self.BAD, rule="D102"))

    def test_factory_passes(self):
        assert not check(self.GOOD, rule="D102")

    def test_clean_outside_sim_packages(self):
        assert not check(self.BAD, path=SCRIPT_PATH, rule="D102")


class TestD103LegacyGlobalNumpyRandom:
    def test_flags_module_level_draw(self):
        src = """
        import numpy as np

        def jitter(xs, rng):
            np.random.shuffle(xs)
        """
        assert "D103" in rule_ids(check(src, rule="D103"))

    def test_constructors_pass(self):
        src = """
        import numpy as np

        def build(seed):
            return np.random.Generator(np.random.PCG64(seed))
        """
        assert not check(src, rule="D103")


class TestD104WallClock:
    def test_flags_time_time(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        assert "D104" in rule_ids(check(src, rule="D104"))

    def test_flags_datetime_now(self):
        src = """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
        assert "D104" in rule_ids(check(src, rule="D104"))

    def test_clean_in_analysis(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        assert not check(src, path=ANALYSIS_PATH, rule="D104")


class TestD105RngParameter:
    def test_flags_drawing_function_without_rng(self):
        src = """
        def sample(values):
            from repro.sim.rng import make_generator
            g = make_generator()
            return g.choice(values)
        """
        assert "D105" in rule_ids(check(src, rule="D105"))

    def test_rng_parameter_passes(self):
        src = """
        def sample(values, rng):
            return rng.choice(values)
        """
        assert not check(src, rule="D105")

    def test_seed_parameter_passes(self):
        src = """
        from repro.sim.rng import make_generator

        def sample(values, seed):
            return make_generator(seed).choice(values)
        """
        assert not check(src, rule="D105")

    def test_private_function_exempt(self):
        src = """
        def _sample(values):
            return values.rng.choice(values)
        """
        assert not check(src, rule="D105")


class TestD106DocstringDrift:
    def test_flags_default_rng_example(self):
        src = '''
        """Module.

        Example::

            rng = np.random.default_rng(7)
        """
        '''
        assert "D106" in rule_ids(check(src, rule="D106"))

    def test_factory_example_passes(self):
        src = '''
        """Module.

        Example::

            from repro.sim.rng import make_generator
            rng = make_generator(7)
        """
        '''
        assert not check(src, rule="D106")

    def test_non_repro_file_exempt(self):
        src = '''
        """rng = np.random.default_rng(7)"""
        '''
        assert not check(src, path=SCRIPT_PATH, rule="D106")


class TestD107DensePerSlotAllocation:
    def test_flags_dense_alloc_in_run_slot(self):
        src = """
        import numpy as np

        class Engine:
            def _run_slot(self, t, n, c):
                return np.zeros((c, n, n), dtype=np.float32)
        """
        assert "D107" in rule_ids(check(src, rule="D107"))

    def test_attribute_dims_flagged(self):
        src = """
        import numpy as np

        class Engine:
            def _run_slot(self, t):
                return np.empty((self._n, self._n))
        """
        assert "D107" in rule_ids(check(src, rule="D107"))

    def test_linear_alloc_passes(self):
        src = """
        import numpy as np

        class Engine:
            def _run_slot(self, t, n, c):
                return np.zeros((c, n), dtype=np.float32)
        """
        assert not check(src, rule="D107")

    def test_outside_hot_path_passes(self):
        src = """
        import numpy as np

        class Engine:
            def __init__(self, n, c):
                self._aud = np.zeros((c, n, n), dtype=np.float32)
        """
        assert not check(src, rule="D107")

    def test_non_sim_package_exempt(self):
        src = """
        import numpy as np

        def _run_slot(n):
            return np.zeros((n, n))
        """
        assert not check(src, path=ANALYSIS_PATH, rule="D107")

    def test_pragma_disables(self):
        src = """
        import numpy as np

        class Engine:
            def _run_slot(self, t, n):
                return np.zeros((n, n))  # lint: disable=D107
        """
        assert not check(src, rule="D107")


class TestM201TableMutation:
    BAD = """
    from repro.core.base import SynchronousProtocol

    class Cheater(SynchronousProtocol):
        def decide_slot(self, local_slot):
            self._table.record_hello(None, 0.0)
            return None
    """
    GOOD = """
    from repro.core.base import SynchronousProtocol

    class Honest(SynchronousProtocol):
        def on_receive(self, message, heard_at, channel=None):
            return self._table.record_hello(message, heard_at, channel)

        def decide_slot(self, local_slot):
            known = self._table.neighbor_ids()
            return len(known)
    """

    def test_flags_mutation_in_decide_slot(self):
        assert "M201" in rule_ids(check(self.BAD, rule="M201"))

    def test_sanctioned_hooks_pass(self):
        assert not check(self.GOOD, rule="M201")

    def test_rebinding_table_flagged(self):
        src = """
        from repro.core.base import SynchronousProtocol

        class Rebinder(SynchronousProtocol):
            def decide_slot(self, local_slot):
                self._table = None
        """
        assert "M201" in rule_ids(check(src, rule="M201"))

    def test_non_protocol_class_exempt(self):
        src = """
        class Bookkeeper:
            def tick(self):
                self._table.update({})
        """
        assert not check(src, rule="M201")


class TestM202LiteralProbability:
    def test_flags_literal_return(self):
        src = """
        from repro.core.base import SynchronousProtocol

        class Fixed(SynchronousProtocol):
            def transmit_probability(self, local_slot):
                return 0.3
        """
        assert "M202" in rule_ids(check(src, rule="M202"))

    def test_derived_probability_passes(self):
        src = """
        from repro.core.base import SynchronousProtocol

        class Derived(SynchronousProtocol):
            def transmit_probability(self, local_slot):
                return min(0.5, self.channel_count / float(self._delta_est))
        """
        assert not check(src, rule="M202")

    def test_zero_and_one_allowed(self):
        src = """
        class Edge:
            def transmit_probability(self, local_slot):
                if local_slot == 0:
                    return 0
                return 1
        """
        assert not check(src, rule="M202")


class TestM203OwnRandomSource:
    def test_flags_protocol_building_generator(self):
        src = """
        import numpy as np
        from repro.core.base import SynchronousProtocol

        class Rogue(SynchronousProtocol):
            def decide_slot(self, local_slot):
                rng = np.random.default_rng(local_slot)
                return rng.random()
        """
        assert "M203" in rule_ids(check(src, rule="M203"))

    def test_injected_stream_passes(self):
        src = """
        from repro.core.base import SynchronousProtocol

        class Good(SynchronousProtocol):
            def decide_slot(self, local_slot):
                return self._rng.random()
        """
        assert not check(src, rule="M203")


class TestQ301MutableDefault:
    def test_flags_list_default(self):
        assert "Q301" in rule_ids(
            check("def f(xs=[]):\n    return xs\n", rule="Q301")
        )

    def test_flags_dict_call_default(self):
        assert "Q301" in rule_ids(
            check("def f(xs=dict()):\n    return xs\n", rule="Q301")
        )

    def test_flags_kwonly_default(self):
        assert "Q301" in rule_ids(
            check("def f(*, xs={}):\n    return xs\n", rule="Q301")
        )

    def test_none_default_passes(self):
        assert not check("def f(xs=None):\n    return xs\n", rule="Q301")

    def test_frozenset_default_passes(self):
        assert not check(
            "def f(xs=frozenset({1})):\n    return xs\n", rule="Q301"
        )


class TestQ302BareExcept:
    def test_flags_bare_except(self):
        src = """
        def f():
            try:
                return 1
            except:
                return 2
        """
        assert "Q302" in rule_ids(check(src, rule="Q302"))

    def test_typed_except_passes(self):
        src = """
        def f():
            try:
                return 1
            except ValueError:
                return 2
        """
        assert not check(src, rule="Q302")


class TestQ303MissingAll:
    def test_flags_missing_symbol(self):
        src = """
        __all__ = ["visible"]

        def visible():
            pass

        def hidden_but_public():
            pass
        """
        findings = check(src, rule="Q303")
        assert "hidden_but_public" in findings[0].message

    def test_flags_module_without_all(self):
        src = """
        def visible():
            pass
        """
        findings = check(src, rule="Q303")
        assert findings and "no __all__" in findings[0].message

    def test_follows_append(self):
        src = """
        __all__ = ["first"]

        def first():
            pass

        def second():
            pass

        __all__.append("second")
        """
        assert not check(src, rule="Q303")

    def test_underscore_names_exempt(self):
        src = """
        __all__ = []

        def _private():
            pass
        """
        assert not check(src, rule="Q303")

    def test_non_repro_file_exempt(self):
        src = """
        def anything():
            pass
        """
        assert not check(src, path=SCRIPT_PATH, rule="Q303")


class TestQ304CauseDroppingBroadExcept:
    BAD = """
    def f():
        try:
            return work()
        except Exception:
            raise RuntimeError("work failed")
    """

    def test_flags_cause_dropping_reraise(self):
        findings = check(self.BAD, rule="Q304")
        assert "Q304" in rule_ids(findings)

    def test_flags_broad_base_exception(self):
        src = """
        def f():
            try:
                return work()
            except BaseException:
                raise RuntimeError("work failed")
        """
        assert "Q304" in rule_ids(check(src, rule="Q304"))

    def test_chained_raise_passes(self):
        src = """
        def f():
            try:
                return work()
            except Exception as exc:
                raise RuntimeError("work failed") from exc
        """
        assert not check(src, rule="Q304")

    def test_wrapper_referencing_cause_passes(self):
        # The supervisor idiom: the caught exception is folded into the
        # raised expression, so the cause travels even without ``from``.
        src = """
        def f():
            try:
                return work()
            except Exception as exc:
                raise _wrap_failure(exc, context="campaign")
        """
        assert not check(src, rule="Q304")

    def test_bare_reraise_passes(self):
        src = """
        def f():
            try:
                return work()
            except Exception:
                cleanup()
                raise
        """
        assert not check(src, rule="Q304")

    def test_narrow_except_passes(self):
        src = """
        def f():
            try:
                return work()
            except ValueError:
                raise RuntimeError("bad value")
        """
        assert not check(src, rule="Q304")

    def test_nested_function_not_attributed_to_handler(self):
        src = """
        def f():
            try:
                return work()
            except Exception:
                def fallback():
                    raise RuntimeError("inner")
                return fallback
        """
        assert not check(src, rule="Q304")

    def test_nested_handler_judged_on_its_own(self):
        # The inner handler chains; the outer one never raises. Neither
        # should be flagged — the walk must not leak raises across
        # handler boundaries.
        src = """
        def f():
            try:
                return work()
            except Exception:
                try:
                    return retry()
                except Exception as exc:
                    raise RuntimeError("retry failed") from exc
        """
        assert not check(src, rule="Q304")

    def test_clean_outside_sim_critical_packages(self):
        assert not check(self.BAD, path=ANALYSIS_PATH, rule="Q304")

    def test_pragma_suppresses(self):
        src = """
        def f():
            try:
                return work()
            except Exception:
                raise RuntimeError("work failed")  # lint: disable=Q304
        """
        assert not check(src, rule="Q304")


class TestPragmas:
    def test_line_pragma_suppresses(self):
        src = "import random  # lint: disable=D101\n"
        assert not check(src, rule="D101")

    def test_line_pragma_is_rule_specific(self):
        src = "import random  # lint: disable=D104\n"
        assert "D101" in rule_ids(check(src, rule="D101"))

    def test_file_pragma_suppresses_everywhere(self):
        src = """
        # lint: disable=Q303
        def visible():
            pass
        """
        assert not check(src, rule="Q303")

    def test_pragma_accepts_multiple_ids(self):
        src = "import random  # lint: disable=D104, D101\n"
        assert not check(src, rule="D101")


class TestEngine:
    def test_lint_paths_counts_files(self, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n")
        (tmp_path / "bad.py").write_text("def f(\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert len(report.errors) == 1
        assert not report.ok

    def test_findings_sorted_and_serializable(self, tmp_path):
        target = tmp_path / "src" / "repro" / "sim" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\nimport time\n\nT = time.time()\n")
        report = lint_paths([tmp_path])
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        payload = json.loads(report.to_json())
        assert payload["files_checked"] == 1
        assert all("rule" in f for f in payload["findings"])

    def test_finding_format(self):
        f = Finding("D101", "x.py", 3, 0, "msg")
        assert f.format_text() == "x.py:3:0: D101 msg"


class TestShippedTree:
    def test_src_is_clean(self):
        report = lint_paths([REPO_ROOT / "src"])
        assert report.findings == []
        assert report.errors == []

    def test_tests_are_clean(self):
        report = lint_paths([REPO_ROOT / "tests"])
        assert report.findings == []


class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_flags_violation(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "D101" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n")
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "D101"

    def test_rule_filter(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "core" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n")
        assert main(["lint", "--rule", "Q302", str(tmp_path)]) == 0

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rule", "Z999", "src"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in rules_by_id():
            assert rule in out
