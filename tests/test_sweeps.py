"""Unit tests for repro.analysis.sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweeps import grid_points, run_sweep
from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.runner import run_synchronous


class TestGridPoints:
    def test_cartesian_product(self):
        points = grid_points(a=(1, 2), b=("x", "y"))
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_single_axis(self):
        assert grid_points(n=(5,)) == [{"n": 5}]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_points()


class TestRunSweep:
    @pytest.fixture
    def net(self):
        topo = topology.clique(5)
        return build_network(topo, channels.homogeneous(5, 2))

    def trial(self, net):
        def fn(point, seed):
            return run_synchronous(
                net,
                "algorithm3",
                seed=seed,
                max_slots=20_000,
                delta_est=point["delta_est"],
            )

        return fn

    def test_rows_per_point(self, net):
        rows = run_sweep(
            [{"delta_est": 4}, {"delta_est": 32}],
            self.trial(net),
            trials=3,
            base_seed=1,
        )
        assert len(rows) == 2
        assert all(len(r.results) == 3 for r in rows)
        assert all(r.completed_fraction == 1.0 for r in rows)

    def test_larger_delta_est_is_slower(self, net):
        # Algorithm 3's time is linear in delta_est once it exceeds 2S:
        # a big sweep gap must show in the means.
        rows = run_sweep(
            [{"delta_est": 4}, {"delta_est": 64}],
            self.trial(net),
            trials=5,
            base_seed=2,
        )
        assert rows[0].mean_completion() < rows[1].mean_completion()

    def test_seeds_stable_under_extension(self, net):
        rows_a = run_sweep([{"delta_est": 4}], self.trial(net), trials=2, base_seed=3)
        rows_b = run_sweep(
            [{"delta_est": 4}, {"delta_est": 8}], self.trial(net), trials=2, base_seed=3
        )
        assert [r.completion_time for r in rows_a[0].results] == [
            r.completion_time for r in rows_b[0].results
        ]

    def test_as_row(self, net):
        rows = run_sweep([{"delta_est": 4}], self.trial(net), trials=2, base_seed=1)
        row = rows[0].as_row()
        assert row["delta_est"] == 4
        assert row["trials"] == 2
        assert "mean_time" in row

    def test_validation(self, net):
        with pytest.raises(ConfigurationError):
            run_sweep([], self.trial(net), trials=1, base_seed=0)
        with pytest.raises(ConfigurationError):
            run_sweep([{}], self.trial(net), trials=0, base_seed=0)
