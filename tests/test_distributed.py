"""Tests for the lease-based distributed executor.

The invariant under test throughout: sharding a campaign over queue
workers — including worker crashes, lease-expiry races and double
completions — may change *where* and *when* trials execute, never what
they compute. Every recovered run here must serialize identically to a
plain serial run of the same seeds.

Workers are driven deterministically through the supervisor's injected
``sleep`` hook (:class:`WorkerPump`): each coordinator sleep lets every
live in-process worker heartbeat and take one queue step, and — where a
test needs lease TTLs to elapse — advances a fake monotonic clock that
``repro.resilience.distributed._monotonic`` is patched to.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro.resilience.distributed as distributed_module
from repro.exceptions import ConfigurationError
from repro.resilience import (
    LeasePolicy,
    QueueWorker,
    RetryPolicy,
    WorkQueue,
    load_sidecar,
    parse_chaos_spec,
    run_supervised_trials,
    run_worker,
    verify_archive,
)
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.parallel import run_spec_trials
from repro.workloads.generator import WorkloadConfig, generate_network

PARAMS = {"delta_est": 4, "max_slots": 30_000}
FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)
#: Short cadences so TTL tests need only a handful of fake-clock ticks.
FAST_LEASE = LeasePolicy(lease_ttl=5.0, heartbeat_interval=1.0, poll_interval=0.01)


def small_workload() -> WorkloadConfig:
    return WorkloadConfig(
        topology="clique",
        topology_params={"num_nodes": 5},
        channel_model="homogeneous",
        channel_params={"num_channels": 2},
    )


@pytest.fixture(scope="module")
def network():
    return generate_network(small_workload(), seed=0)


@pytest.fixture(scope="module")
def reference(network):
    """Fail-fast serial results every sharded run must reproduce exactly."""
    results = run_spec_trials(
        network, "algorithm1", trials=6, base_seed=7, runner_params=PARAMS
    )
    return [r.to_dict() for r in results]


def _dicts(outcome):
    return [r.to_dict() for _, r in outcome.results_in_order()]


class FakeClock:
    """Controllable stand-in for ``time.monotonic`` (starts well past 0)."""

    def __init__(self) -> None:
        self.now = 1000.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class WorkerPump:
    """Coordinator ``sleep`` hook that interleaves in-process workers.

    One call = one scheduling round: an optional per-tick hook runs
    first (ghost claims, ghost heartbeats), the fake clock advances,
    then every live worker heartbeats and takes one step. A worker
    whose step reports ``killed`` (worker-kill chaos) stops being
    pumped, like a crashed process stops heartbeating.
    """

    def __init__(self, workers, *, clock=None, tick=1.0, on_tick=None):
        self.workers = list(workers)
        self.clock = clock
        self.tick = tick
        self.on_tick = on_tick
        self.dead = set()
        self.ticks = 0

    def __call__(self, _delay: float) -> None:
        self.ticks += 1
        if self.ticks > 10_000:
            raise AssertionError("distributed run failed to converge")
        if self.on_tick is not None:
            self.on_tick()
        if self.clock is not None:
            self.clock.advance(self.tick)
        for worker in self.workers:
            if worker.worker_id in self.dead:
                continue
            worker.heartbeat()
            status = worker.step()
            if status is not None and status.endswith("killed"):
                self.dead.add(worker.worker_id)


def start_workers(queue, *worker_ids, **kwargs):
    """Workers with their liveness already announced (as real ones are)."""
    workers = [QueueWorker(queue, wid, **kwargs) for wid in worker_ids]
    for worker in workers:
        worker.heartbeat()
    return workers


class TestLeasePolicy:
    def test_defaults_valid(self):
        LeasePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_ttl": 0.0},
            {"heartbeat_interval": -1.0},
            {"poll_interval": 0.0},
        ],
    )
    def test_nonpositive_rejected(self, kwargs):
        with pytest.raises(ConfigurationError, match="must be > 0"):
            LeasePolicy(**kwargs)

    def test_ttl_must_exceed_heartbeat(self):
        with pytest.raises(ConfigurationError, match="must exceed"):
            LeasePolicy(lease_ttl=1.0, heartbeat_interval=1.0)


class TestLoadSidecar:
    def test_missing_file(self, tmp_path):
        assert load_sidecar(tmp_path / "absent.json") is None

    def test_valid_round_trip(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps({"kind": "lease", "chunk": 3}))
        assert load_sidecar(path) == {"kind": "lease", "chunk": 3}

    def test_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"kind": "lease", "chu')
        assert load_sidecar(path) is None

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert load_sidecar(path) is None

    def test_non_dict_document(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert load_sidecar(path) is None

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_bytes(b"\xff\xfe\x00junk")
        assert load_sidecar(path) is None


class TestWorkQueue:
    def test_schema_mismatch_rejected(self, tmp_path):
        (tmp_path / "queue.json").write_text(
            json.dumps({"kind": "queue", "schema_version": 999})
        )
        with pytest.raises(ConfigurationError, match="schema_version"):
            WorkQueue(tmp_path)

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path)
        task_id = queue.publish_task(
            {"kind": "task", "schema_version": 1, "experiment": "e", "chunks": [[0]]}
        )
        assert queue.claim(task_id, 0, "a", 0)
        assert not queue.claim(task_id, 0, "b", 0)
        queue.release(task_id, 0)
        assert queue.claim(task_id, 0, "b", 0)

    def test_claim_blocked_by_torn_lease(self, tmp_path):
        # A lease file torn mid-write still blocks rival claims (the
        # O_EXCL create already happened) but reads as absent.
        queue = WorkQueue(tmp_path)
        task_id = queue.publish_task(
            {"kind": "task", "schema_version": 1, "experiment": "e", "chunks": [[0]]}
        )
        queue.marker_path(task_id, 0, "lease").write_text('{"kind": "lea')
        assert queue.read_marker(task_id, 0, "lease") is None
        assert not queue.claim(task_id, 0, "b", 0)

    def test_publish_is_idempotent_and_retracts_stale(self, tmp_path):
        queue = WorkQueue(tmp_path)
        old = queue.publish_task(
            {"kind": "task", "schema_version": 1, "experiment": "e", "chunks": [[0]]}
        )
        assert queue.write_marker(old, 0, "done", {"kind": "done"})
        same = queue.publish_task(
            {"kind": "task", "schema_version": 1, "experiment": "e", "chunks": [[0]]}
        )
        assert same == old  # identical payload reuses the task + markers
        assert queue.read_marker(old, 0, "done") is not None
        fresh = queue.publish_task(
            {"kind": "task", "schema_version": 1, "experiment": "e", "chunks": [[0], [1]]}
        )
        assert fresh != old
        assert queue.list_tasks() == [fresh]  # stale same-experiment gone

    def test_marker_write_refused_after_retract(self, tmp_path):
        queue = WorkQueue(tmp_path)
        task_id = queue.publish_task(
            {"kind": "task", "schema_version": 1, "experiment": "e", "chunks": [[0]]}
        )
        queue.retract_task(task_id)
        assert not queue.write_marker(task_id, 0, "done", {"kind": "done"})
        assert not queue.state_dir(task_id).exists()

    def test_torn_worker_heartbeat_reads_as_absent(self, tmp_path):
        queue = WorkQueue(tmp_path)
        (queue.workers_dir / "w1.json").write_text('{"beat": ')
        assert queue.read_worker("w1") is None
        assert queue.list_workers() == ["w1"]


class TestDistributedSupervised:
    def test_backend_requires_queue_dir(self, network):
        with pytest.raises(ConfigurationError, match="queue directory"):
            run_supervised_trials(
                network,
                "algorithm1",
                trials=2,
                base_seed=7,
                runner_params=PARAMS,
                backend="distributed",
            )

    def test_no_workers_degrades_to_local(self, network, reference, tmp_path):
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
        )
        assert outcome.complete
        assert any(e.kind == "degrade_local" for e in outcome.events)
        assert _dicts(outcome) == reference
        # Clean completion retracts the task from the shared queue.
        assert WorkQueue(tmp_path).list_tasks() == []

    def test_two_workers_split_chunks_identically(
        self, network, reference, tmp_path
    ):
        queue = WorkQueue(tmp_path)
        alpha, beta = start_workers(queue, "alpha", "beta")
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=2,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
            sleep=WorkerPump([alpha, beta]),
        )
        assert outcome.complete
        assert not any(e.kind == "degrade_local" for e in outcome.events)
        assert alpha.executed + beta.executed == 3
        assert _dicts(outcome) == reference

    def test_double_completion_is_identical(self, network, reference, tmp_path):
        # The lease-race drill: the moment one worker claims a chunk, a
        # rival executes the very same chunk (as if it had reclaimed an
        # expired lease while the owner was still alive). Both complete;
        # the archive cannot tell, because resolution is by trial index
        # and both result sets are byte-identical by determinism.
        queue = WorkQueue(tmp_path)
        races = []

        def rival_executes_same_chunk(task_id: str, chunk_no: int) -> None:
            if races:  # race only the first claim
                return
            task = queue.read_task(task_id)
            races.append((task_id, chunk_no))
            rival._execute(task_id, task, chunk_no, 0)

        (victim,) = start_workers(
            queue, "victim", on_claimed=rival_executes_same_chunk
        )
        (rival,) = start_workers(queue, "rival")
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=2,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
            sleep=WorkerPump([victim]),
        )
        assert outcome.complete
        assert races  # the rival really did double-execute a chunk
        assert rival.executed >= 1 and victim.executed >= 1
        assert victim.executed + rival.executed > 3  # more work than chunks
        assert _dicts(outcome) == reference

    def test_worker_kill_reclaim_resume(
        self, network, reference, tmp_path, monkeypatch
    ):
        # doomed claims the chunk holding trial 0, dies with the lease
        # held and stops heartbeating. The coordinator must observe a
        # full TTL of silence, reclaim the lease, and let the survivor
        # resume the chunk — with byte-identical output.
        clock = FakeClock()
        monkeypatch.setattr(distributed_module, "_monotonic", clock)
        queue = WorkQueue(tmp_path)
        doomed, survivor = start_workers(queue, "doomed", "survivor")
        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=2,
            chaos=parse_chaos_spec("worker-kill@0"),
            policy=FAST_RETRY,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
            sleep=WorkerPump([doomed, survivor], clock=clock),
        )
        assert outcome.complete
        kinds = [e.kind for e in outcome.events]
        assert "lease_reclaim" in kinds
        assert "retry" in kinds  # reclamation spends the retry budget
        assert survivor.executed >= 1
        assert _dicts(outcome) == reference

    def test_torn_lease_reclaimed_by_ttl(
        self, network, reference, tmp_path, monkeypatch
    ):
        # A claimant that died between the O_EXCL create and the payload
        # write leaves an unreadable lease that blocks claims; the
        # coordinator treats it as an anonymous lease and TTL-reclaims.
        clock = FakeClock()
        monkeypatch.setattr(distributed_module, "_monotonic", clock)
        queue = WorkQueue(tmp_path)
        (worker,) = start_workers(queue, "w1")
        torn = []

        def tear_first_lease() -> None:
            if torn:
                return
            tasks = queue.list_tasks()
            if tasks:
                queue.marker_path(tasks[0], 0, "lease").write_text("{tor")
                torn.append(tasks[0])

        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=2,
            policy=FAST_RETRY,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
            sleep=WorkerPump([worker], clock=clock, on_tick=tear_first_lease),
        )
        assert outcome.complete
        assert torn
        assert any(e.kind == "lease_reclaim" for e in outcome.events)
        assert _dicts(outcome) == reference

    def test_lease_steal_chaos(self, network, reference, tmp_path):
        # A ghost holds the lease on chunk 0; lease-steal chaos rips it
        # away immediately (no TTL wait) and a live worker finishes it.
        queue = WorkQueue(tmp_path)
        (worker,) = start_workers(queue, "w1")
        claimed = []

        def ghost_claims_chunk0() -> None:
            if claimed:
                return
            tasks = queue.list_tasks()
            if tasks and queue.claim(tasks[0], 0, "ghost", 0):
                claimed.append(tasks[0])

        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=2,
            chaos=parse_chaos_spec("lease-steal@0"),
            policy=FAST_RETRY,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
            sleep=WorkerPump([worker], on_tick=ghost_claims_chunk0),
        )
        assert outcome.complete
        assert claimed
        assert any(e.kind == "lease_steal" for e in outcome.events)
        assert _dicts(outcome) == reference

    def test_stale_heartbeat_chaos(self, network, reference, tmp_path):
        # The ghost heartbeats like a healthy worker but never finishes
        # its chunk; stale-heartbeat chaos forces the reclamation path
        # that real wall-clock staleness would eventually take.
        queue = WorkQueue(tmp_path)
        (worker,) = start_workers(queue, "w1")
        ghost_state = {"claimed": False, "beat": 0}

        def ghost_claims_and_beats() -> None:
            ghost_state["beat"] += 1
            queue.heartbeat(
                "ghost",
                {"kind": "heartbeat", "worker": "ghost", "beat": ghost_state["beat"]},
            )
            if not ghost_state["claimed"]:
                tasks = queue.list_tasks()
                if tasks and queue.claim(tasks[0], 0, "ghost", 0):
                    ghost_state["claimed"] = True

        outcome = run_supervised_trials(
            network,
            "algorithm1",
            trials=6,
            base_seed=7,
            runner_params=PARAMS,
            chunk_size=2,
            chaos=parse_chaos_spec("stale-heartbeat@0"),
            policy=FAST_RETRY,
            queue_dir=tmp_path,
            lease=FAST_LEASE,
            sleep=WorkerPump([worker], on_tick=ghost_claims_and_beats),
        )
        assert outcome.complete
        assert ghost_state["claimed"]
        assert any(
            e.kind == "lease_reclaim" and "chaos" in e.detail
            for e in outcome.events
        )
        assert _dicts(outcome) == reference

    def test_unserializable_runner_param_rejected(self, network, tmp_path):
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            run_supervised_trials(
                network,
                "algorithm1",
                trials=2,
                base_seed=7,
                runner_params={**PARAMS, "bad": object()},
                queue_dir=tmp_path,
                lease=FAST_LEASE,
            )


def _archive_bytes(directory):
    return {
        p.name: p.read_bytes() for p in sorted(directory.glob("*.json"))
    }


class TestBatchDistributed:
    def test_sharded_archive_byte_identical_to_serial(self, tmp_path):
        # End-to-end with real run_worker loops on real time: two worker
        # threads drain the queue while run_batch coordinates; the
        # archive must be byte-for-byte the serial archive.
        specs = [
            ExperimentSpec(
                name="clique_algorithm1",
                workload=small_workload(),
                protocol="algorithm1",
                trials=4,
                runner_params=PARAMS,
            )
        ]
        serial_dir = tmp_path / "serial"
        run_batch(specs, base_seed=11, output_dir=serial_dir)

        queue_dir = tmp_path / "queue"
        lease = LeasePolicy(
            lease_ttl=5.0, heartbeat_interval=0.2, poll_interval=0.02
        )
        WorkQueue(queue_dir)  # pre-create so workers and batch share it
        threads = [
            threading.Thread(
                target=run_worker,
                args=(queue_dir,),
                kwargs=dict(
                    worker_id=f"thread-{i}",
                    lease=lease,
                    idle_exit=1.5,
                    hard_exit=False,
                    sleep=time.sleep,
                ),
                daemon=True,
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        sharded_dir = tmp_path / "sharded"
        try:
            run_batch(
                specs,
                base_seed=11,
                output_dir=sharded_dir,
                backend="distributed",
                chunk_size=1,
                retry=FAST_RETRY,
                queue_dir=queue_dir,
                lease=lease,
            )
        finally:
            for t in threads:
                t.join(timeout=30)
        assert verify_archive(sharded_dir).ok
        assert _archive_bytes(sharded_dir) == _archive_bytes(serial_dir)
