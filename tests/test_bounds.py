"""Unit tests for repro.core.bounds (the paper's closed forms)."""

from __future__ import annotations

import math

import pytest

from repro.core import bounds
from repro.exceptions import ConfigurationError


class TestEventBounds:
    def test_eq3(self):
        assert bounds.pr_transmit_event_alg1(4, 8) == pytest.approx(1 / 16)
        assert bounds.pr_transmit_event_alg1(10, 2) == pytest.approx(1 / 20)

    def test_eq4(self):
        assert bounds.pr_listen_event(3) == pytest.approx(1 / 6)

    def test_eq5(self):
        assert bounds.pr_no_interference_event() == 0.25

    def test_eq6(self):
        # rho / (16 max(S, Delta))
        assert bounds.stage_coverage_alg1(4, 8, 0.5) == pytest.approx(
            0.5 / (16 * 8)
        )

    def test_eq9(self):
        assert bounds.pr_transmit_event_alg3(4, 16) == pytest.approx(1 / 16)
        assert bounds.pr_transmit_event_alg3(16, 4) == pytest.approx(1 / 32)

    def test_invalid_core_params(self):
        with pytest.raises(ConfigurationError):
            bounds.stage_coverage_alg1(0, 1, 0.5)
        with pytest.raises(ConfigurationError):
            bounds.stage_coverage_alg1(1, 0, 0.5)
        with pytest.raises(ConfigurationError):
            bounds.stage_coverage_alg1(1, 1, 0.0)
        with pytest.raises(ConfigurationError):
            bounds.stage_coverage_alg1(1, 1, 1.5)


class TestTheorem1:
    def test_stage_budget_formula(self):
        s, d, rho, n, eps = 4, 8, 0.5, 20, 0.1
        expected = math.ceil((16 * 8 / 0.5) * math.log(400 / 0.1))
        assert bounds.theorem1_stage_budget(s, d, rho, n, eps) == expected

    def test_slot_budget_multiplies_stage_length(self):
        stages = bounds.theorem1_stage_budget(4, 8, 0.5, 20, 0.1)
        assert bounds.theorem1_slot_budget(4, 8, 0.5, 20, 0.1, 16) == stages * 4

    def test_monotone_in_epsilon(self):
        tight = bounds.theorem1_stage_budget(4, 8, 0.5, 20, 0.01)
        loose = bounds.theorem1_stage_budget(4, 8, 0.5, 20, 0.5)
        assert tight > loose

    def test_population_validated(self):
        with pytest.raises(ConfigurationError):
            bounds.theorem1_stage_budget(4, 8, 0.5, 1, 0.1)
        with pytest.raises(ConfigurationError):
            bounds.theorem1_stage_budget(4, 8, 0.5, 20, 0.0)


class TestTheorem2:
    def test_stage_budget_adds_delta(self):
        m = bounds.theorem1_stage_budget(4, 8, 0.5, 20, 0.1)
        assert bounds.theorem2_stage_budget(4, 8, 0.5, 20, 0.1) == 8 + m

    def test_slot_budget_counts_growing_stages(self):
        stages = bounds.theorem2_stage_budget(2, 2, 1.0, 4, 0.5)
        slots = bounds.theorem2_slot_budget(2, 2, 1.0, 4, 0.5)
        # Each stage has ceil(log2 d) slots with d = 2 .. 2 + stages - 1.
        from repro.core.params import stage_length

        assert slots == sum(stage_length(d) for d in range(2, 2 + stages))

    def test_alg2_pays_log_factor_over_alg1(self):
        # Theorem 2's O(M log M) must exceed Theorem 1's M stages.
        m1 = bounds.theorem1_stage_budget(4, 8, 0.5, 20, 0.1)
        slots2 = bounds.theorem2_slot_budget(4, 8, 0.5, 20, 0.1)
        assert slots2 > m1


class TestTheorem3:
    def test_slot_budget_formula(self):
        s, de, rho, n, eps = 4, 16, 0.5, 20, 0.1
        per_slot = rho / (8 * max(2 * s, de))
        assert bounds.theorem3_slot_budget(s, de, rho, n, eps) == math.ceil(
            math.log(400 / 0.1) / per_slot
        )

    def test_no_stage_factor(self):
        # With a tight delta_est, Theorem 3 beats Theorem 1 (no log factor).
        t1 = bounds.theorem1_slot_budget(4, 8, 1.0, 20, 0.1, delta_est=8)
        t3 = bounds.theorem3_slot_budget(4, 8, 1.0, 20, 0.1)
        assert t3 < t1


class TestAsyncBounds:
    def test_lemma4(self):
        assert bounds.lemma4_max_overlap() == 3
        assert bounds.lemma4_drift_threshold() == pytest.approx(1 / 3)

    def test_lemma5(self):
        assert bounds.lemma5_pair_coverage(4, 4, 1.0) == pytest.approx(
            1.0 / (8 * 12)
        )
        # 2S dominates when S is large.
        assert bounds.lemma5_pair_coverage(10, 2, 1.0) == pytest.approx(
            1.0 / (8 * 20)
        )

    def test_lemma6_budget(self):
        per_pair = bounds.lemma5_pair_coverage(4, 4, 0.5)
        expected = math.ceil(math.log(100 / 0.1) / per_pair)
        assert bounds.lemma6_pair_budget(4, 4, 0.5, 10, 0.1) == expected

    def test_lemma7_threshold(self):
        assert bounds.lemma7_drift_threshold() == pytest.approx(1 / 7)

    def test_theorem9_is_six_times_lemma6(self):
        l6 = bounds.lemma6_pair_budget(4, 4, 0.5, 10, 0.1)
        assert bounds.theorem9_frame_budget(4, 4, 0.5, 10, 0.1) == 6 * l6

    def test_theorem10_realtime(self):
        frames = bounds.theorem9_frame_budget(4, 4, 1.0, 10, 0.1)
        bound = bounds.theorem10_realtime_bound(4, 4, 1.0, 10, 0.1, 2.0, 0.1)
        assert bound == pytest.approx((frames + 1) * 2.0 / 0.9)

    def test_theorem10_enforces_assumption1(self):
        with pytest.raises(ConfigurationError, match="Assumption 1"):
            bounds.theorem10_realtime_bound(4, 4, 1.0, 10, 0.1, 1.0, 0.3)


class TestSummary:
    def test_keys(self):
        summary = bounds.summary(4, 8, 0.5, 20, 0.1, 16)
        assert set(summary) == {
            "theorem1_slots",
            "theorem2_slots",
            "theorem3_slots",
            "theorem9_frames",
            "theorem10_realtime",
        }
        assert all(v > 0 for v in summary.values())
