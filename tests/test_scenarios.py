"""Unit tests for repro.workloads.scenarios."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.scenarios import SCENARIOS, scenario, scenario_names


class TestRegistry:
    def test_names_sorted_and_nonempty(self):
        names = scenario_names()
        assert names == sorted(names)
        assert len(names) >= 5

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            scenario("atlantis")

    def test_all_scenarios_build(self):
        for name in scenario_names():
            s = scenario(name)
            network = s.build(seed=0)
            assert network.num_nodes > 1
            assert network.num_links > 0
            assert s.delta_est >= 2
            assert 0 < s.epsilon < 1

    def test_builds_deterministic(self):
        s = scenario("urban_dense")
        a, b = s.build(seed=3), s.build(seed=3)
        assert all(a.channels_of(n) == b.channels_of(n) for n in a.node_ids)

    def test_delta_est_is_valid_upper_bound(self):
        # The recommended delta_est must actually bound the realized
        # max degree for the default seeds used in benchmarks.
        for name in scenario_names():
            s = scenario(name)
            for seed in (0, 1, 2):
                network = s.build(seed=seed)
                assert network.max_degree <= s.delta_est, (name, seed)

    def test_single_common_channel_shape(self):
        s = scenario("single_common_channel")
        network = s.build(seed=0)
        # Universal set much larger than any available set.
        assert len(network.universal_channel_set) > 4 * network.max_channel_set_size
        for link in network.links():
            assert len(link.span) == 1

    def test_adversarial_rho(self):
        s = scenario("adversarial_heterogeneous")
        network = s.build(seed=0)
        assert network.min_span_ratio == pytest.approx(1 / 6)
