"""Tests for the robustness degradation-curve analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.robustness import (
    RobustnessPoint,
    degradation_curve,
    degradation_table,
    is_monotone_non_improving,
    rediscovery_delays,
)
from repro.exceptions import ConfigurationError
from repro.faults import FaultPlan, FixedWindows, JammingBursts
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.runner import run_synchronous


def pair_net() -> M2HeWNetwork:
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 1})),
    ]
    return M2HeWNetwork(nodes, adjacency=[(0, 1)])


def jam_trial(intensity: float, seed: np.random.SeedSequence):
    net = pair_net()
    faults = None
    if intensity > 0:
        faults = FaultPlan(
            models=(JammingBursts.from_duty_cycle(intensity, mean_burst=20.0),)
        )
    return run_synchronous(
        net, "algorithm2", seed=seed, max_slots=2000, faults=faults
    )


class TestDegradationCurve:
    def test_curve_shape_and_table(self):
        points = degradation_curve(
            [0.0, 0.3, 0.8], jam_trial, trials=4, base_seed=1
        )
        assert [p.intensity for p in points] == [0.0, 0.3, 0.8]
        assert all(len(p.results) == 4 for p in points)
        rows = degradation_table(points)
        assert [r["intensity"] for r in rows] == [0.0, 0.3, 0.8]
        assert all(
            {"trials", "completed", "mean_coverage", "mean_time"} <= set(r)
            for r in rows
        )

    def test_jamming_intensity_is_monotone_non_improving(self):
        points = degradation_curve(
            [0.0, 0.5, 0.9], jam_trial, trials=6, base_seed=2
        )
        assert is_monotone_non_improving(points)
        # Heavier jamming really does cost time on this tiny net.
        assert points[-1].mean_censored_time > points[0].mean_censored_time

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            degradation_curve([], jam_trial, trials=3, base_seed=0)
        with pytest.raises(ConfigurationError):
            degradation_curve([0.1], jam_trial, trials=0, base_seed=0)

    def test_monotone_check_rejects_improvement(self):
        def fake(intensity, coverage, time):
            return RobustnessPoint(
                intensity=intensity,
                results=[],
                mean_coverage=coverage,
                mean_censored_time=time,
                completed_fraction=1.0,
            )

        good = [fake(0.0, 1.0, 100.0), fake(0.5, 0.9, 150.0)]
        assert is_monotone_non_improving(good)
        faster = [fake(0.0, 1.0, 100.0), fake(0.5, 1.0, 50.0)]
        assert not is_monotone_non_improving(faster)
        better_cov = [fake(0.0, 0.5, 100.0), fake(0.5, 0.9, 100.0)]
        assert not is_monotone_non_improving(better_cov)


class TestRediscoveryDelays:
    def test_delay_after_blocker_departs(self):
        net = pair_net()
        plan = FaultPlan(
            models=(JammingBursts(FixedWindows(((0.0, 100.0),))),)
        )
        result = run_synchronous(
            net, "algorithm2", seed=3, max_slots=2000, faults=plan
        )
        delays = rediscovery_delays(result)
        # One OFF flip per jammed channel (both end at slot 100);
        # everything is covered only afterwards, so delays are defined
        # and positive.
        assert len(delays) == 2
        assert all(d is not None and d > 0 for d in delays)

    def test_fault_free_result_yields_empty(self):
        result = run_synchronous(
            pair_net(), "algorithm2", seed=3, max_slots=2000
        )
        assert rediscovery_delays(result) == []
