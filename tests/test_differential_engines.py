"""Differential tests: independent implementations must agree.

Two cross-checks guard against silent divergence:

* **engine vs engine** — the vectorized ``FastSlottedSimulator`` and the
  object-per-node reference ``slotted`` engine implement the same
  protocols independently; over many seeds their mean completion slot
  must agree within a combined confidence interval (they consume
  randomness differently, so per-seed equality is not expected);
* **parallel vs serial** — the process-pool campaign executor must be a
  pure dispatch optimization: byte-identical archives, trial for trial;
* **batched vs reference** — the trial-batched vectorized engine must
  agree statistically with the object-per-node reference engine, the
  same Welch-CI check the fast engine passes (byte-level agreement with
  the *fast* engine is pinned separately in ``test_batched_engine.py``);
* **fallback vs serial** — protocols without a vectorized schedule
  (``mcdis``, the baselines) must route through the batched entry point
  to results byte-identical with the serial trial loop, and must refuse
  ``engine="fast"`` loudly rather than run wrong.

Engine-vs-engine comparisons cover :data:`VECTORIZED_SYNC_PROTOCOLS`
(registry-derived — a protocol registered as vectorized is enrolled here
automatically); the identity/fallback checks cover every registered
synchronous protocol.
"""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.net import M2HeWNetwork, NodeSpec, build_network, channels, topology
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.parallel import run_spec_trials
from repro.sim.rng import derive_trial_seed
from repro.sim.runner import (
    SYNC_PROTOCOLS,
    VECTORIZED_SYNC_PROTOCOLS,
    experiment_runner_params,
    run_experiment_trial,
    run_experiment_trials_batched,
    run_synchronous,
)

SEEDS = 30
BASE_SEED = 1234

NON_VECTORIZED = tuple(
    p for p in SYNC_PROTOCOLS if p not in VECTORIZED_SYNC_PROTOCOLS
)


def diff_net() -> M2HeWNetwork:
    """5-node clique, 2 homogeneous channels — completes fast under
    every registered protocol on both engines."""
    topo = topology.clique(5)
    return build_network(topo, channels.homogeneous(5, 2))


def diff_params(net, protocol, delta_est=8, max_slots=100_000):
    """Registry-driven runner params (degree bound, baseline extras)."""
    return experiment_runner_params(
        protocol, net, delta_est=delta_est, max_slots=max_slots
    )


def completion_times(net, protocol, engine, delta_est):
    times = []
    params = diff_params(net, protocol, delta_est=delta_est)
    for t in range(SEEDS):
        result = run_synchronous(
            net,
            protocol,
            seed=derive_trial_seed(BASE_SEED, t),
            engine=engine,
            **params,
        )
        assert result.completed, (protocol, engine, t)
        times.append(float(result.completion_time))
    return times


def batched_completion_times(net, protocol, delta_est):
    seeds = [derive_trial_seed(BASE_SEED, t) for t in range(SEEDS)]
    results = run_experiment_trials_batched(
        net,
        protocol,
        seeds,
        runner_params=diff_params(net, protocol, delta_est=delta_est),
    )
    for t, result in enumerate(results):
        assert result.completed, (protocol, "batched", t)
    return [float(r.completion_time) for r in results]


def mean_std(xs):
    m = sum(xs) / len(xs)
    var = sum((x - m) ** 2 for x in xs) / (len(xs) - 1)
    return m, math.sqrt(var)


@pytest.mark.slow
class TestEnginesAgreeStatistically:
    @pytest.mark.parametrize("protocol", VECTORIZED_SYNC_PROTOCOLS)
    def test_mean_completion_within_ci(self, protocol):
        net = diff_net()
        delta_est = 8
        fast = completion_times(net, protocol, "fast", delta_est)
        ref = completion_times(net, protocol, "reference", delta_est)
        mf, sf = mean_std(fast)
        mr, sr = mean_std(ref)
        # Welch CI at ~3 sigma: generous enough to be deterministic-safe
        # (seeds are fixed), tight enough to catch a semantics drift —
        # e.g. an off-by-one slot origin shifts the mean by ~1 while the
        # combined standard error here is a few slots.
        stderr = math.sqrt(sf**2 / len(fast) + sr**2 / len(ref))
        assert abs(mf - mr) <= 3.0 * stderr + 1e-9, (
            f"{protocol}: fast mean {mf:.2f} vs reference mean {mr:.2f} "
            f"(3*stderr = {3 * stderr:.2f})"
        )

    @pytest.mark.parametrize("protocol", VECTORIZED_SYNC_PROTOCOLS)
    def test_batched_mean_completion_within_ci(self, protocol):
        net = diff_net()
        delta_est = 8
        batched = batched_completion_times(net, protocol, delta_est)
        ref = completion_times(net, protocol, "reference", delta_est)
        mb, sb = mean_std(batched)
        mr, sr = mean_std(ref)
        stderr = math.sqrt(sb**2 / len(batched) + sr**2 / len(ref))
        assert abs(mb - mr) <= 3.0 * stderr + 1e-9, (
            f"{protocol}: batched mean {mb:.2f} vs reference mean {mr:.2f} "
            f"(3*stderr = {3 * stderr:.2f})"
        )

    @pytest.mark.parametrize("protocol", VECTORIZED_SYNC_PROTOCOLS)
    def test_both_engines_full_coverage_tables(self, protocol):
        net = diff_net()
        for engine in ("fast", "reference"):
            result = run_synchronous(
                net,
                protocol,
                seed=derive_trial_seed(BASE_SEED, 0),
                engine=engine,
                **diff_params(net, protocol),
            )
            # Identical semantic surface: every directed link covered
            # and every neighbor table complete.
            assert result.completed
            for owner, table in result.neighbor_tables.items():
                assert set(table) == set(net.hears(owner))


class TestParallelSerialIdentity:
    """Fast (non-statistical) half of the differential suite."""

    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS)
    def test_trials_bitwise_equal(self, protocol):
        net = M2HeWNetwork(
            [
                NodeSpec(0, frozenset({0, 1})),
                NodeSpec(1, frozenset({0, 1})),
            ],
            adjacency=[(0, 1)],
        )
        params = diff_params(net, protocol, delta_est=4, max_slots=50_000)
        serial = run_spec_trials(
            net, protocol, trials=4, base_seed=77, runner_params=params
        )
        pooled = run_spec_trials(
            net,
            protocol,
            trials=4,
            base_seed=77,
            runner_params=params,
            max_workers=2,
            backend="process",
            chunk_size=1,
        )
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]

    def test_batch_outcome_summaries_equal(self, tmp_path):
        from repro.workloads.generator import WorkloadConfig

        spec = ExperimentSpec(
            name="diff",
            workload=WorkloadConfig(
                topology="ring",
                topology_params={"num_nodes": 6},
                channel_model="homogeneous",
                channel_params={"num_channels": 2},
            ),
            protocol="algorithm3",
            trials=5,
            runner_params={"delta_est": 4, "max_slots": 50_000},
        )
        serial = run_batch([spec], base_seed=5, max_workers=1)[0]
        pooled = run_batch(
            [spec], base_seed=5, max_workers=2, backend="process"
        )[0]
        assert serial.as_row() == pooled.as_row()
        assert serial.network_params == pooled.network_params
        assert serial.completion.mean == pooled.completion.mean


class TestNonVectorizedFallback:
    """Protocols without a vectorized schedule: explicit refusal on the
    fast engine, byte-identical serial fallback through the batched
    entry point — never a silently different code path."""

    def test_registry_has_non_vectorized_protocols(self):
        # The suite below is only meaningful while such protocols exist.
        assert "mcdis" in NON_VECTORIZED

    @pytest.mark.parametrize("protocol", NON_VECTORIZED)
    def test_fast_engine_refuses(self, protocol):
        net = diff_net()
        with pytest.raises(ConfigurationError, match="no vectorized schedule"):
            run_synchronous(
                net,
                protocol,
                seed=0,
                engine="fast",
                **diff_params(net, protocol, max_slots=1_000),
            )

    @pytest.mark.parametrize("protocol", NON_VECTORIZED)
    def test_auto_engine_selects_reference(self, protocol):
        net = diff_net()
        params = diff_params(net, protocol, max_slots=50_000)
        auto = run_synchronous(net, protocol, seed=3, engine="auto", **params)
        ref = run_synchronous(net, protocol, seed=3, engine="reference", **params)
        assert auto.to_dict() == ref.to_dict()

    @pytest.mark.parametrize("protocol", NON_VECTORIZED)
    def test_batched_entry_point_falls_back_bitwise(self, protocol):
        net = diff_net()
        params = diff_params(net, protocol, max_slots=50_000)
        seeds = [derive_trial_seed(BASE_SEED, t) for t in range(4)]
        batched = run_experiment_trials_batched(
            net, protocol, seeds, runner_params=params
        )
        serial = [
            run_experiment_trial(net, protocol, seed=s, runner_params=params)
            for s in seeds
        ]
        assert [r.to_dict() for r in batched] == [r.to_dict() for r in serial]
