"""Tests for the whole-program determinism audit (``m2hew audit``).

The audit's whole-program rules need a *project* to look at, so most
tests here write a scratch tree shaped like the real package
(``<tmp>/repro/sim/...``) and run :func:`repro.devtools.audit.run_audit`
over it. The registry-snapshot tests run against the real ``src`` tree,
pinning the committed ``stream_registry.json`` to the sources.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.audit import (
    DEFAULT_REGISTRY_PATH,
    build_project,
    registry_drift,
    run_audit,
)
from repro.devtools.rules import (
    all_audit_rules,
    audit_rules_by_id,
    select_audit_rules,
)
from repro.devtools.rules.streams import (
    SHARED_STREAM_KEYS,
    build_registry,
    templates_unify,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def write_tree(root: Path, files: dict) -> Path:
    """Write ``{relative path: source}`` under ``root``; returns ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def audit_tree(root: Path, files: dict, rule: str = None):
    write_tree(root, files)
    rules = select_audit_rules([rule]) if rule else None
    return run_audit([root], rules=rules, check_registry=False)


def rule_ids(report) -> set:
    return {f.rule_id for f in report.findings}


class TestRegistryOfRules:
    def test_all_series_present(self):
        ids = {rule.rule_id for rule in all_audit_rules()}
        assert {"S401", "S402", "S403"} <= ids
        assert {"P501", "P502", "P503", "P504", "P505"} <= ids
        assert {"C601", "C602", "C603", "C604", "C605", "C606"} <= ids

    def test_rules_have_metadata(self):
        for rule in all_audit_rules():
            assert rule.rule_id and rule.title and rule.rationale

    def test_select_unknown_rule(self):
        with pytest.raises(KeyError):
            select_audit_rules(["Z999"])

    def test_select_is_case_insensitive(self):
        (rule,) = select_audit_rules(["s401"])
        assert rule.rule_id == "S401"

    def test_audit_and_lint_ids_disjoint(self):
        from repro.devtools.rules import rules_by_id

        assert not set(audit_rules_by_id()) & set(rules_by_id())


class TestRepoIsClean:
    """The acceptance bar: the audit ships at zero findings on src."""

    def test_src_has_no_findings(self):
        report = run_audit([SRC], check_registry=False)
        assert report.findings == []
        assert report.errors == []

    def test_committed_registry_matches_sources(self):
        """The drift test: regenerating the registry from ``src`` must
        reproduce the committed snapshot byte-for-byte (update with
        ``m2hew audit src --update-registry`` after review)."""
        report = run_audit([SRC], check_registry=False)
        committed = json.loads(DEFAULT_REGISTRY_PATH.read_text(encoding="utf-8"))
        assert report.registry == committed

    def test_shared_keys_are_present_in_registry(self):
        report = run_audit([SRC], check_registry=False)
        templates = {
            entry["template"]: entry
            for entry in report.registry["namespaces"]["stream"]
        }
        for key, reason in SHARED_STREAM_KEYS.items():
            if key in templates:
                assert templates[key]["shared"] == reason


class TestRegistryDrift:
    FILES = {
        "repro/sim/one.py": """
        def go(factory):
            factory.stream("alpha")
        """,
    }

    def fresh(self, tmp_path):
        write_tree(tmp_path / "tree", self.FILES)
        project = build_project([tmp_path / "tree"])
        return build_registry(project).as_dict()

    def test_matching_snapshot_is_quiet(self, tmp_path):
        fresh = self.fresh(tmp_path)
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(fresh), encoding="utf-8")
        assert registry_drift(fresh, snap) == []

    def test_missing_snapshot_is_drift(self, tmp_path):
        fresh = self.fresh(tmp_path)
        lines = registry_drift(fresh, tmp_path / "absent.json")
        assert len(lines) == 1 and "--update-registry" in lines[0]

    def test_new_key_reads_as_plus_line(self, tmp_path):
        fresh = self.fresh(tmp_path)
        stale = json.loads(json.dumps(fresh))
        stale["namespaces"]["stream"] = []
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(stale), encoding="utf-8")
        (line,) = registry_drift(fresh, snap)
        assert line.startswith("+ stream key 'alpha'")
        assert "sim.one" in line

    def test_removed_key_reads_as_minus_line(self, tmp_path):
        fresh = self.fresh(tmp_path)
        stale = json.loads(json.dumps(fresh))
        stale["namespaces"]["stream"].append(
            {
                "template": "zeta",
                "kind": "constant",
                "call": "stream",
                "modules": ["sim.gone"],
                "shared": None,
            }
        )
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(stale), encoding="utf-8")
        (line,) = registry_drift(fresh, snap)
        assert line.startswith("- stream key 'zeta'")

    def test_changed_entry_reads_as_tilde_line(self, tmp_path):
        fresh = self.fresh(tmp_path)
        stale = json.loads(json.dumps(fresh))
        stale["namespaces"]["stream"][0]["modules"] = ["sim.other"]
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(stale), encoding="utf-8")
        (line,) = registry_drift(fresh, snap)
        assert line.startswith("~ stream key 'alpha'")

    def test_drift_fails_the_run(self, tmp_path):
        write_tree(tmp_path / "tree", self.FILES)
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"namespaces": {}}), encoding="utf-8")
        report = run_audit([tmp_path / "tree"], registry_path=snap)
        assert report.drift and not report.ok


class TestS401StreamKeyCollision:
    def test_cross_module_duplicate_flags_both_sites(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": "def f(x):\n    x.stream('dup')\n",
                "repro/sim/b.py": "def g(x):\n    x.stream('dup')\n",
            },
            rule="S401",
        )
        assert len(report.findings) == 2
        assert all("dup" in f.message for f in report.findings)

    def test_same_module_reuse_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/a.py": "def f(x):\n    x.stream('k')\n    x.stream('k')\n"},
            rule="S401",
        )
        assert not report.findings

    def test_declared_shared_key_is_exempt(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": "def f(x):\n    x.stream('erasure')\n",
                "repro/sim/b.py": "def g(x):\n    x.stream('erasure')\n",
            },
            rule="S401",
        )
        assert not report.findings

    def test_pragma_suppresses(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": (
                    "def f(x):\n    x.stream('dup')  # lint: disable=S401\n"
                ),
                "repro/sim/b.py": "def g(x):\n    x.stream('dup')\n",
            },
            rule="S401",
        )
        assert len(report.findings) == 1
        assert report.findings[0].path.endswith("b.py")


class TestS402DynamicStreamKey:
    def test_variable_key_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/a.py": "def f(x, name):\n    x.stream(name)\n"},
            rule="S402",
        )
        assert rule_ids(report) == {"S402"}

    def test_fstring_key_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/a.py": "def f(x, i):\n    x.stream(f'part-{i}')\n"},
            rule="S402",
        )
        assert not report.findings

    def test_concatenation_of_literals_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/a.py": "def f(x):\n    x.stream('a-' + 'b')\n"},
            rule="S402",
        )
        assert not report.findings


class TestS403UnifiableTemplates:
    def test_stream_key_unifying_with_node_stream_family(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": "def f(x, i):\n    x.node_stream(i)\n",
                "repro/sim/b.py": "def g(x, i):\n    x.stream(f'node-{i}')\n",
            },
            rule="S403",
        )
        assert rule_ids(report) == {"S403"}

    def test_disjoint_prefixes_are_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": "def f(x, i):\n    x.stream(f'alpha-{i}')\n",
                "repro/sim/b.py": "def g(x, i):\n    x.stream(f'beta-{i}')\n",
            },
            rule="S403",
        )
        assert not report.findings

    def test_fork_namespace_is_separate(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": "def f(x):\n    x.stream('same')\n",
                "repro/sim/b.py": "def g(x):\n    x.fork('same')\n",
            },
            rule="S403",
        )
        assert not report.findings


class TestTemplatesUnify:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("node-{}", "node-{}", True),
            ("node-{}", "no{}-7", True),
            ("{}", "anything at all", True),
            ("a-{}", "{}-b", True),
            ("alpha-{}", "beta-{}", False),
            ("faults-ge-{}", "faults-jam-{}-ch{}", False),
            ("faults-pu-{}-{}", "faults-glitch-{}-node{}", False),
            ("exact", "exact", True),
            ("exact", "other", False),
            ("a{}c", "abc", True),
            ("a{}c", "adc", True),
            ("a{}c", "abd", False),
        ],
    )
    def test_pairs(self, a, b, expected):
        assert templates_unify(a, b) is expected
        assert templates_unify(b, a) is expected

    def test_repo_fault_templates_pairwise_disjoint(self):
        report = run_audit([SRC], rules=select_audit_rules(["S403"]),
                           check_registry=False)
        assert not report.findings


class TestP501SetIteration:
    def test_for_over_set_literal(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": """
                def f(out):
                    for item in {1, 2, 3}:
                        out.append(item)
                """
            },
            rule="P501",
        )
        assert rule_ids(report) == {"P501"}

    def test_for_over_name_bound_to_set(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": """
                def f(items, out):
                    pending = set(items)
                    for item in pending:
                        out.append(item)
                """
            },
            rule="P501",
        )
        assert rule_ids(report) == {"P501"}

    def test_sorted_set_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": """
                def f(items, out):
                    for item in sorted(set(items)):
                        out.append(item)
                """
            },
            rule="P501",
        )
        assert not report.findings

    def test_order_free_reduction_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": """
                def f(items):
                    return sum(x * 2 for x in set(items))
                """
            },
            rule="P501",
        )
        assert not report.findings

    def test_outside_order_scope_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/workloads/a.py": """
                def f(out):
                    for item in {1, 2}:
                        out.append(item)
                """
            },
            rule="P501",
        )
        assert not report.findings


class TestP502FilesystemOrder:
    def test_unsorted_iterdir(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/resilience/a.py": """
                def f(d, out):
                    for p in d.iterdir():
                        out.append(p)
                """
            },
            rule="P502",
        )
        assert rule_ids(report) == {"P502"}

    def test_unsorted_listdir(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/analysis/a.py": """
                import os

                def f(d):
                    return [p for p in os.listdir(d)]
                """
            },
            rule="P502",
        )
        assert rule_ids(report) == {"P502"}

    def test_sorted_glob_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/resilience/a.py": """
                def f(d):
                    return sorted(d.glob("*.json"))
                """
            },
            rule="P502",
        )
        assert not report.findings


class TestP503CompletionOrder:
    def test_as_completed_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": """
                from concurrent.futures import as_completed

                def f(futures, out):
                    for fut in as_completed(futures):
                        out.append(fut.result())
                """
            },
            rule="P503",
        )
        assert rule_ids(report) == {"P503"}


class TestP504IdentitySort:
    def test_key_id_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/a.py": "def f(xs):\n    return sorted(xs, key=id)\n"},
            rule="P504",
        )
        assert rule_ids(report) == {"P504"}

    def test_lambda_hash_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": (
                    "def f(xs):\n"
                    "    xs.sort(key=lambda x: hash(x.name))\n"
                )
            },
            rule="P504",
        )
        assert rule_ids(report) == {"P504"}

    def test_stable_key_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/a.py": (
                    "def f(xs):\n"
                    "    return sorted(xs, key=lambda x: x.trial)\n"
                )
            },
            rule="P504",
        )
        assert not report.findings


class TestP505WallClockSeed:
    def test_time_seed_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/analysis/a.py": """
                import time

                def f(run):
                    return run(seed=int(time.time()))
                """
            },
            rule="P505",
        )
        assert rule_ids(report) == {"P505"}

    def test_sink_positional_arg_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/resilience/a.py": """
                import time
                from repro.sim.rng import make_generator

                def f():
                    return make_generator(time.time_ns())
                """
            },
            rule="P505",
        )
        assert rule_ids(report) == {"P505"}

    def test_configured_seed_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/analysis/a.py": """
                def f(run, cfg):
                    return run(seed=cfg.seed)
                """
            },
            rule="P505",
        )
        assert not report.findings


class TestC601EngineSurface:
    ENGINE = """
    class SlottedSimulator:
        def __init__(self, network, protocol, *, rng_factory,
                     start_offsets=None, erasure_prob={erasure}, trace=None,
                     faults=None):
            pass
    """

    def test_conforming_engine_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/slotted.py": self.ENGINE.format(erasure="0.0")},
            rule="C601",
        )
        assert not report.findings

    def test_missing_contract_keyword(self, tmp_path):
        source = self.ENGINE.format(erasure="0.0").replace(
            "faults=None", "unused=None"
        )
        report = audit_tree(
            tmp_path, {"repro/sim/slotted.py": source}, rule="C601"
        )
        assert rule_ids(report) == {"C601"}
        assert "faults" in report.findings[0].message

    def test_drifted_default(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {"repro/sim/slotted.py": self.ENGINE.format(erasure="0.1")},
            rule="C601",
        )
        assert rule_ids(report) == {"C601"}
        assert "erasure_prob" in report.findings[0].message

    def test_scratch_tree_without_engines_is_quiet(self, tmp_path):
        report = audit_tree(
            tmp_path, {"repro/sim/other.py": "X = 1\n"}, rule="C601"
        )
        assert not report.findings


class TestC602CallKeywords:
    RUNNER = """
    def run_synchronous(network, protocol, *, seed, max_slots=None):
        pass
    """

    def test_unknown_keyword_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": self.RUNNER,
                "repro/analysis/use.py": """
                from repro.sim.runner import run_synchronous

                def f(net, proto):
                    return run_synchronous(net, proto, seed=1, max_slotz=9)
                """,
            },
            rule="C602",
        )
        assert rule_ids(report) == {"C602"}
        assert "max_slotz" in report.findings[0].message

    def test_declared_keywords_are_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": self.RUNNER,
                "repro/analysis/use.py": """
                from repro.sim.runner import run_synchronous

                def f(net, proto):
                    return run_synchronous(net, proto, seed=1, max_slots=9)
                """,
            },
            rule="C602",
        )
        assert not report.findings

    def test_real_tree_call_sites_are_valid(self):
        report = run_audit([SRC], rules=select_audit_rules(["C602"]),
                           check_registry=False)
        assert not report.findings


class TestC603BatchableSubset:
    def test_superset_entry_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": """
                _BATCHABLE_PARAMS = frozenset({"max_slots", "bogus"})

                def run_synchronous(network, protocol, *, seed, max_slots=None):
                    pass
                """
            },
            rule="C603",
        )
        assert rule_ids(report) == {"C603"}
        assert "bogus" in report.findings[0].message

    def test_subset_is_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": """
                _BATCHABLE_PARAMS = frozenset({"max_slots"})

                def run_synchronous(network, protocol, *, seed, max_slots=None):
                    pass
                """
            },
            rule="C603",
        )
        assert not report.findings


class TestC606GridCellCoverage:
    RUNNER = """
    _BATCHABLE_PARAMS = frozenset(
        {"max_slots", "delta_est", "start_offsets", "erasure_prob",
         "stop_on_full_coverage", "engine", "faults"}
    )
    """

    def test_covered_params_pass(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": self.RUNNER,
                "repro/sim/batched.py": """
                class GridCell:
                    schedule: object
                    rng_factories: tuple
                    start_offsets: dict = None
                    erasure_prob: float = 0.0
                    faults: object = None
                """,
            },
            rule="C606",
        )
        assert not report.findings

    def test_uncovered_param_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": """
                _BATCHABLE_PARAMS = frozenset({"max_slots", "jitter"})
                """,
                "repro/sim/batched.py": """
                class GridCell:
                    schedule: object
                """,
            },
            rule="C606",
        )
        assert rule_ids(report) == {"C606"}
        assert "jitter" in report.findings[0].message

    def test_missing_gridcell_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/runner.py": self.RUNNER,
                "repro/sim/batched.py": "X = 1\n",
            },
            rule="C606",
        )
        assert rule_ids(report) == {"C606"}
        assert "GridCell is missing" in report.findings[0].message

    def test_real_tree_is_covered(self):
        report = run_audit([SRC], rules=select_audit_rules(["C606"]),
                           check_registry=False)
        assert not report.findings


class TestC604ReplayCoordinates:
    EXCEPTIONS = """
    class TrialExecutionError(RuntimeError):
        def __init__(self, message, *, experiment=None, trial_indices=(),
                     base_seed=None):
            super().__init__(message)

    class TrialTimeoutError(TrialExecutionError):
        pass
    """

    def test_raise_without_coordinates_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/exceptions.py": self.EXCEPTIONS,
                "repro/resilience/a.py": """
                from repro.exceptions import TrialTimeoutError

                def f():
                    raise TrialTimeoutError("slow")
                """,
            },
            rule="C604",
        )
        assert rule_ids(report) == {"C604"}
        assert "trial_indices" in report.findings[0].message

    def test_full_coordinates_are_fine(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/exceptions.py": self.EXCEPTIONS,
                "repro/resilience/a.py": """
                from repro.exceptions import TrialTimeoutError

                def f(exp, idx, seed):
                    raise TrialTimeoutError(
                        "slow", experiment=exp, trial_indices=(idx,),
                        base_seed=seed,
                    )
                """,
            },
            rule="C604",
        )
        assert not report.findings

    def test_lost_field_flags(self, tmp_path):
        source = self.EXCEPTIONS.replace(" base_seed=None", " seed=None")
        report = audit_tree(
            tmp_path, {"repro/exceptions.py": source}, rule="C604"
        )
        assert any("base_seed" in f.message for f in report.findings)


class TestC605CliPlumbing:
    def test_unread_dest_flags(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/cli.py": """
                import argparse

                def build_parser():
                    p = argparse.ArgumentParser()
                    p.add_argument("--workers", type=int)
                    p.add_argument("--orphan", type=int)
                    return p

                def main(argv=None):
                    args = build_parser().parse_args(argv)
                    return args.workers
                """
            },
            rule="C605",
        )
        assert rule_ids(report) == {"C605"}
        assert "orphan" in report.findings[0].message


class TestIssueMutations:
    """The acceptance mutation: a scratch module with a duplicated
    stream() key and an unsorted iterdir must be caught."""

    def test_seeded_mutations_are_caught(self, tmp_path):
        report = audit_tree(
            tmp_path,
            {
                "repro/sim/mut_a.py": """
                def seed_streams(factory):
                    return factory.stream("mutation-key")
                """,
                "repro/sim/mut_b.py": """
                def seed_streams(factory, root, out):
                    for path in root.iterdir():
                        out.append(path)
                    return factory.stream("mutation-key")
                """,
            },
        )
        assert {"S401", "P502"} <= rule_ids(report)
        assert not report.ok


class TestAuditCli:
    CLEAN = {
        "repro/sim/a.py": "def f(x):\n    x.stream('only-here')\n",
    }
    DIRTY = {
        "repro/sim/a.py": "def f(x):\n    x.stream('dup')\n",
        "repro/sim/b.py": "def g(x):\n    x.stream('dup')\n",
    }

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path / "t", self.CLEAN)
        rc = main(["audit", str(tmp_path / "t"), "--no-registry-check"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        write_tree(tmp_path / "t", self.DIRTY)
        rc = main(["audit", str(tmp_path / "t"), "--no-registry-check"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "S401" in out and "dup" in out

    def test_json_output(self, tmp_path, capsys):
        write_tree(tmp_path / "t", self.DIRTY)
        rc = main(
            [
                "audit",
                str(tmp_path / "t"),
                "--no-registry-check",
                "--format",
                "json",
            ]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"S401"}
        assert payload["files_checked"] == 2
        assert "only-here" not in json.dumps(payload)

    def test_rule_filter(self, tmp_path, capsys):
        write_tree(tmp_path / "t", self.DIRTY)
        rc = main(
            [
                "audit",
                str(tmp_path / "t"),
                "--no-registry-check",
                "--rule",
                "P501",
            ]
        )
        assert rc == 0

    def test_unknown_rule_exits_two(self, capsys):
        rc = main(["audit", "src", "--rule", "Z999"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = main(["audit", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule_id in ("S401", "P501", "C601"):
            assert rule_id in out

    def test_pragma_passthrough(self, tmp_path, capsys):
        files = {
            "repro/sim/a.py": (
                "def f(x):\n    x.stream('dup')  # lint: disable=S401\n"
            ),
            "repro/sim/b.py": (
                "def g(x):\n    x.stream('dup')  # lint: disable=S401\n"
            ),
        }
        write_tree(tmp_path / "t", files)
        rc = main(["audit", str(tmp_path / "t"), "--no-registry-check"])
        assert rc == 0

    def test_registry_mismatch_path(self, tmp_path, capsys):
        write_tree(tmp_path / "t", self.CLEAN)
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"namespaces": {"stream": []}}))
        rc = main(
            ["audit", str(tmp_path / "t"), "--registry", str(snap)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "stream-registry drift" in out
        assert "+ stream key 'only-here'" in out

    def test_update_registry_then_clean(self, tmp_path, capsys):
        write_tree(tmp_path / "t", self.CLEAN)
        snap = tmp_path / "snap.json"
        rc = main(
            [
                "audit",
                str(tmp_path / "t"),
                "--registry",
                str(snap),
                "--update-registry",
            ]
        )
        assert rc == 0
        assert snap.exists()
        capsys.readouterr()
        rc = main(["audit", str(tmp_path / "t"), "--registry", str(snap)])
        assert rc == 0

    def test_real_src_audit_is_clean(self, capsys):
        assert main(["audit", "src"]) == 0
