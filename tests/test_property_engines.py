"""Property-based invariants of the engines, plus closed-form anchors.

Two kinds of check:

* **invariants** over randomized runs — coverage times never precede
  both endpoints' starts, tables never exceed ground truth, counter
  arithmetic is conserved;
* **closed-form anchors** — on an isolated pair the per-slot coverage
  probability has an exact formula, so measured mean discovery time
  must match the geometric expectation within sampling error, for both
  synchronous engines.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.stats import mean
from repro.analysis.theory import (
    exact_pair_coverage_probability,
    expected_pair_discovery_slots,
)
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.runner import run_synchronous, run_trials


@st.composite
def pair_configs(draw):
    tx_n = draw(st.integers(1, 6))
    rx_n = draw(st.integers(1, 6))
    span = draw(st.integers(1, min(tx_n, rx_n)))
    return tx_n, rx_n, span


class TestExactPairFormula:
    @given(pair_configs())
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, cfg):
        tx_n, rx_n, span = cfg
        q = exact_pair_coverage_probability(tx_n, rx_n, span, 0.5, 0.5)
        assert 0.0 < q <= 1.0

    def test_known_value(self):
        # 2 channels each, full span, p = 1/2 both: q = 2 * (1/4)*(1/4) = 1/8.
        q = exact_pair_coverage_probability(2, 2, 2, 0.5, 0.5)
        assert q == pytest.approx(1 / 8)

    def test_expected_slots_inverse(self):
        assert expected_pair_discovery_slots(2, 2, 2, 0.5, 0.5) == pytest.approx(8.0)


def make_pair(tx_channels, rx_channels):
    """Two adjacent nodes with the given channel sets."""
    return M2HeWNetwork(
        [
            NodeSpec(0, frozenset(tx_channels)),
            NodeSpec(1, frozenset(rx_channels)),
        ],
        adjacency=[(0, 1)],
    )


class TestEngineMatchesClosedForm:
    """Mean measured discovery time ≈ 1/q on an isolated pair."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_pair_mean_matches_geometric(self, engine):
        # A(0) = {0,1}, A(1) = {0,1,2}; algorithm 3 with delta_est=4:
        # p0 = 1/2, p1 = min(1/2, 3/4) = 1/2; span = 2.
        net = make_pair((0, 1), (0, 1, 2))
        q = exact_pair_coverage_probability(2, 3, 2, 0.5, 0.5)
        trials = 300
        results = run_trials(
            lambda seed: run_synchronous(
                net,
                "algorithm3",
                seed=seed,
                max_slots=10_000,
                delta_est=4,
                engine=engine,
            ),
            num_trials=trials,
            base_seed=99,
        )
        assert all(r.completed for r in results)
        times = [r.coverage[(0, 1)] + 1 for r in results]  # slots consumed
        expected = 1.0 / q
        # Standard error of a geometric mean estimate ~ expected/sqrt(n).
        tolerance = 4 * expected / np.sqrt(trials)
        assert mean(times) == pytest.approx(expected, abs=tolerance)


@st.composite
def random_runs(draw):
    n = draw(st.integers(2, 6))
    nodes = []
    for nid in range(n):
        extra = draw(st.sets(st.integers(0, 3), max_size=3))
        nodes.append(NodeSpec(nid, frozenset({0} | extra)))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.sets(st.sampled_from(all_pairs), min_size=1))
    offsets = {
        nid: draw(st.integers(0, 40)) for nid in range(n)
    }
    seed = draw(st.integers(0, 10_000))
    return M2HeWNetwork(nodes, adjacency=sorted(chosen)), offsets, seed


class TestRunInvariants:
    @given(random_runs(), st.sampled_from(["fast", "reference"]))
    @settings(max_examples=30, deadline=None)
    def test_coverage_never_precedes_starts(self, run_cfg, engine):
        net, offsets, seed = run_cfg
        result = run_synchronous(
            net,
            "algorithm3",
            seed=seed,
            max_slots=5000,
            delta_est=4,
            start_offsets=offsets,
            engine=engine,
        )
        for (v, u), t in result.coverage.items():
            if t is not None:
                assert t >= offsets[v]
                assert t >= offsets[u]

    @given(random_runs())
    @settings(max_examples=30, deadline=None)
    def test_tables_sound_and_channels_exact(self, run_cfg):
        net, offsets, seed = run_cfg
        result = run_synchronous(
            net,
            "algorithm3",
            seed=seed,
            max_slots=5000,
            delta_est=4,
            start_offsets=offsets,
        )
        for nid in net.node_ids:
            truth = net.discoverable_neighbors(nid)
            for v, common in result.neighbor_tables[nid].items():
                assert v in truth
                assert common == net.span(v, nid)

    @given(random_runs())
    @settings(max_examples=20, deadline=None)
    def test_reference_counter_conservation(self, run_cfg):
        net, offsets, seed = run_cfg
        result = run_synchronous(
            net,
            "algorithm3",
            seed=seed,
            max_slots=500,
            delta_est=4,
            start_offsets=offsets,
            engine="reference",
            stop_on_full_coverage=False,
        )
        activity = result.metadata["radio_activity"]
        clear = result.metadata["clear_receptions"]
        for nid in net.node_ids:
            modes = activity[nid]
            active_slots = max(0, int(result.horizon) - offsets[nid])
            assert modes["tx"] + modes["rx"] + modes["quiet"] == active_slots
            # Clear receptions can't exceed listening slots; discovered
            # neighbors can't exceed clear receptions.
            assert clear[nid] <= modes["rx"]
            assert len(result.neighbor_tables[nid]) <= clear[nid] or clear[
                nid
            ] == 0
