"""Unit tests for repro.net.serialization."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import NetworkModelError
from repro.net import (
    M2HeWNetwork,
    NodeSpec,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


def assert_networks_equal(a: M2HeWNetwork, b: M2HeWNetwork) -> None:
    assert a.node_ids == b.node_ids
    for nid in a.node_ids:
        assert a.channels_of(nid) == b.channels_of(nid)
        assert a.node(nid).position == b.node(nid).position
        assert a.hears(nid) == b.hears(nid)
    assert [l.key for l in a.links()] == [l.key for l in b.links()]


class TestRoundTrip:
    def test_symmetric_roundtrip(self, triangle):
        restored = network_from_dict(network_to_dict(triangle))
        assert_networks_equal(triangle, restored)

    def test_positions_survive(self, small_geometric):
        restored = network_from_dict(network_to_dict(small_geometric))
        assert_networks_equal(small_geometric, restored)

    def test_channel_free_adjacency_survives(self):
        # A radio-adjacent pair sharing no channel has no link, but the
        # adjacency must survive serialization.
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({1}))]
        network = M2HeWNetwork(nodes, adjacency=[(0, 1)])
        restored = network_from_dict(network_to_dict(network))
        assert restored.hears(0) == {1}
        assert restored.num_links == 0

    def test_asymmetric_roundtrip(self):
        nodes = [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))]
        network = M2HeWNetwork(nodes, directed_adjacency=[(0, 1)])
        restored = network_from_dict(network_to_dict(network))
        assert not restored.is_symmetric
        assert_networks_equal(network, restored)

    def test_file_roundtrip(self, triangle, tmp_path):
        path = tmp_path / "net.json"
        save_network(triangle, path)
        restored = load_network(path)
        assert_networks_equal(triangle, restored)

    def test_json_is_plain(self, triangle, tmp_path):
        path = tmp_path / "net.json"
        save_network(triangle, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert isinstance(data["nodes"], list)


class TestVersioning:
    def test_unknown_version_rejected(self, triangle):
        data = network_to_dict(triangle)
        data["format_version"] = 999
        with pytest.raises(NetworkModelError, match="version"):
            network_from_dict(data)

    def test_missing_version_rejected(self, triangle):
        data = network_to_dict(triangle)
        del data["format_version"]
        with pytest.raises(NetworkModelError, match="version"):
            network_from_dict(data)
