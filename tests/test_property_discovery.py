"""Property-based end-to-end soundness of discovery.

On arbitrary small networks, whatever the algorithm and seed:

* no node ever "discovers" a non-neighbor (soundness);
* recorded common-channel sets are exactly the link spans;
* with a generous budget, discovery is also complete.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.runner import run_asynchronous, run_synchronous


@st.composite
def connected_networks(draw):
    """Small networks where every adjacent pair shares >= 1 channel."""
    n = draw(st.integers(min_value=2, max_value=6))
    universe = draw(st.integers(min_value=1, max_value=4))
    nodes = []
    for nid in range(n):
        extra = draw(
            st.sets(st.integers(0, universe - 1), min_size=0, max_size=universe)
        )
        # Channel 0 common to all: guarantees overlap on every edge.
        nodes.append(NodeSpec(nid, frozenset({0} | extra)))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.sets(st.sampled_from(all_pairs), min_size=1))
    return M2HeWNetwork(nodes, adjacency=sorted(chosen))


def check_soundness(network, result):
    for nid in network.node_ids:
        truth = network.discoverable_neighbors(nid)
        table = result.neighbor_tables[nid]
        assert set(table) <= truth
        for v, common in table.items():
            assert common == network.span(v, nid)


class TestSyncSoundnessAndCompleteness:
    @given(connected_networks(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_algorithm3_exact(self, network, seed):
        result = run_synchronous(
            network, "algorithm3", seed=seed, max_slots=60_000, delta_est=8
        )
        check_soundness(network, result)
        assert result.completed

    @given(connected_networks(), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_algorithm1_exact(self, network, seed):
        result = run_synchronous(
            network, "algorithm1", seed=seed, max_slots=60_000, delta_est=8
        )
        check_soundness(network, result)
        assert result.completed

    @given(connected_networks(), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_algorithm2_exact(self, network, seed):
        result = run_synchronous(
            network, "algorithm2", seed=seed, max_slots=60_000
        )
        check_soundness(network, result)
        assert result.completed

    @given(connected_networks(), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_reference_engine_agrees_on_soundness(self, network, seed):
        result = run_synchronous(
            network,
            "algorithm1",
            seed=seed,
            max_slots=60_000,
            delta_est=4,
            engine="reference",
        )
        check_soundness(network, result)


class TestAsyncSoundness:
    @given(
        connected_networks(),
        st.integers(0, 1000),
        st.floats(min_value=0.0, max_value=1.0 / 7.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_algorithm4_sound_and_complete(self, network, seed, drift):
        result = run_asynchronous(
            network,
            seed=seed,
            delta_est=6,
            max_frames_per_node=120_000,
            drift_bound=drift,
            clock_model="constant",
            start_spread=4.0,
        )
        check_soundness(network, result)
        assert result.completed
