"""Fault-preset × protocol regression matrix.

Every named fault preset crossed with every registered synchronous
protocol, at pinned seeds: faults must *degrade* (never improve) each
protocol relative to its clean run, and faulted campaigns must keep the
archive worker-invariance the batch layer guarantees. This is the
tournament's safety net — a rival protocol that secretly benefits from
a fault model, or a preset that stops biting, fails here before it can
skew a league table.
"""

from __future__ import annotations

import pytest

from repro.analysis.robustness import aggregate_point, is_monotone_non_improving
from repro.faults.presets import fault_preset, fault_preset_names
from repro.sim.batch import ExperimentSpec, run_batch
from repro.sim.rng import derive_trial_seed
from repro.sim.runner import (
    SYNC_PROTOCOLS,
    experiment_runner_params,
    run_experiment_trial,
)
from repro.workloads.generator import WorkloadConfig, generate_network

BASE_SEED = 20_260_807
TRIALS = 20
MAX_SLOTS = 6_000

MATRIX_WORKLOAD = WorkloadConfig(
    topology="clique",
    topology_params={"num_nodes": 5},
    channel_model="homogeneous",
    channel_params={"num_channels": 2},
)


def matrix_network():
    return generate_network(MATRIX_WORKLOAD, seed=1)


def faulted_results(network, protocol, preset_name):
    params = experiment_runner_params(
        protocol,
        network,
        delta_est=8,
        max_slots=MAX_SLOTS,
        faults=fault_preset(preset_name) if preset_name else None,
    )
    return [
        run_experiment_trial(
            network,
            protocol,
            seed=derive_trial_seed(BASE_SEED, t),
            runner_params=params,
        )
        for t in range(TRIALS)
    ]


class TestPresetProtocolMatrix:
    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS)
    @pytest.mark.parametrize("preset", fault_preset_names())
    def test_preset_never_improves_protocol(self, preset, protocol):
        network = matrix_network()
        clean = aggregate_point(0.0, faulted_results(network, protocol, None))
        faulted = aggregate_point(
            1.0, faulted_results(network, protocol, preset)
        )
        assert is_monotone_non_improving([clean, faulted]), (
            f"{protocol} under {preset}: clean "
            f"(cov {clean.mean_coverage:.3f}, t {clean.mean_censored_time:.1f})"
            f" vs faulted (cov {faulted.mean_coverage:.3f}, "
            f"t {faulted.mean_censored_time:.1f})"
        )

    @pytest.mark.parametrize("protocol", SYNC_PROTOCOLS)
    def test_every_preset_is_deterministic_per_protocol(self, protocol):
        # Same pinned seeds twice — the whole matrix row must reproduce
        # bit for bit (fault plans are part of the seeded state).
        network = matrix_network()
        preset = "bursty_loss"
        first = faulted_results(network, protocol, preset)
        second = faulted_results(network, protocol, preset)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]


class TestFaultedArchiveWorkerInvariance:
    """Faulted campaigns keep the byte-identical-archive contract."""

    @pytest.mark.parametrize("protocol", ("robust_staged", "mcdis"))
    def test_archive_bytes_identical_across_worker_counts(
        self, tmp_path, protocol
    ):
        network = matrix_network()
        spec = ExperimentSpec(
            name=f"faulted_{protocol}",
            workload=MATRIX_WORKLOAD,
            protocol=protocol,
            trials=4,
            network_seed=1,
            runner_params=experiment_runner_params(
                protocol,
                network,
                delta_est=8,
                max_slots=MAX_SLOTS,
                faults=fault_preset("flat_loss"),
            ),
        )
        dirs = {}
        for workers in (1, 2):
            out = tmp_path / f"w{workers}"
            run_batch(
                [spec], base_seed=BASE_SEED, output_dir=out, max_workers=workers
            )
            dirs[workers] = out
        for name in sorted(p.name for p in dirs[1].iterdir()):
            assert (dirs[1] / name).read_bytes() == (dirs[2] / name).read_bytes(), name
