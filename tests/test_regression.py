"""Unit tests for repro.analysis.regression."""

from __future__ import annotations

import pytest

from repro.analysis.regression import fit_log_law, fit_power_law
from repro.exceptions import ConfigurationError


class TestFitPowerLaw:
    def test_exact_linear(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_quadratic(self):
        xs = [1.0, 2.0, 3.0, 5.0]
        ys = [0.5 * x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)

    def test_inverse_law(self):
        xs = [0.25, 0.5, 1.0]
        ys = [10.0 / x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(-1.0)

    def test_predict(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit.predict(16.0) == pytest.approx(32.0)

    def test_noise_reduces_r2(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [2.0, 7.0, 6.0, 20.0, 25.0]
        fit = fit_power_law(xs, ys)
        assert 0.0 < fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0], [1.0, 2.0])  # too few
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0, 3.0], [1.0, -2.0, 3.0])  # negative
        with pytest.raises(ConfigurationError):
            fit_power_law([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])  # constant x
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0, 3.0], [1.0, 2.0])  # misaligned


class TestFitLogLaw:
    def test_exact_log(self):
        import math

        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [1.0 + 3.0 * math.log(x) for x in xs]
        slope, intercept, r2 = fit_log_law(xs, ys)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)


class TestOnMeasuredScalingData:
    """Fit the actual E9a-style data shape: time vs rho is a -1 power."""

    def test_rho_scaling_exponent(self):
        # From benchmarks/results/e9_rho.txt (regenerate with bench E9):
        rhos = [1.0, 0.5, 0.25]
        slots = [90.6, 176.2, 328.1]
        fit = fit_power_law(rhos, slots)
        assert fit.exponent == pytest.approx(-1.0, abs=0.15)
        assert fit.r_squared > 0.99
