"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import net
from repro.net import M2HeWNetwork, NodeSpec, build_network


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_pair() -> M2HeWNetwork:
    """Two nodes sharing channels {0, 1}; node 1 also has {2}."""
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 1, 2})),
    ]
    return M2HeWNetwork(nodes, adjacency=[(0, 1)])


@pytest.fixture
def triangle() -> M2HeWNetwork:
    """Three mutually adjacent nodes with heterogeneous channel sets."""
    nodes = [
        NodeSpec(0, frozenset({0, 1})),
        NodeSpec(1, frozenset({0, 2})),
        NodeSpec(2, frozenset({0, 1, 2})),
    ]
    return M2HeWNetwork(nodes, adjacency=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def star_net() -> M2HeWNetwork:
    """A hub with 4 leaves, homogeneous channels {0, 1}."""
    topo = net.topology.star(4)
    assignment = net.channels.homogeneous(topo.num_nodes, 2)
    return build_network(topo, assignment)


@pytest.fixture
def small_geometric(rng) -> M2HeWNetwork:
    """A connected 10-node geometric network with a common channel."""
    topo = net.topology.random_geometric(
        10, radius=0.45, rng=rng, require_connected=True
    )
    assignment = net.channels.common_channel_plus_random(
        topo.num_nodes, universal_size=6, set_size=3, rng=rng
    )
    return build_network(topo, assignment)
