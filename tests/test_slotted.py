"""Unit tests for the reference slotted engine — collision semantics."""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from repro.core.base import SlotDecision, SynchronousProtocol
from repro.exceptions import ConfigurationError, SimulationError
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.rng import RngFactory
from repro.sim.slotted import SlottedSimulator
from repro.sim.stopping import StoppingCondition
from repro.sim.trace import ExecutionTrace


class ScriptedProtocol(SynchronousProtocol):
    """Plays back a fixed list of decisions, then listens on channel 0."""

    scripts: Dict[int, List[SlotDecision]] = {}

    def __init__(self, node_id, channels, rng):
        super().__init__(node_id, channels, rng)
        self._script = list(self.scripts.get(node_id, []))

    def decide_slot(self, local_slot):
        if local_slot < len(self._script):
            return self._script[local_slot]
        return SlotDecision.listen(min(self.channels))


@pytest.fixture
def scripted(monkeypatch):
    """Factory fixture: set per-node scripts, build an engine runner."""

    def run(network, scripts, budget=5, offsets=None, erasure=0.0, trace=None):
        ScriptedProtocol.scripts = scripts
        sim = SlottedSimulator(
            network,
            lambda nid, chs, rng: ScriptedProtocol(nid, chs, rng),
            RngFactory(0),
            start_offsets=offsets,
            erasure_prob=erasure,
            trace=trace,
        )
        return sim, sim.run(StoppingCondition.slots(budget, stop_on_full_coverage=False))

    return run


def pair_network(channels0=frozenset({0, 1}), channels1=frozenset({0, 1})):
    return M2HeWNetwork(
        [NodeSpec(0, frozenset(channels0)), NodeSpec(1, frozenset(channels1))],
        adjacency=[(0, 1)],
    )


def triple_network():
    """Node 0 hears 1 and 2; all share channel 0."""
    return M2HeWNetwork(
        [
            NodeSpec(0, frozenset({0})),
            NodeSpec(1, frozenset({0})),
            NodeSpec(2, frozenset({0})),
        ],
        adjacency=[(0, 1), (0, 2)],
    )


class TestReception:
    def test_clear_transmission_received(self, scripted):
        net = pair_network()
        _, result = scripted(
            net,
            {0: [SlotDecision.listen(0)], 1: [SlotDecision.transmit(0)]},
        )
        assert result.coverage[(1, 0)] == 0.0
        assert result.coverage[(0, 1)] is None
        assert result.neighbor_tables[0] == {1: frozenset({0, 1})}

    def test_wrong_channel_not_received(self, scripted):
        net = pair_network()
        _, result = scripted(
            net,
            {0: [SlotDecision.listen(1)], 1: [SlotDecision.transmit(0)]},
        )
        assert result.coverage[(1, 0)] is None

    def test_collision_at_receiver(self, scripted):
        net = triple_network()
        _, result = scripted(
            net,
            {
                0: [SlotDecision.listen(0)],
                1: [SlotDecision.transmit(0)],
                2: [SlotDecision.transmit(0)],
            },
        )
        assert result.coverage[(1, 0)] is None
        assert result.coverage[(2, 0)] is None

    def test_half_duplex_transmitter_hears_nothing(self, scripted):
        net = pair_network()
        _, result = scripted(
            net,
            {0: [SlotDecision.transmit(0)], 1: [SlotDecision.transmit(0)]},
        )
        assert result.coverage[(0, 1)] is None
        assert result.coverage[(1, 0)] is None

    def test_quiet_node_hears_nothing(self, scripted):
        net = pair_network()
        _, result = scripted(
            net,
            {0: [SlotDecision.quiet()], 1: [SlotDecision.transmit(0)]},
        )
        assert result.coverage[(1, 0)] is None

    def test_out_of_range_transmitter_does_not_interfere(self, scripted):
        # 2 -- 0 -- 1 line: node 1 and node 2 both transmit; node 2 is
        # not audible to ... build: 0 hears 1 only; 2 is isolated from 0.
        net = M2HeWNetwork(
            [
                NodeSpec(0, frozenset({0})),
                NodeSpec(1, frozenset({0})),
                NodeSpec(2, frozenset({0})),
            ],
            adjacency=[(0, 1)],  # 2 is disconnected
        )
        _, result = scripted(
            net,
            {
                0: [SlotDecision.listen(0)],
                1: [SlotDecision.transmit(0)],
                2: [SlotDecision.transmit(0)],
            },
        )
        assert result.coverage[(1, 0)] == 0.0

    def test_transmit_on_unavailable_channel_is_engine_error(self, scripted):
        net = pair_network(channels1={1})
        with pytest.raises(SimulationError, match="unavailable channel"):
            scripted(net, {1: [SlotDecision.transmit(0)]})


class TestStartOffsets:
    def test_node_quiet_before_start(self, scripted):
        net = pair_network()
        # Node 1 transmits its local slot 0, but starts at global slot 2.
        _, result = scripted(
            net,
            {
                0: [SlotDecision.listen(0)] * 5,
                1: [SlotDecision.transmit(0)],
            },
            offsets={1: 2},
        )
        assert result.coverage[(1, 0)] == 2.0

    def test_local_slot_indexing(self, scripted):
        net = pair_network()
        trace = ExecutionTrace()
        scripted(net, {}, offsets={1: 3}, trace=trace)
        slots = trace.slots_of(1)
        assert slots[0].global_slot == 3
        assert slots[0].local_slot == 0

    def test_negative_offset_rejected(self, scripted):
        with pytest.raises(ConfigurationError, match="offset"):
            scripted(pair_network(), {}, offsets={0: -1})


class TestErasure:
    def test_full_reliability_by_default(self, scripted):
        net = pair_network()
        _, result = scripted(
            net, {0: [SlotDecision.listen(0)], 1: [SlotDecision.transmit(0)]}
        )
        assert result.coverage[(1, 0)] is not None

    def test_erasures_drop_deliveries(self, scripted):
        net = pair_network()
        # With erasure ~1, nothing gets through in 5 slots.
        _, result = scripted(
            net,
            {
                0: [SlotDecision.listen(0)] * 5,
                1: [SlotDecision.transmit(0)] * 5,
            },
            erasure=0.999999,
        )
        assert result.coverage[(1, 0)] is None

    def test_invalid_erasure(self, scripted):
        with pytest.raises(ConfigurationError, match="erasure"):
            scripted(pair_network(), {}, erasure=1.0)


class TestRunControl:
    def test_stop_on_full_coverage(self):
        net = pair_network()
        ScriptedProtocol.scripts = {
            0: [SlotDecision.listen(0), SlotDecision.transmit(0)],
            1: [SlotDecision.transmit(0), SlotDecision.listen(0)],
        }
        sim = SlottedSimulator(
            net,
            lambda nid, chs, rng: ScriptedProtocol(nid, chs, rng),
            RngFactory(0),
        )
        result = sim.run(StoppingCondition.slots(100))
        assert result.completed
        assert result.horizon == 2.0  # stopped right after coverage

    def test_budget_respected(self, scripted):
        _, result = scripted(pair_network(), {}, budget=7)
        assert result.horizon == 7.0
        assert not result.completed

    def test_result_metadata(self, scripted):
        _, result = scripted(pair_network(), {})
        assert result.metadata["engine"] == "slotted-reference"
        assert result.time_unit == "slots"
