"""Tests for the asymmetric communication-graph extension (§V(a))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net import build_asymmetric_network, channels
from repro.net.topology import DirectedTopology, asymmetric_random_geometric
from repro.sim.runner import run_asynchronous, run_synchronous


class TestDirectedTopology:
    def test_pairs_deduplicated_sorted(self):
        topo = DirectedTopology(3, [(1, 0), (0, 1), (1, 0)])
        assert topo.pairs == [(0, 1), (1, 0)]

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            DirectedTopology(2, [(0, 0)])

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown node"):
            DirectedTopology(2, [(0, 5)])

    def test_asymmetric_pair_count(self):
        topo = DirectedTopology(3, [(0, 1), (1, 0), (0, 2)])
        assert topo.asymmetric_pair_count == 1  # only (0, 2) is one-way


class TestAsymmetricGenerator:
    def test_strong_transmitter_reaches_further(self, rng):
        topo = asymmetric_random_geometric(
            25, min_range=0.05, max_range=0.8, rng=rng
        )
        # With such a spread of powers, some pairs must be one-way.
        assert topo.asymmetric_pair_count > 0
        assert topo.tx_ranges is not None
        assert all(0.05 <= r <= 0.8 for r in topo.tx_ranges.values())

    def test_pairs_respect_transmitter_range(self, rng):
        topo = asymmetric_random_geometric(
            15, min_range=0.1, max_range=0.5, rng=rng
        )
        for u, v in topo.pairs:
            ux, uy = topo.positions[u]
            vx, vy = topo.positions[v]
            dist = ((ux - vx) ** 2 + (uy - vy) ** 2) ** 0.5
            assert dist <= topo.tx_ranges[u] + 1e-12

    def test_equal_ranges_symmetric(self, rng):
        topo = asymmetric_random_geometric(
            15, min_range=0.4, max_range=0.4, rng=rng
        )
        assert topo.asymmetric_pair_count == 0

    def test_invalid_ranges(self, rng):
        with pytest.raises(ConfigurationError):
            asymmetric_random_geometric(5, 0.5, 0.4, rng)
        with pytest.raises(ConfigurationError):
            asymmetric_random_geometric(5, 0.0, 0.4, rng)

    def test_deterministic(self):
        a = asymmetric_random_geometric(10, 0.1, 0.6, np.random.default_rng(3))
        b = asymmetric_random_geometric(10, 0.1, 0.6, np.random.default_rng(3))
        assert a.pairs == b.pairs
        assert a.tx_ranges == b.tx_ranges


class TestAsymmetricNetwork:
    def make(self, rng):
        topo = asymmetric_random_geometric(
            12, min_range=0.2, max_range=0.7, rng=rng
        )
        assignment = channels.common_channel_plus_random(
            topo.num_nodes, universal_size=5, set_size=3, rng=rng
        )
        return build_asymmetric_network(topo, assignment), topo

    def test_links_follow_audibility(self, rng):
        network, topo = self.make(rng)
        assert not network.is_symmetric
        link_keys = {l.key for l in network.links()}
        for (u, v) in link_keys:
            assert (u, v) in set(topo.pairs)

    def test_one_way_links_exist(self, rng):
        network, _ = self.make(rng)
        keys = {l.key for l in network.links()}
        one_way = [k for k in keys if (k[1], k[0]) not in keys]
        assert one_way


class TestAsymmetricDiscovery:
    def make(self, seed=0):
        rng = np.random.default_rng(seed)
        topo = asymmetric_random_geometric(
            10, min_range=0.25, max_range=0.8, rng=rng
        )
        assignment = channels.common_channel_plus_random(
            topo.num_nodes, universal_size=4, set_size=2, rng=rng
        )
        return build_asymmetric_network(topo, assignment)

    def test_sync_discovery_exact(self):
        net = self.make()
        for engine in ("fast", "reference"):
            result = run_synchronous(
                net,
                "algorithm3",
                seed=7,
                max_slots=100_000,
                delta_est=max(2, net.max_degree),
                engine=engine,
            )
            assert result.completed, engine
            for nid in net.node_ids:
                expected = {
                    v: net.span(v, nid)
                    for v in net.discoverable_neighbors(nid)
                }
                assert result.neighbor_tables[nid] == expected, engine

    def test_async_discovery_exact(self):
        net = self.make(seed=1)
        result = run_asynchronous(
            net,
            seed=8,
            delta_est=max(2, net.max_degree),
            max_frames_per_node=200_000,
            drift_bound=0.05,
            start_spread=5.0,
        )
        assert result.completed
        for nid in net.node_ids:
            expected = {
                v: net.span(v, nid) for v in net.discoverable_neighbors(nid)
            }
            assert result.neighbor_tables[nid] == expected

    def test_one_way_neighbor_discovered_one_way(self):
        # Build an explicit 2-node one-way network: 1 hears 0 only.
        from repro.net import M2HeWNetwork, NodeSpec

        net = M2HeWNetwork(
            [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))],
            directed_adjacency=[(0, 1)],
        )
        result = run_synchronous(
            net, "algorithm3", seed=0, max_slots=10_000, delta_est=2
        )
        assert result.completed
        assert result.neighbor_tables[1] == {0: frozenset({0})}
        assert result.neighbor_tables[0] == {}
