"""Unit tests for repro.analysis.stats."""

from __future__ import annotations

import pytest

from repro.analysis.stats import (
    geometric_mean,
    mean,
    mean_confidence_interval,
    percentile,
    sample_std,
    summarize,
    wilson_interval,
)
from repro.exceptions import ConfigurationError


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ConfigurationError):
            mean([])

    def test_sample_std(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )
        assert sample_std([3.0]) == 0.0

    def test_percentile_interpolates(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0
        assert percentile(data, 50) == 2.5

    def test_percentile_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, -1.0])


class TestIntervals:
    def test_mean_ci_contains_mean(self):
        lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert lo < 3.0 < hi

    def test_mean_ci_degenerate(self):
        lo, hi = mean_confidence_interval([2.0, 2.0, 2.0])
        assert lo == hi == 2.0

    def test_wilson_basic(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_extremes_stay_in_unit_interval(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and hi < 0.25
        lo, hi = wilson_interval(20, 20)
        assert lo > 0.75 and hi == 1.0

    def test_wilson_narrows_with_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_wilson_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(11, 10)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.median == 3.0
        assert s.ci_low < 3.0 < s.ci_high

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert {"n", "mean", "std", "median", "p90"} <= set(d)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])
