"""Integration tests: the synchronous algorithms end to end.

These run full discovery on assorted networks and check the paper-level
guarantees: every node discovers exactly its true neighbors with exactly
the shared channel sets, under each algorithm and both engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import mean
from repro.core import bounds
from repro.net import build_network, channels, topology
from repro.sim.rng import RngFactory
from repro.sim.runner import random_start_offsets, run_synchronous, run_trials


def assert_tables_exact(network, result):
    """Discovered tables must equal ground truth exactly."""
    for nid in network.node_ids:
        expected = {
            v: network.span(v, nid) for v in network.discoverable_neighbors(nid)
        }
        assert result.neighbor_tables[nid] == expected, f"node {nid}"


def heterogeneous_net(seed=0):
    rng = np.random.default_rng(seed)
    topo = topology.random_geometric(
        15, radius=0.42, rng=rng, require_connected=True
    )
    assignment = channels.common_channel_plus_random(
        topo.num_nodes, universal_size=8, set_size=3, rng=rng
    )
    return build_network(topo, assignment)


class TestAlgorithm1:
    def test_full_discovery_and_exact_tables(self):
        net = heterogeneous_net()
        result = run_synchronous(
            net, "algorithm1", seed=1, max_slots=100_000, delta_est=16
        )
        assert result.completed
        assert_tables_exact(net, result)

    def test_reference_engine_same_guarantee(self):
        net = heterogeneous_net()
        result = run_synchronous(
            net,
            "algorithm1",
            seed=1,
            max_slots=100_000,
            delta_est=16,
            engine="reference",
        )
        assert result.completed
        assert_tables_exact(net, result)

    def test_completes_within_theorem1_budget(self):
        net = heterogeneous_net()
        epsilon = 0.1
        budget = bounds.theorem1_slot_budget(
            net.max_channel_set_size,
            net.max_degree,
            net.min_span_ratio,
            net.num_nodes,
            epsilon,
            delta_est=16,
        )
        results = run_trials(
            lambda seed: run_synchronous(
                net, "algorithm1", seed=seed, max_slots=budget, delta_est=16,
            ),
            num_trials=10,
            base_seed=42,
        )
        # Theorem 1: failure probability <= eps; with 10 trials expect
        # at least 9 empirical successes (and typically 10 — the bound
        # is loose).
        assert sum(r.completed for r in results) >= 9

    def test_loose_delta_est_costs_only_log(self):
        net = heterogeneous_net()

        def mean_time(delta_est):
            results = run_trials(
                lambda seed: run_synchronous(
                    net, "algorithm1", seed=seed, max_slots=200_000,
                    delta_est=delta_est,
                ),
                num_trials=8,
                base_seed=7,
            )
            return mean([r.completion_time for r in results])

    # A 16x larger estimate costs well under 16x the time (log factor).
        t16, t256 = mean_time(16), mean_time(256)
        assert t256 < 6 * t16


class TestAlgorithm2:
    def test_full_discovery_without_degree_knowledge(self):
        net = heterogeneous_net()
        result = run_synchronous(net, "algorithm2", seed=3, max_slots=200_000)
        assert result.completed
        assert_tables_exact(net, result)

    def test_no_knowledge_premium_over_algorithm1(self):
        net = heterogeneous_net()

        def mean_time(protocol, **kwargs):
            results = run_trials(
                lambda seed: run_synchronous(
                    net, protocol, seed=seed, max_slots=400_000, **kwargs
                ),
                num_trials=8,
                base_seed=11,
            )
            assert all(r.completed for r in results)
            return mean([r.completion_time for r in results])

        t1 = mean_time("algorithm1", delta_est=8)
        t2 = mean_time("algorithm2")
        # Algorithm 2 must eventually finish but pays for the growing
        # estimate phase.
        assert t2 > 0.5 * t1  # sanity: same order of magnitude range


class TestAlgorithm3:
    def test_full_discovery_with_staggered_starts(self):
        net = heterogeneous_net()
        offsets = random_start_offsets(
            net, 500, RngFactory(5).stream("offsets")
        )
        result = run_synchronous(
            net,
            "algorithm3",
            seed=5,
            max_slots=200_000,
            delta_est=8,
            start_offsets=offsets,
        )
        assert result.completed
        assert_tables_exact(net, result)

    def test_completes_within_theorem3_budget_after_ts(self):
        net = heterogeneous_net()
        epsilon = 0.1
        delta_est = 8
        budget = bounds.theorem3_slot_budget(
            net.max_channel_set_size,
            delta_est,
            net.min_span_ratio,
            net.num_nodes,
            epsilon,
        )

        def trial(seed):
            offsets = random_start_offsets(
                net, 200, RngFactory(seed).stream("offsets")
            )
            return run_synchronous(
                net,
                "algorithm3",
                seed=seed,
                max_slots=200 + 2 * budget,
                delta_est=delta_est,
                start_offsets=offsets,
            )

        results = run_trials(trial, num_trials=10, base_seed=23)
        ok = sum(
            1
            for r in results
            if r.completed and r.completion_after_all_started <= budget
        )
        assert ok >= 9

    def test_flat_beats_staged_with_tight_estimate(self):
        # With a tight degree bound, Algorithm 3 should beat Algorithm 1
        # (no log Delta_est stage factor) — the paper's Theorem 1 vs 3
        # comparison.
        net = heterogeneous_net()
        delta_est = max(2, net.max_degree)

        def mean_time(protocol):
            results = run_trials(
                lambda seed: run_synchronous(
                    net, protocol, seed=seed, max_slots=200_000, delta_est=delta_est
                ),
                num_trials=10,
                base_seed=31,
            )
            return mean([r.completion_time for r in results])

        assert mean_time("algorithm3") < mean_time("algorithm1")


class TestEngineAgreement:
    """Fast and reference engines implement identical semantics."""

    def test_statistical_agreement_on_completion_time(self):
        net = heterogeneous_net()

        def mean_time(engine, base_seed):
            results = run_trials(
                lambda seed: run_synchronous(
                    net,
                    "algorithm3",
                    seed=seed,
                    max_slots=100_000,
                    delta_est=8,
                    engine=engine,
                ),
                num_trials=12,
                base_seed=base_seed,
            )
            assert all(r.completed for r in results)
            return mean([r.completion_time for r in results])

        fast = mean_time("fast", 100)
        ref = mean_time("reference", 200)
        # Means agree within 35% — same distribution, different streams.
        assert abs(fast - ref) / max(fast, ref) < 0.35

    def test_same_tables_both_engines(self):
        net = heterogeneous_net()
        fast = run_synchronous(
            net, "algorithm3", seed=9, max_slots=100_000, delta_est=8
        )
        ref = run_synchronous(
            net,
            "algorithm3",
            seed=9,
            max_slots=100_000,
            delta_est=8,
            engine="reference",
        )
        assert fast.completed and ref.completed
        assert fast.neighbor_tables == ref.neighbor_tables


class TestHeterogeneityScaling:
    def test_time_grows_as_rho_shrinks(self):
        # Paper Section II: running time inversely proportional to rho.
        topo = topology.grid(3, 3)
        times = {}
        for overlap, set_size in ((4, 4), (1, 4)):
            rng = np.random.default_rng(0)
            assignment = channels.adversarial_min_overlap(
                topo, set_size=set_size, overlap=overlap, rng=rng
            )
            net = build_network(topo, assignment)
            results = run_trials(
                lambda seed: run_synchronous(
                    net, "algorithm3", seed=seed, max_slots=300_000, delta_est=8
                ),
                num_trials=8,
                base_seed=3,
            )
            assert all(r.completed for r in results)
            times[overlap] = mean([r.completion_time for r in results])
        # rho = 1 vs rho = 1/4: heterogeneous case clearly slower.
        assert times[1] > 1.5 * times[4]


class TestUnreliableChannels:
    def test_erasures_slow_but_do_not_break_discovery(self):
        net = heterogeneous_net()

        def mean_time(erasure):
            results = run_trials(
                lambda seed: run_synchronous(
                    net,
                    "algorithm3",
                    seed=seed,
                    max_slots=400_000,
                    delta_est=8,
                    erasure_prob=erasure,
                ),
                num_trials=6,
                base_seed=17,
            )
            assert all(r.completed for r in results)
            return mean([r.completion_time for r in results])

        clean = mean_time(0.0)
        lossy = mean_time(0.5)
        assert lossy > clean
