"""Unit tests for repro.analysis.energy and the engines' activity counters."""

from __future__ import annotations

import pytest

from repro.analysis.energy import EnergyModel, energy_report
from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.results import DiscoveryResult
from repro.sim.runner import run_asynchronous, run_synchronous


def make_result(activity, unit="slots", covered=1):
    coverage = {(0, i + 1): 1.0 for i in range(covered)}
    return DiscoveryResult(
        time_unit=unit,
        coverage=coverage,
        horizon=10.0,
        completed=True,
        neighbor_tables={},
        start_times={0: 0.0},
        network_params={},
        metadata={"radio_activity": activity},
    )


class TestEnergyModel:
    def test_energy_formula(self):
        model = EnergyModel(tx_watts=2.0, rx_watts=1.0, quiet_watts=0.1)
        assert model.energy(3.0, 4.0, 10.0) == pytest.approx(6 + 4 + 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(tx_watts=-1.0, rx_watts=1.0)

    def test_presets(self):
        cc = EnergyModel.cc2420()
        assert cc.rx_watts > cc.tx_watts > cc.quiet_watts
        unit = EnergyModel.unit()
        assert unit.energy(1.0, 2.0, 100.0) == 3.0


class TestEnergyReport:
    def test_slot_scaling(self):
        result = make_result({0: {"tx": 10, "rx": 20, "quiet": 5}})
        report = energy_report(result, EnergyModel.unit(), slot_seconds=0.01)
        node = report.per_node[0]
        assert node.tx_seconds == pytest.approx(0.1)
        assert node.rx_seconds == pytest.approx(0.2)
        assert node.joules == pytest.approx(0.3)

    def test_seconds_not_scaled(self):
        result = make_result({0: {"tx": 2.0, "rx": 3.0, "quiet": 0.0}}, unit="seconds")
        report = energy_report(result, EnergyModel.unit(), slot_seconds=99.0)
        assert report.per_node[0].joules == pytest.approx(5.0)

    def test_aggregates(self):
        result = make_result(
            {0: {"tx": 1, "rx": 1, "quiet": 0}, 1: {"tx": 3, "rx": 1, "quiet": 0}},
            covered=2,
        )
        report = energy_report(result, EnergyModel.unit())
        assert report.total_joules == pytest.approx(6.0)
        assert report.mean_joules == pytest.approx(3.0)
        assert report.max_joules == pytest.approx(4.0)
        assert report.joules_per_link == pytest.approx(3.0)

    def test_duty_cycle(self):
        result = make_result({0: {"tx": 1, "rx": 1, "quiet": 2}})
        report = energy_report(result, EnergyModel.unit())
        assert report.per_node[0].duty_cycle == pytest.approx(0.5)

    def test_missing_activity_metadata(self):
        result = make_result({0: {"tx": 1}})
        result.metadata.pop("radio_activity")
        with pytest.raises(ConfigurationError, match="radio_activity"):
            energy_report(result, EnergyModel.unit())

    def test_invalid_slot_seconds(self):
        result = make_result({0: {"tx": 1}})
        with pytest.raises(ConfigurationError, match="slot_seconds"):
            energy_report(result, EnergyModel.unit(), slot_seconds=0.0)

    def test_as_rows(self):
        result = make_result({0: {"tx": 1, "rx": 2, "quiet": 0}})
        rows = energy_report(result, EnergyModel.unit()).as_rows()
        assert rows[0]["node"] == 0
        assert {"tx_s", "rx_s", "joules", "duty_cycle"} <= set(rows[0])


class TestEngineCounters:
    @pytest.fixture
    def net(self):
        topo = topology.clique(4)
        return build_network(topo, channels.homogeneous(4, 2))

    def test_fast_engine_counts_every_active_slot(self, net):
        result = run_synchronous(
            net, "algorithm3", seed=0, max_slots=10_000, delta_est=8
        )
        activity = result.metadata["radio_activity"]
        slots = result.horizon
        for nid in net.node_ids:
            modes = activity[nid]
            assert modes["tx"] + modes["rx"] + modes["quiet"] == slots

    def test_reference_engine_counts_match_horizon(self, net):
        result = run_synchronous(
            net,
            "algorithm1",
            seed=0,
            max_slots=10_000,
            delta_est=8,
            engine="reference",
        )
        activity = result.metadata["radio_activity"]
        for nid in net.node_ids:
            modes = activity[nid]
            assert modes["tx"] + modes["rx"] + modes["quiet"] == result.horizon

    def test_offsets_reduce_counted_slots(self, net):
        result = run_synchronous(
            net,
            "algorithm3",
            seed=0,
            max_slots=10_000,
            delta_est=8,
            start_offsets={0: 50},
            engine="reference",
        )
        activity = result.metadata["radio_activity"]
        total0 = sum(activity[0].values())
        total1 = sum(activity[1].values())
        assert total0 == total1 - 50

    def test_async_engine_seconds(self, net):
        result = run_asynchronous(
            net, seed=0, delta_est=8, max_frames_per_node=50_000, drift_bound=0.0
        )
        activity = result.metadata["radio_activity"]
        for nid in net.node_ids:
            modes = activity[nid]
            active = modes["tx"] + modes["rx"] + modes["quiet"]
            assert active > 0
        report = energy_report(result, EnergyModel.cc2420())
        assert report.total_joules > 0

    def test_alg3_transmit_fraction_matches_probability(self, net):
        # p = min(1/2, 2/8) = 0.25: about a quarter of slots are tx.
        result = run_synchronous(
            net,
            "algorithm3",
            seed=1,
            max_slots=4000,
            delta_est=8,
            stop_on_full_coverage=False,
        )
        activity = result.metadata["radio_activity"]
        for nid in net.node_ids:
            frac = activity[nid]["tx"] / result.horizon
            assert frac == pytest.approx(0.25, abs=0.03)
