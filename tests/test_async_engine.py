"""Unit tests for the asynchronous engine (frames, drift, reception)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from repro.core.base import AsynchronousProtocol, FrameDecision, Mode
from repro.exceptions import ConfigurationError
from repro.net import M2HeWNetwork, NodeSpec
from repro.sim.async_engine import AsyncSimulator
from repro.sim.clock import ConstantDriftClock, PerfectClock
from repro.sim.rng import RngFactory
from repro.sim.stopping import StoppingCondition
from repro.sim.trace import ExecutionTrace


class ScriptedAsyncProtocol(AsynchronousProtocol):
    """Plays back fixed frame decisions, then listens on channel 0."""

    scripts: Dict[int, List[FrameDecision]] = {}

    def __init__(self, node_id, channels, rng):
        super().__init__(node_id, channels, rng)
        self._script = list(self.scripts.get(node_id, []))

    def decide_frame(self, local_frame):
        if local_frame < len(self._script):
            return self._script[local_frame]
        return FrameDecision(Mode.LISTEN, min(self.channels))


def pair_network():
    return M2HeWNetwork(
        [NodeSpec(0, frozenset({0})), NodeSpec(1, frozenset({0}))],
        adjacency=[(0, 1)],
    )


def triple_network():
    return M2HeWNetwork(
        [
            NodeSpec(0, frozenset({0})),
            NodeSpec(1, frozenset({0})),
            NodeSpec(2, frozenset({0})),
        ],
        adjacency=[(0, 1), (0, 2)],
    )


def run_scripted(
    network,
    scripts,
    frames=4,
    clocks=None,
    starts=None,
    erasure=0.0,
    trace=None,
    stop_on_cov=False,
):
    ScriptedAsyncProtocol.scripts = scripts
    sim = AsyncSimulator(
        network,
        lambda nid, chs, rng: ScriptedAsyncProtocol(nid, chs, rng),
        RngFactory(0),
        frame_length=3.0,
        clocks=clocks,
        start_times=starts,
        erasure_prob=erasure,
        trace=trace,
    )
    return sim.run(
        StoppingCondition(
            max_frames_per_node=frames, stop_on_full_coverage=stop_on_cov
        )
    )


T = FrameDecision(Mode.TRANSMIT, 0)
L = FrameDecision(Mode.LISTEN, 0)
Q = FrameDecision(Mode.QUIET, None)


class TestAlignedReception:
    def test_aligned_frames_deliver(self):
        result = run_scripted(pair_network(), {0: [L], 1: [T]})
        # Perfect clocks, same start: frames perfectly aligned.
        assert result.coverage[(1, 0)] is not None
        assert result.coverage[(0, 1)] is None

    def test_misaligned_but_contained_slot_delivers(self):
        # Node 1 starts 1.0s late: its slots [1,2), [2,3), [3,4) —
        # the first two fall inside node 0's listening frame [0, 3), and
        # coverage is stamped at the end of the first clear slot.
        result = run_scripted(
            pair_network(),
            {0: [L, L], 1: [T]},
            starts={0: 0.0, 1: 1.0},
        )
        assert result.coverage[(1, 0)] == pytest.approx(2.0)

    def test_slot_spanning_listen_boundary_lost(self):
        # Node 1 starts at 2.5: slots [2.5, 3.5), [3.5, 4.5), [4.5, 5.5).
        # Node 0 listens [0, 3) then transmits [3, 6): no slot of node 1
        # fits inside a listening frame of node 0.
        result = run_scripted(
            pair_network(),
            {0: [L, T, Q], 1: [T, Q, Q]},
            starts={0: 0.0, 1: 2.5},
        )
        assert result.coverage[(1, 0)] is None

    def test_collision_at_receiver(self):
        result = run_scripted(triple_network(), {0: [L], 1: [T], 2: [T]})
        assert result.coverage[(1, 0)] is None
        assert result.coverage[(2, 0)] is None

    def test_interferer_out_of_range_harmless(self):
        net = M2HeWNetwork(
            [
                NodeSpec(0, frozenset({0})),
                NodeSpec(1, frozenset({0})),
                NodeSpec(2, frozenset({0})),
            ],
            adjacency=[(0, 1)],  # node 2 out of range of 0
        )
        result = run_scripted(net, {0: [L], 1: [T], 2: [T]})
        assert result.coverage[(1, 0)] is not None

    def test_partial_overlap_interference_kills_slot(self):
        # Node 2 starts 0.5 late so its transmission slots straddle node
        # 1's slots — every slot of node 1 overlaps a slot of node 2, so
        # node 0 never hears a clean copy.
        result = run_scripted(
            triple_network(),
            {0: [L, L], 1: [T], 2: [T]},
            starts={0: 0.0, 1: 0.0, 2: 0.5},
        )
        assert result.coverage[(1, 0)] is None

    def test_transmitting_listener_misses(self):
        result = run_scripted(pair_network(), {0: [T], 1: [T]})
        assert result.coverage[(1, 0)] is None
        assert result.coverage[(0, 1)] is None

    def test_erasure_blocks(self):
        result = run_scripted(
            pair_network(), {0: [L, L], 1: [T, T]}, erasure=0.999999
        )
        assert result.coverage[(1, 0)] is None


class TestDriftingClocks:
    def test_fast_clock_shrinks_real_frames(self):
        trace = ExecutionTrace()
        clocks = {0: ConstantDriftClock(1 / 7, drift_bound=1 / 7), 1: PerfectClock()}
        run_scripted(pair_network(), {}, clocks=clocks, trace=trace, frames=3)
        fast_frames = trace.frames_of(0)
        slow_frames = trace.frames_of(1)
        assert fast_frames[0].duration == pytest.approx(3.0 / (1 + 1 / 7))
        assert slow_frames[0].duration == pytest.approx(3.0)

    def test_slow_clock_stretches_real_frames(self):
        trace = ExecutionTrace()
        clocks = {0: ConstantDriftClock(-1 / 7, drift_bound=1 / 7)}
        run_scripted(pair_network(), {}, clocks=clocks, trace=trace, frames=3)
        assert trace.frames_of(0)[0].duration == pytest.approx(3.0 / (1 - 1 / 7))

    def test_discovery_still_works_with_drift(self):
        clocks = {
            0: ConstantDriftClock(0.1, drift_bound=1 / 7),
            1: ConstantDriftClock(-0.1, drift_bound=1 / 7),
        }
        result = run_scripted(
            pair_network(),
            {0: [L] * 8 + [T] * 8, 1: [T] * 8 + [L] * 8},
            clocks=clocks,
            frames=16,
            stop_on_cov=True,
        )
        assert result.completed


class TestRunControl:
    def test_frame_budget_counts_full_frames_after_ts(self):
        result = run_scripted(
            pair_network(), {}, frames=5, starts={0: 0.0, 1: 7.0}
        )
        counts = result.metadata["full_frames_since_ts"]
        assert min(counts.values()) == 5

    def test_stop_on_full_coverage(self):
        result = run_scripted(
            pair_network(),
            {0: [L, T], 1: [T, L]},
            frames=50,
            stop_on_cov=True,
        )
        assert result.completed
        assert result.horizon < 10.0

    def test_max_real_time(self):
        ScriptedAsyncProtocol.scripts = {}
        sim = AsyncSimulator(
            pair_network(),
            lambda nid, chs, rng: ScriptedAsyncProtocol(nid, chs, rng),
            RngFactory(0),
            frame_length=3.0,
        )
        result = sim.run(
            StoppingCondition(max_real_time=10.0, stop_on_full_coverage=False)
        )
        assert result.horizon <= 10.0

    def test_needs_async_budget(self):
        sim = AsyncSimulator(
            pair_network(),
            lambda nid, chs, rng: ScriptedAsyncProtocol(nid, chs, rng),
            RngFactory(0),
        )
        with pytest.raises(ConfigurationError, match="asynchronous"):
            sim.run(StoppingCondition(max_slots=5))

    def test_t_s_is_last_start(self):
        ScriptedAsyncProtocol.scripts = {}
        sim = AsyncSimulator(
            pair_network(),
            lambda nid, chs, rng: ScriptedAsyncProtocol(nid, chs, rng),
            RngFactory(0),
            start_times={0: 1.0, 1: 4.0},
        )
        assert sim.all_started_time == 4.0

    def test_invalid_params(self):
        factory = lambda nid, chs, rng: ScriptedAsyncProtocol(nid, chs, rng)
        with pytest.raises(ConfigurationError, match="frame_length"):
            AsyncSimulator(pair_network(), factory, RngFactory(0), frame_length=0.0)
        with pytest.raises(ConfigurationError, match="start time"):
            AsyncSimulator(
                pair_network(), factory, RngFactory(0), start_times={0: -1.0}
            )


class TestTraceRecording:
    def test_frames_recorded_with_slots(self):
        trace = ExecutionTrace()
        run_scripted(pair_network(), {0: [T]}, trace=trace, frames=2)
        frames = trace.frames_of(0)
        assert frames[0].mode is Mode.TRANSMIT
        assert frames[0].num_slots == 3
        assert frames[0].slot_bounds == (0.0, 1.0, 2.0, 3.0)
