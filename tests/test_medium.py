"""Unit tests for repro.sim.medium."""

from __future__ import annotations

import pytest

from repro.core.messages import HelloMessage
from repro.exceptions import SimulationError
from repro.sim.medium import Medium, Transmission


def tx(sender, channel=0, start=0.0, end=1.0):
    return Transmission(
        sender=sender,
        channel=channel,
        start=start,
        end=end,
        message=HelloMessage(sender, frozenset({channel})),
    )


class TestTransmission:
    def test_duration_validated(self):
        with pytest.raises(SimulationError, match="duration"):
            tx(0, start=2.0, end=2.0)

    def test_overlaps_interval_strict(self):
        t = tx(0, start=1.0, end=2.0)
        assert t.overlaps_interval(1.5, 3.0)
        assert t.overlaps_interval(0.0, 1.5)
        assert not t.overlaps_interval(2.0, 3.0)  # touching boundary
        assert not t.overlaps_interval(0.0, 1.0)

    def test_interferers_filters_by_audibility(self):
        t = tx(0, start=0.0, end=1.0)
        noisy = tx(1, start=0.5, end=1.5)
        silent_far = tx(2, start=0.5, end=1.5)
        t.overlapped.extend([noisy, silent_far])
        assert t.interferers(audible={1}) == [1]
        assert t.interferers(audible={1, 2}) == [1, 2]
        assert t.interferers(audible=set()) == []

    def test_interferers_excludes_own_sender(self):
        t = tx(0)
        t.overlapped.append(tx(0, start=0.5, end=1.5))
        assert t.interferers(audible={0}) == []

    def test_interferers_excludes_boundary_touchers(self):
        t = tx(0, start=0.0, end=1.0)
        toucher = tx(1, start=1.0, end=2.0)
        t.overlapped.append(toucher)  # registered but not truly overlapping
        assert t.interferers(audible={1}) == []


class TestMedium:
    def test_begin_links_overlaps_both_ways(self):
        medium = Medium()
        a, b = tx(0), tx(1, start=0.5, end=1.5)
        medium.begin(a)
        medium.begin(b)
        assert b in a.overlapped
        assert a in b.overlapped

    def test_channels_isolated(self):
        medium = Medium()
        a, b = tx(0, channel=0), tx(1, channel=1)
        medium.begin(a)
        medium.begin(b)
        assert a.overlapped == []
        assert b.overlapped == []

    def test_end_removes_from_active(self):
        medium = Medium()
        a = tx(0)
        medium.begin(a)
        assert medium.total_active == 1
        medium.end(a)
        assert medium.total_active == 0

    def test_ended_transmission_no_longer_linked(self):
        medium = Medium()
        a = tx(0, start=0.0, end=1.0)
        medium.begin(a)
        medium.end(a)
        later = tx(1, start=2.0, end=3.0)
        medium.begin(later)
        assert later.overlapped == []

    def test_end_unknown_raises(self):
        medium = Medium()
        with pytest.raises(SimulationError, match="unknown transmission"):
            medium.end(tx(0))

    def test_active_on(self):
        medium = Medium()
        a = tx(0, channel=3)
        medium.begin(a)
        assert medium.active_on(3) == [a]
        assert medium.active_on(4) == []
