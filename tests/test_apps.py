"""Tests for the downstream applications (clustering, link scheduling)."""

from __future__ import annotations

import pytest

from repro.apps.clustering import lowest_id_clusters
from repro.apps.link_scheduling import schedule_links
from repro.exceptions import ConfigurationError
from repro.net import build_network, channels, topology
from repro.sim.runner import run_synchronous


def tables_from(pairs, channel=0):
    """Symmetric neighbor tables from undirected pairs on one channel."""
    nodes = {n for p in pairs for n in p}
    tables = {n: {} for n in nodes}
    for u, v in pairs:
        tables[u][v] = frozenset({channel})
        tables[v][u] = frozenset({channel})
    return tables


class TestLowestIdClusters:
    def test_line_graph(self):
        # 0-1-2-3: 0 is head (smallest); 1 joins 0; 2 cannot join 0
        # (not a neighbor) so becomes head; 3 joins 2.
        clusters = lowest_id_clusters(tables_from([(0, 1), (1, 2), (2, 3)]))
        assert clusters.head_of == {0: 0, 1: 0, 2: 2, 3: 2}
        assert clusters.num_clusters == 2
        assert clusters.cluster_of(3) == {2, 3}

    def test_star_single_cluster(self):
        clusters = lowest_id_clusters(
            tables_from([(0, 1), (0, 2), (0, 3)])
        )
        assert clusters.heads == {0}
        assert clusters.members_of[0] == {0, 1, 2, 3}

    def test_isolated_node_singleton(self):
        tables = tables_from([(0, 1)])
        tables[9] = {}
        clusters = lowest_id_clusters(tables)
        assert clusters.head_of[9] == 9
        assert clusters.members_of[9] == {9}

    def test_one_way_discovery_ignored(self):
        # 1 discovered 0 but 0 did not discover 1: no bidirectional edge.
        tables = {0: {}, 1: {0: frozenset({0})}}
        clusters = lowest_id_clusters(tables)
        assert clusters.num_clusters == 2

    def test_every_member_hears_its_head(self):
        tables = tables_from(
            [(0, 1), (1, 2), (0, 3), (3, 4), (4, 5), (2, 5)]
        )
        clusters = lowest_id_clusters(tables)
        for nid, head in clusters.head_of.items():
            if nid != head:
                assert head in tables[nid]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            lowest_id_clusters({})


class TestScheduleLinks:
    def test_shared_endpoint_different_slots(self):
        schedule = schedule_links(tables_from([(0, 1), (1, 2)]))
        (s1, c1) = schedule.assignment[(0, 1)]
        (s2, c2) = schedule.assignment[(1, 2)]
        assert c1 == c2 == 0
        assert s1 != s2  # node 1 is in both links

    def test_both_directions_scheduled(self):
        schedule = schedule_links(tables_from([(0, 1)]))
        assert (0, 1) in schedule.assignment
        assert (1, 0) in schedule.assignment
        # Opposite directions share an endpoint: distinct slots.
        assert (
            schedule.assignment[(0, 1)][0] != schedule.assignment[(1, 0)][0]
        )

    def test_distant_links_share_slot(self):
        # 0-1   2-3 (disconnected): same channel, no interference.
        schedule = schedule_links(tables_from([(0, 1), (2, 3)]))
        slots_01 = schedule.assignment[(0, 1)][0]
        slots_23 = schedule.assignment[(2, 3)][0]
        assert slots_01 == slots_23

    def test_different_channels_share_slot(self):
        tables = {
            0: {1: frozenset({0})},
            1: {0: frozenset({0}), 2: frozenset({1})},
            2: {1: frozenset({1})},
        }
        schedule = schedule_links(tables)
        # (0,1) on channel 0 and (1,2) on channel 1 share node 1: still
        # distinct slots (half duplex). But (0,1) and (2,1)... check the
        # channel separation on non-adjacent case instead:
        assert schedule.assignment[(0, 1)][1] == 0
        assert schedule.assignment[(1, 2)][1] == 1

    def test_interference_separated(self):
        # Triangle: every link conflicts with every other (shared nodes
        # or audible transmitters): 6 directed links need 6... at least
        # more than 2 slots; verify no conflicting pair shares a slot by
        # replay below.
        schedule = schedule_links(tables_from([(0, 1), (1, 2), (0, 2)]))
        assert schedule.num_slots >= 3

    def test_throughput(self):
        schedule = schedule_links(tables_from([(0, 1), (2, 3)]))
        assert schedule.throughput == pytest.approx(
            len(schedule.assignment) / schedule.num_slots
        )

    def test_no_bidirectional_links_rejected(self):
        with pytest.raises(ConfigurationError, match="bidirectional"):
            schedule_links({0: {}, 1: {0: frozenset({0})}})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_links({})


class TestEndToEndPipeline:
    """Discovery output drives the applications; the schedule is then
    replayed against the TRUE network to certify collision freedom."""

    @pytest.fixture
    def discovered(self):
        import numpy as np

        rng = np.random.default_rng(0)
        topo = topology.random_geometric(
            12, radius=0.45, rng=rng, require_connected=True
        )
        net = build_network(
            topo, channels.common_channel_plus_random(12, 6, 3, rng)
        )
        result = run_synchronous(
            net, "algorithm3", seed=5, max_slots=100_000, delta_est=8
        )
        assert result.completed
        return net, result.neighbor_tables

    def test_clustering_covers_all_nodes(self, discovered):
        net, tables = discovered
        clusters = lowest_id_clusters(tables)
        assert set(clusters.head_of) == set(net.node_ids)
        # Heads dominate: every non-head member discovered its head.
        for nid, head in clusters.head_of.items():
            if nid != head:
                assert head in tables[nid]

    def test_schedule_is_collision_free_on_true_network(self, discovered):
        net, tables = discovered
        schedule = schedule_links(tables)
        # Replay: in each slot, per channel, collect transmitters and
        # verify every scheduled receiver hears exactly its transmitter.
        for slot in range(schedule.num_slots):
            active = schedule.links_in_slot(slot)
            tx_on: dict = {}
            for (t, r), c in active:
                tx_on.setdefault(c, []).append((t, r))
            for c, links in tx_on.items():
                transmitters = {t for t, _ in links}
                nodes_in_links = [n for t, r in links for n in (t, r)]
                assert len(nodes_in_links) == len(set(nodes_in_links))
                for t, r in links:
                    audible = net.hears_on(r, c) & transmitters
                    assert audible == {t}, (slot, c, t, r)

    def test_schedule_covers_every_true_link(self, discovered):
        net, tables = discovered
        schedule = schedule_links(tables)
        scheduled = set(schedule.assignment)
        for link in net.links():
            assert link.key in scheduled
