"""Unit tests for repro.sim.results."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.sim.results import DiscoveryResult


def make_result(coverage, horizon=100.0, starts=None, unit="slots"):
    starts = starts or {0: 0.0, 1: 0.0}
    completed = all(t is not None for t in coverage.values())
    return DiscoveryResult(
        time_unit=unit,
        coverage=coverage,
        horizon=horizon,
        completed=completed,
        neighbor_tables={},
        start_times=starts,
        network_params={"N": 2},
    )


class TestValidation:
    def test_unknown_unit_rejected(self):
        with pytest.raises(SimulationError, match="unknown time unit"):
            make_result({(0, 1): 5.0}, unit="fortnights")

    def test_inconsistent_completed_flag_rejected(self):
        with pytest.raises(SimulationError, match="inconsistent"):
            DiscoveryResult(
                time_unit="slots",
                coverage={(0, 1): None},
                horizon=10.0,
                completed=True,
                neighbor_tables={},
                start_times={},
                network_params={},
            )


class TestSummaries:
    def test_completion_time_is_last_coverage(self):
        r = make_result({(0, 1): 5.0, (1, 0): 9.0})
        assert r.completed
        assert r.completion_time == 9.0

    def test_incomplete_run(self):
        r = make_result({(0, 1): 5.0, (1, 0): None})
        assert not r.completed
        assert r.completion_time is None
        assert r.coverage_fraction == 0.5
        assert r.uncovered_links() == [(1, 0)]

    def test_completion_after_all_started(self):
        r = make_result({(0, 1): 20.0}, starts={0: 0.0, 1: 15.0})
        assert r.last_start_time == 15.0
        assert r.completion_after_all_started == 5.0

    def test_completion_after_all_started_clamped_to_zero(self):
        # A link covered before the last node started.
        r = make_result({(0, 1): 3.0}, starts={0: 0.0, 1: 10.0})
        assert r.completion_after_all_started == 0.0

    def test_quantiles(self):
        cov = {(0, i): float(i) for i in range(1, 11)}
        r = make_result(cov)
        assert r.coverage_time_quantile(0.5) == 5.0
        assert r.coverage_time_quantile(1.0) == 10.0

    def test_quantile_unreached(self):
        r = make_result({(0, 1): 1.0, (1, 0): None})
        assert r.coverage_time_quantile(1.0) is None
        assert r.coverage_time_quantile(0.5) == 1.0

    def test_quantile_range_checked(self):
        r = make_result({(0, 1): 1.0})
        with pytest.raises(SimulationError):
            r.coverage_time_quantile(0.0)

    def test_per_node_completion(self):
        cov = {(1, 0): 4.0, (2, 0): 8.0, (0, 1): None}
        r = make_result(cov)
        per_node = r.per_node_completion()
        assert per_node[0] == 8.0
        assert per_node[1] is None

    def test_empty_coverage_complete(self):
        r = make_result({})
        assert r.completed
        assert r.coverage_fraction == 1.0
        assert r.completion_time == 0.0

    def test_summary_keys(self):
        r = make_result({(0, 1): 1.0})
        assert {"time_unit", "links", "covered", "completed"} <= set(r.summary())
