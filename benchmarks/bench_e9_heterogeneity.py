"""E9 — §I-II heterogeneity cost: 1/ρ scaling and the universal-set trap.

Two claims from the paper's introduction and model sections:

1. Running time is inversely proportional to the minimum span-ratio ρ
   (the heterogeneity measure): shrinking every link's span slows
   discovery proportionally.
2. The related-work universal-sweep construction pays Θ(|U|) even when
   all nodes share a common channel and the rest of U is dead spectrum;
   the paper's Algorithm 3 tracks only the available sets.

Output: (a) mean completion vs ρ on a grid with adversarially controlled
span; (b) universal sweep vs Algorithm 3 as |U| grows with available
sets fixed.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table
from repro.analysis.stats import mean
from repro.net import build_network, channels, topology
from repro.sim.runner import run_synchronous, run_trials

TRIALS = 10
SET_SIZE = 4
OVERLAPS = (4, 2, 1)  # rho = 1, 1/2, 1/4
UNIVERSALS = (13, 25, 49)


def rho_sweep():
    topo = topology.grid(3, 3)
    rows = []
    means = {}
    for overlap in OVERLAPS:
        rng = np.random.default_rng(909)
        assignment = channels.adversarial_min_overlap(
            topo, set_size=SET_SIZE, overlap=overlap, rng=rng
        )
        net = build_network(topo, assignment)
        results = run_trials(
            lambda seed: run_synchronous(
                net, "algorithm3", seed=seed, max_slots=500_000, delta_est=8
            ),
            num_trials=TRIALS,
            base_seed=910,
        )
        assert all(r.completed for r in results)
        m = mean([r.completion_time for r in results])
        means[overlap] = m
        rows.append(
            {
                "rho": round(overlap / SET_SIZE, 3),
                "span": overlap,
                "mean_slots": round(m, 1),
                "slots_x_rho": round(m * overlap / SET_SIZE, 1),
            }
        )
    return rows, means


def universal_trap():
    rows = []
    times = {}
    for universal in UNIVERSALS:
        rng = np.random.default_rng(911)
        num_nodes = 6
        topo = topology.clique(num_nodes)
        assignment = channels.single_common_channel(
            num_nodes, universal, 3, rng
        )
        net = build_network(topo, assignment)
        # The strawman's agreed universal set is the whole spectrum the
        # radios could operate on — including channels no node currently
        # has available (that is precisely its Section I weakness).
        universal_order = list(range(universal))

        def sweep_trial(seed):
            return run_synchronous(
                net,
                "universal_sweep",
                seed=seed,
                max_slots=500_000,
                delta_est=8,
                engine="reference",
                universal_channels=universal_order,
            )

        def alg3_trial(seed):
            return run_synchronous(
                net, "algorithm3", seed=seed, max_slots=500_000, delta_est=8
            )

        sweep = run_trials(sweep_trial, num_trials=TRIALS, base_seed=912)
        alg3 = run_trials(alg3_trial, num_trials=TRIALS, base_seed=913)
        assert all(r.completed for r in sweep + alg3)
        m_sweep = mean([r.completion_time for r in sweep])
        m_alg3 = mean([r.completion_time for r in alg3])
        times[universal] = (m_sweep, m_alg3)
        rows.append(
            {
                "|U|": universal,
                "sweep_mean_slots": round(m_sweep, 1),
                "alg3_mean_slots": round(m_alg3, 1),
                "sweep/alg3": round(m_sweep / m_alg3, 2),
            }
        )
    return rows, times


def run_experiment():
    rho_rows, rho_means = rho_sweep()
    trap_rows, trap_times = universal_trap()
    emit_table(
        "e9_rho",
        rho_rows,
        title=(
            "E9a — Algorithm 3 completion vs rho (3x3 grid, |A| = 4, "
            "adversarial span)"
        ),
    )
    emit_table(
        "e9_universal",
        trap_rows,
        title=(
            "E9b — universal sweep vs Algorithm 3 with one common channel "
            "and growing dead spectrum (6-node clique, |A| = 3)"
        ),
    )
    return rho_means, trap_times


@pytest.mark.benchmark(group="e9")
def test_e9_heterogeneity(benchmark):
    rho_means, trap_times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # (1) time grows as rho shrinks, as the power law 1/rho: fit the
    # exponent of mean-time vs rho.
    from repro.analysis.regression import fit_power_law

    assert rho_means[1] > rho_means[2] > rho_means[4]
    rhos = [overlap / SET_SIZE for overlap in OVERLAPS]
    times = [rho_means[overlap] for overlap in OVERLAPS]
    fit = fit_power_law(rhos, times)
    assert fit.exponent == pytest.approx(-1.0, abs=0.35)
    assert fit.r_squared > 0.9
    # (2) the sweep degrades with |U| while Algorithm 3 does not.
    sweep_small, alg3_small = trap_times[UNIVERSALS[0]]
    sweep_big, alg3_big = trap_times[UNIVERSALS[-1]]
    assert sweep_big > 2.0 * sweep_small
    assert alg3_big < 2.0 * alg3_small
    assert sweep_big > alg3_big
