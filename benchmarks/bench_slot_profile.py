"""Slot-phase profile — where a simulated slot's time goes.

Runs the N=500 campaign from ``bench_batched.py`` once per engine with
``profile=True`` and records each engine's per-phase breakdown
(``schedule`` / ``rng`` / ``channel`` / ``reception`` / ``delivery`` /
``result`` — seconds, lap count, share of total) in
``BENCH_slot_profile.json`` at the repo root. This is the regression
map for the kernel: when a future change slows a campaign down, the
two snapshots here say which phase moved, instead of leaving a single
opaque total to bisect.

The profiler is observational by contract — it never touches RNG
streams or results — so the pytest gate also re-runs both engines
unprofiled and asserts the results are identical. That pins the
"profiling cannot perturb a run" guarantee with real campaigns, not
just unit fixtures.

Run directly (``PYTHONPATH=src python benchmarks/bench_slot_profile.py``)
or via pytest-benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _helpers import emit_bench_record, emit_table
from bench_batched import BASE_SEED, PROTOCOL, TRIALS, _network
from repro.sim.batched import BatchedSlottedSimulator
from repro.sim.fast_slotted import FastSlottedSimulator
from repro.sim.profile import PHASES
from repro.sim.rng import RngFactory, derive_trial_seed
from repro.sim.runner import _vector_schedule
from repro.sim.stopping import StoppingCondition

#: The bench point: the N=500 row of ``bench_batched.SIZES`` — large
#: enough that every phase does real work (sparse reception, multi-KB
#: RNG draws), small enough to profile in seconds.
NUM_NODES = 500
UNIVERSAL = 12
PER_NODE = 4
SLOTS = 500
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_slot_profile.json"


def _factories():
    return [
        RngFactory(derive_trial_seed(BASE_SEED, i)) for i in range(TRIALS)
    ]


def _profiled_runs():
    net = _network(NUM_NODES, UNIVERSAL, PER_NODE)
    schedule = _vector_schedule(PROTOCOL, net, NUM_NODES)
    stopping = StoppingCondition(max_slots=SLOTS, stop_on_full_coverage=False)

    serial_results = []
    serial_profiles = []
    for factory in _factories():
        sim = FastSlottedSimulator(net, schedule, factory, profile=True)
        serial_results.append(sim.run(stopping))
        serial_profiles.append(sim.profile())

    batched = BatchedSlottedSimulator(
        net, schedule, _factories(), profile=True
    )
    batched_results = batched.run(stopping)
    batched_profile = batched.profile()

    # Fold the per-trial serial snapshots into one campaign-level view
    # so the two engines' breakdowns are directly comparable.
    serial_profile = {}
    for snap in serial_profiles:
        for phase, cell in snap.items():
            agg = serial_profile.setdefault(
                phase, {"seconds": 0.0, "laps": 0.0}
            )
            agg["seconds"] += cell["seconds"]
            agg["laps"] += cell["laps"]
    total = sum(c["seconds"] for c in serial_profile.values())
    for cell in serial_profile.values():
        cell["share"] = cell["seconds"] / total if total > 0 else 0.0

    return {
        "serial": {"profile": serial_profile, "results": serial_results},
        "batched": {"profile": batched_profile, "results": batched_results},
        "context": (net, schedule, stopping),
    }


def _phase_rows(profile):
    ordered = [p for p in PHASES if p in profile]
    ordered += sorted(set(profile) - set(PHASES))
    return [
        {
            "phase": phase,
            "seconds": round(profile[phase]["seconds"], 4),
            "laps": int(profile[phase]["laps"]),
            "share": round(profile[phase]["share"], 3),
        }
        for phase in ordered
    ]


def run_experiment() -> dict:
    runs = _profiled_runs()
    net, schedule, stopping = runs["context"]

    # The observational contract: profiled campaigns must reproduce
    # unprofiled ones exactly.
    plain_serial = [
        FastSlottedSimulator(net, schedule, factory).run(stopping)
        for factory in _factories()
    ]
    plain_batched = BatchedSlottedSimulator(
        net, schedule, _factories()
    ).run(stopping)

    record = {
        "benchmark": "slot_profile",
        "protocol": PROTOCOL,
        "trials": TRIALS,
        "base_seed": BASE_SEED,
        "num_nodes": NUM_NODES,
        "slots": SLOTS,
        "serial_phases": _phase_rows(runs["serial"]["profile"]),
        "batched_phases": _phase_rows(runs["batched"]["profile"]),
        "profile_identical": (
            runs["serial"]["results"] == plain_serial
            and runs["batched"]["results"] == plain_batched
        ),
    }
    emit_bench_record(BENCH_PATH, record)
    for side in ("serial", "batched"):
        emit_table(
            f"slot_profile_{side}",
            record[f"{side}_phases"],
            title=(
                f"Slot phases ({side}) — N={NUM_NODES}, "
                f"{SLOTS} slots, {TRIALS} trials"
            ),
            columns=["phase", "seconds", "laps", "share"],
        )
    return record


@pytest.mark.benchmark(group="slot_profile")
def test_slot_profile(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert record["profile_identical"]
    for side in ("serial_phases", "batched_phases"):
        rows = record[side]
        phases = {r["phase"] for r in rows}
        # Every hot-loop phase must have been charged at least once —
        # a missing phase means an engine dropped its lap marks.
        assert set(PHASES) <= phases, (side, phases)
        assert all(r["laps"] > 0 for r in rows)
        assert abs(sum(r["share"] for r in rows) - 1.0) < 0.01


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
