"""E17 (extension) — downstream pipeline quality vs discovery completeness.

The §I motivation is that discovery output *feeds* clustering, MAC and
scheduling. This experiment quantifies what incomplete discovery costs
downstream: run Algorithm 3 for increasing slot budgets (so tables go
from sparse to complete), then build clusters and a collision-free link
schedule from whatever was discovered, and measure

1. link coverage of the tables,
2. how many true links the TDMA schedule can serve,
3. schedule throughput (links per slot),
4. cluster count (over-fragmented when tables are sparse).

The headline result: a schedule built from *partial* tables is NOT
safe — a transmitter the receiver has not yet discovered is an unknown
interferer and gets co-scheduled, producing real collisions on the true
network. Only *complete* discovery yields a certifiably collision-free
schedule. Discovery completeness is therefore a safety property for the
MAC layer, not just a performance metric — which is precisely why the
paper's with-high-probability completeness guarantees matter.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.apps import lowest_id_clusters, schedule_links
from repro.exceptions import ConfigurationError
from repro.sim.runner import run_synchronous

BUDGETS = (10, 40, 160, 100_000)


def schedule_is_collision_free(net, schedule) -> bool:
    for slot in range(schedule.num_slots):
        per_channel: dict = {}
        for (t, r), c in schedule.links_in_slot(slot):
            per_channel.setdefault(c, []).append((t, r))
        for c, links in per_channel.items():
            transmitters = {t for t, _ in links}
            for t, r in links:
                if net.hears_on(r, c) & transmitters != {t}:
                    return False
    return True


def run_experiment():
    net = heterogeneous_net()
    delta_est = max(2, net.max_degree)
    total_links = net.num_links

    rows = []
    stats = {}
    for budget in BUDGETS:
        result = run_synchronous(
            net,
            "algorithm3",
            seed=17,
            max_slots=budget,
            delta_est=delta_est,
            stop_on_full_coverage=True,
        )
        tables = result.neighbor_tables
        coverage = result.coverage_fraction
        clusters = lowest_id_clusters(tables)
        try:
            schedule = schedule_links(tables)
            scheduled = len(schedule.assignment)
            throughput = schedule.throughput
            clean = schedule_is_collision_free(net, schedule)
        except ConfigurationError:
            scheduled, throughput, clean = 0, 0.0, True
        stats[budget] = (coverage, scheduled, clusters.num_clusters, clean)
        rows.append(
            {
                "discovery_slots": budget if budget < 100_000 else "to completion",
                "link_coverage": round(coverage, 3),
                "scheduled_links": f"{scheduled}/{total_links}",
                "tdma_links_per_slot": round(throughput, 2),
                "clusters": clusters.num_clusters,
                "schedule_collision_free": clean,
            }
        )

    emit_table(
        "e17_pipeline",
        rows,
        title=(
            f"E17 — downstream pipeline vs discovery budget on "
            f"N={net.num_nodes} ({total_links} true links)"
        ),
    )
    return stats, total_links


@pytest.mark.benchmark(group="e17")
def test_e17_pipeline(benchmark):
    stats, total_links = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    budgets = sorted(stats)
    # Coverage and scheduled links grow with the budget.
    coverages = [stats[b][0] for b in budgets]
    scheduled = [stats[b][1] for b in budgets]
    assert coverages == sorted(coverages)
    assert scheduled == sorted(scheduled)
    # Full discovery serves every true link.
    assert stats[budgets[-1]][0] == 1.0
    assert stats[budgets[-1]][1] == total_links
    # Sparse tables over-fragment the clustering.
    assert stats[budgets[0]][2] >= stats[budgets[-1]][2]
    # Safety: COMPLETE discovery certifies collision-free scheduling...
    assert stats[budgets[-1]][3]
    # ...and at least one partial-table schedule actually collides on
    # the true network (unknown interferers get co-scheduled) — the
    # reason discovery completeness is a MAC-layer safety property.
    partial = [b for b in budgets if stats[b][0] < 1.0]
    assert any(not stats[b][3] for b in partial)
