"""E6 — Lemma 7 (and Figures 1, 3, 4): aligned pairs among next frames.

Claim: for any instant T after all nodes start, among the first two full
frames of any two neighbors after T, some pair is aligned (one
transmitted slot fits inside the other's listening frame) — provided
δ ≤ 1/7. The guarantee degrades and eventually vanishes as the drift
rate grows past the assumption.

Output: fraction of reference instants T at which alignment holds, per
drift level, on adversarial clock pairs (the transmitter slow, the
receiver fast — the hard direction) and random engine traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis import alignment
from repro.sim.clock import ConstantDriftClock
from repro.sim.runner import run_asynchronous
from repro.sim.trace import ExecutionTrace

DRIFTS = (0.0, 0.05, 1.0 / 7.0, 0.25, 0.6)
FRAMES = 500


def synthetic_holds_fraction(delta: float) -> float:
    holds = checked = 0
    for offset in (0.0, 0.23, 0.61, 0.97):
        # Hard direction: transmitter's clock slow (long slots),
        # receiver's clock fast (short frames).
        fv = alignment.synthesize_frames(
            ConstantDriftClock(-delta, drift_bound=max(delta, 1e-12)),
            1.0, 0.0, FRAMES, node_id=0,
        )
        gu = alignment.synthesize_frames(
            ConstantDriftClock(delta, drift_bound=max(delta, 1e-12)),
            1.0, offset, FRAMES, node_id=1,
        )
        h, c, _ = alignment.scan_lemma7(
            fv, gu, np.linspace(0.0, FRAMES * 0.5, 300)
        )
        holds += h
        checked += c
    return holds / checked if checked else float("nan")


def engine_holds_fraction(delta: float) -> float:
    net = heterogeneous_net(num_nodes=6, radius=0.7, universal=4, set_size=2)
    trace = ExecutionTrace()
    run_asynchronous(
        net,
        seed=66,
        delta_est=8,
        max_frames_per_node=250,
        drift_bound=delta,
        clock_model="constant",
        start_spread=6.0,
        stop_on_full_coverage=False,
        trace=trace,
    )
    holds = checked = 0
    nodes = trace.node_ids
    times = np.linspace(6.0, 100.0, 40)
    for v in nodes[:3]:
        for u in nodes[:3]:
            if v == u:
                continue
            h, c, _ = alignment.scan_lemma7(
                trace.frames_of(v), trace.frames_of(u), times
            )
            holds += h
            checked += c
    return holds / checked if checked else float("nan")


def run_experiment():
    rows = []
    for delta in DRIFTS:
        rows.append(
            {
                "drift": round(delta, 4),
                "within_assumption": delta <= 1.0 / 7.0 + 1e-12,
                "holds_synthetic": round(synthetic_holds_fraction(delta), 4),
                "holds_engine": round(engine_holds_fraction(delta), 4),
            }
        )
    emit_table(
        "e6_alignment",
        rows,
        title=(
            "E6 / Lemma 7 — fraction of instants with an aligned pair "
            "among the next two full frames of two neighbors"
        ),
    )
    return rows


@pytest.mark.benchmark(group="e6")
def test_e6_alignment(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        if row["within_assumption"]:
            # Lemma 7 is deterministic under Assumption 1: 100%.
            assert row["holds_synthetic"] == 1.0, row
            assert row["holds_engine"] == 1.0, row
    # At delta = 0.6 the slow-transmitter/fast-receiver pair never aligns.
    worst = [r for r in rows if r["drift"] == 0.6][0]
    assert worst["holds_synthetic"] < 1.0
