"""E3 — Theorem 3: Algorithm 3 under variable start times.

Claim: with a flat transmission probability, discovery completes within
``O((max(2S, Δ_est)/ρ) · log(N/ε))`` slots *after the last node starts*
(T_s), with no dependence on how staggered the starts are and no
``log Δ_est`` stage factor.

Output: one row per stagger width; completion measured relative to T_s
against the Theorem 3 budget; plus a flat-vs-staged comparison row.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis.theory import compare_to_bound
from repro.core import bounds
from repro.sim.rng import RngFactory
from repro.sim.runner import random_start_offsets, run_synchronous, run_trials

EPSILON = 0.1
TRIALS = 15
STAGGERS = (0, 200, 2000)


def run_experiment():
    net = heterogeneous_net()
    s, d = net.max_channel_set_size, net.max_degree
    rho, n = net.min_span_ratio, net.num_nodes
    delta_est = max(2, d)
    budget = bounds.theorem3_slot_budget(s, delta_est, rho, n, EPSILON)

    rows = []
    comparisons = {}
    for stagger in STAGGERS:
        def trial(seed, width=stagger):
            offsets = None
            if width > 0:
                offsets = random_start_offsets(
                    net, width, RngFactory(seed).stream("offsets")
                )
            return run_synchronous(
                net,
                "algorithm3",
                seed=seed,
                max_slots=width + 3 * budget,
                delta_est=delta_est,
                start_offsets=offsets,
            )

        results = run_trials(trial, num_trials=TRIALS, base_seed=303)
        comp = compare_to_bound(
            f"stagger={stagger}", results, budget, EPSILON, after_all_started=True
        )
        comparisons[stagger] = comp
        row = {"stagger": stagger}
        row.update(comp.as_row())
        del row["experiment"]
        rows.append(row)

    emit_table(
        "e3_theorem3",
        rows,
        title=(
            f"E3 / Theorem 3 — Algorithm 3 completion after T_s on N={n}, "
            f"S={s}, Delta_est={delta_est}, rho={rho:.3f}, eps={EPSILON}"
        ),
    )
    return comparisons


@pytest.mark.benchmark(group="e3")
def test_e3_theorem3(benchmark):
    comparisons = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for stagger, comp in comparisons.items():
        assert comp.meets_guarantee, stagger
    # Shape: time-after-T_s is insensitive to the stagger width.
    means = [c.completion.mean for c in comparisons.values()]
    assert max(means) < 2.5 * min(means)
