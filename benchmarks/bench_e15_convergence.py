"""E15 (extension) — convergence curves and the cost of distribution.

The theorems bound only completion time; the full *coverage curves*
show how discovery unfolds and how far the distributed algorithms sit
from the genie's global-knowledge schedule:

1. the genie TDMA pass is an order faster than any distributed
   algorithm (the price of not knowing the network);
2. Algorithm 3 dominates Algorithm 1 pointwise in the curve tail with a
   tight degree bound (no stage overhead);
3. the last 10 % of links cost disproportionally more than the first
   90 % — the straggler regime the union bound pays for.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis.progress import mean_coverage_curve, time_to_fraction
from repro.baselines.genie import GenieScheduleProtocol, build_genie_schedule
from repro.sim.rng import RngFactory
from repro.sim.runner import run_synchronous, run_trials
from repro.sim.slotted import SlottedSimulator
from repro.sim.stopping import StoppingCondition

TRIALS = 10


def genie_time(net):
    schedule = build_genie_schedule(net)
    sim = SlottedSimulator(
        net,
        lambda nid, chs, rng: GenieScheduleProtocol(nid, chs, rng, schedule),
        RngFactory(0),
    )
    result = sim.run(StoppingCondition.slots(len(schedule)))
    assert result.completed
    return result.completion_time


def run_experiment():
    net = heterogeneous_net()
    delta_est = max(2, net.max_degree)

    batches = {}
    for protocol in ("algorithm1", "algorithm3"):
        batches[protocol] = run_trials(
            lambda seed, p=protocol: run_synchronous(
                net, p, seed=seed, max_slots=200_000, delta_est=delta_est
            ),
            num_trials=TRIALS,
            base_seed=1515,
        )
        assert all(r.completed for r in batches[protocol])

    g_time = genie_time(net)
    rows = [
        {
            "protocol": "genie TDMA (global knowledge)",
            "t50": g_time,
            "t90": g_time,
            "t100": g_time,
            "tail_ratio_t100/t90": 1.0,
        }
    ]
    curve_stats = {"genie": (g_time, g_time, g_time)}
    for protocol, results in batches.items():
        t50 = time_to_fraction(results, 0.5)
        t90 = time_to_fraction(results, 0.9)
        t100 = time_to_fraction(results, 1.0)
        curve_stats[protocol] = (t50, t90, t100)
        rows.append(
            {
                "protocol": protocol,
                "t50": round(t50, 1),
                "t90": round(t90, 1),
                "t100": round(t100, 1),
                "tail_ratio_t100/t90": round(t100 / t90, 2),
            }
        )

    # Also persist a sampled mean coverage curve for the record.
    grid = [10, 25, 50, 100, 200, 400, 800]
    curve_rows = []
    curves = {
        p: mean_coverage_curve(batch, grid) for p, batch in batches.items()
    }
    for t in grid:
        curve_rows.append(
            {
                "slot": t,
                "algorithm1_coverage": round(curves["algorithm1"].value_at(t), 3),
                "algorithm3_coverage": round(curves["algorithm3"].value_at(t), 3),
            }
        )

    emit_table(
        "e15_convergence",
        rows,
        title=(
            f"E15 — median time to 50/90/100% link coverage on N={net.num_nodes} "
            f"(delta_est={delta_est}, {TRIALS} trials)"
        ),
    )
    emit_table(
        "e15_curves",
        curve_rows,
        title="E15 — mean link-coverage fraction over time",
    )
    return curve_stats


@pytest.mark.benchmark(group="e15")
def test_e15_convergence(benchmark):
    stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # (1) the genie is far ahead of both distributed algorithms.
    assert stats["genie"][2] < stats["algorithm3"][2] / 3
    # (2) with a tight estimate, Algorithm 3 finishes before Algorithm 1.
    assert stats["algorithm3"][2] < stats["algorithm1"][2]
    # (3) the straggler tail: finishing costs well over the 90% point.
    for protocol in ("algorithm1", "algorithm3"):
        t50, t90, t100 = stats[protocol]
        assert t100 > 1.3 * t90
        assert t90 > t50