"""E11 — Theorem 1/3 scaling shape: time vs S, Δ, and N in isolation.

Claim: discovery time grows (i) linearly in S when channels dominate
contention, (ii) linearly in Δ (through max(S, Δ)), and (iii) only
logarithmically in N. Each sweep here isolates one parameter with the
others pinned.

Output: one table per axis with mean completion slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table, run_bench_trials
from repro.analysis.stats import mean
from repro.net import build_network, channels, topology

TRIALS = 10


def mean_time(net, delta_est, base_seed, max_slots=500_000):
    results = run_bench_trials(
        net,
        "algorithm3",
        trials=TRIALS,
        base_seed=base_seed,
        max_slots=max_slots,
        delta_est=delta_est,
    )
    assert all(r.completed for r in results)
    return mean([r.completion_time for r in results])


def sweep_s():
    """S sweep: two-node pairs with growing homogeneous channel sets."""
    rows = []
    means = {}
    for s in (1, 2, 4, 8, 16):
        topo = topology.line(2)
        net = build_network(topo, channels.homogeneous(2, s))
        m = mean_time(net, delta_est=2, base_seed=1101 + s)
        means[s] = m
        rows.append({"S": s, "mean_slots": round(m, 1), "slots/S": round(m / s, 1)})
    return rows, means


def sweep_delta():
    """Δ sweep: stars of growing degree, channels fixed."""
    rows = []
    means = {}
    for degree in (2, 4, 8, 16):
        topo = topology.star(degree)
        net = build_network(topo, channels.homogeneous(topo.num_nodes, 2))
        m = mean_time(net, delta_est=max(2, degree), base_seed=1102 + degree)
        means[degree] = m
        rows.append(
            {
                "Delta": degree,
                "mean_slots": round(m, 1),
                "slots/Delta": round(m / degree, 1),
            }
        )
    return rows, means


def sweep_n():
    """N sweep: cliques of growing size; Δ grows with N, so normalize by
    the Theorem 3 budget to expose the residual log N factor."""
    rows = []
    means = {}
    for n in (4, 8, 16, 32):
        topo = topology.clique(n)
        net = build_network(topo, channels.homogeneous(n, 2))
        delta_est = max(2, net.max_degree)
        m = mean_time(net, delta_est=delta_est, base_seed=1103 + n)
        means[n] = m / delta_est  # contention-normalized
        rows.append(
            {
                "N": n,
                "Delta": net.max_degree,
                "mean_slots": round(m, 1),
                "slots/Delta_est": round(m / delta_est, 2),
            }
        )
    return rows, means


def run_experiment():
    s_rows, s_means = sweep_s()
    d_rows, d_means = sweep_delta()
    n_rows, n_means = sweep_n()
    emit_table("e11_s", s_rows, title="E11a — time vs S (2-node link)")
    emit_table("e11_delta", d_rows, title="E11b — time vs Delta (star)")
    emit_table("e11_n", n_rows, title="E11c — time vs N (clique, normalized)")
    return s_means, d_means, n_means


@pytest.mark.benchmark(group="e11")
def test_e11_scaling(benchmark):
    s_means, d_means, n_means = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # Linear-ish in S: 16x channels cost within [4x, 40x] of 1 channel.
    assert 4.0 < s_means[16] / s_means[1] < 40.0
    # Monotone in Delta.
    assert d_means[2] < d_means[8] < d_means[16]
    # Log-like in N: normalized time grows by far less than N does.
    assert n_means[32] / n_means[4] < 4.0
