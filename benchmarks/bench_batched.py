"""Batched engine micro-benchmark — trial-batching speedup.

Times a 16-trial fixed-horizon campaign (so every trial costs the same
CPU) two ways at N ∈ {50, 200, 500, 1000}: a serial loop of
``FastSlottedSimulator`` runs versus one ``BatchedSlottedSimulator``
batch, verifies the per-trial results are identical objects, and
records slots/sec plus the wall-clock ratio in ``BENCH_batched.json``
at the repo root. The N=200 and N=500 rows are the headline numbers CI
smokes against (the batched engine must beat the serial loop by a wide
margin even on a 1-core host — batching saves interpreter and kernel
dispatch, not cores). N=500 is the row that exposed the original
scaling cliff: per-slot costs that grew with the B·C·N key space
(fresh page faults in the reception scatter) and per-trial Python dict
building in result assembly. Both are gone — reception is edge-centric
(O(edges), never O(listeners) or O(key space)) and result assembly
amortizes template dicts across the batch — so the speedup now *grows*
with N instead of collapsing.

A batch-size sensitivity axis reruns the N=500 campaign at
B ∈ {1, 4, 8, 16, 32} to show how the win scales with trials per
kernel pass (B=1 measures pure engine overhead against the serial
loop; doubling B should approach 2× throughput until per-slot numpy
work dominates).

At N ≥ 500 the serial engine's ``reception="auto"`` already selects
the sparse kernel (the dense (C, N, N) tensor crosses
``DENSE_RECEPTION_CEILING``), so those rows measure pure batching
gain; the smaller rows also fold in the dense→sparse win.

Run directly (``PYTHONPATH=src python benchmarks/bench_batched.py``) or
via pytest-benchmark.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from _helpers import emit_bench_record, emit_table
from repro.net import build_network, channels, topology
from repro.sim.batched import BatchedSlottedSimulator
from repro.sim.fast_slotted import FastSlottedSimulator
from repro.sim.rng import RngFactory, derive_trial_seed
from repro.sim.runner import _vector_schedule
from repro.sim.stopping import StoppingCondition

TRIALS = 16
BASE_SEED = 7
PROTOCOL = "algorithm3"
#: (num_nodes, universal channels, channels per node, slot horizon).
#: Horizons shrink with N to keep every row's serial cost comparable
#: (~250k node-slots per trial).
SIZES = (
    (50, 8, 3, 3000),
    (200, 10, 4, 1500),
    (500, 12, 4, 500),
    (1000, 16, 4, 250),
)
#: Batch sizes for the N=500 sensitivity axis.
SENSITIVITY_BATCHES = (1, 4, 8, 16, 32)
SENSITIVITY_N = 500
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched.json"


def _network(n: int, universal: int, per_node: int):
    rng = np.random.default_rng(1000 + n)
    topo = topology.random_geometric(n, max(0.12, 4.0 / np.sqrt(n)), rng)
    return build_network(
        topo, channels.uniform_random_subsets(n, universal, per_node, rng)
    )


def _serial_campaign(net, schedule, stopping, trials: int):
    """Best-of-3 serial loop, exactly as run_batch's serial backend
    would dispatch it (one engine per trial, ``reception="auto"``)."""
    best = float("inf")
    results = None
    for _ in range(3):
        t0 = time.perf_counter()
        out = []
        for i in range(trials):
            factory = RngFactory(derive_trial_seed(BASE_SEED, i))
            out.append(
                FastSlottedSimulator(net, schedule, factory).run(stopping)
            )
        best = min(best, time.perf_counter() - t0)
        results = out
    return best, results


def _batched_campaign(net, schedule, stopping, trials: int):
    """Best-of-3 batched run; construction is excluded because one
    batch amortizes it across all its trials."""
    best = float("inf")
    results = None
    for _ in range(3):
        factories = [
            RngFactory(derive_trial_seed(BASE_SEED, i)) for i in range(trials)
        ]
        sim = BatchedSlottedSimulator(net, schedule, factories)
        t0 = time.perf_counter()
        results = sim.run(stopping)
        best = min(best, time.perf_counter() - t0)
    return best, results


def _bench_size(n: int, universal: int, per_node: int, slots: int) -> dict:
    net = _network(n, universal, per_node)
    schedule = _vector_schedule(PROTOCOL, net, n)
    stopping = StoppingCondition(max_slots=slots, stop_on_full_coverage=False)
    total_slots = TRIALS * slots
    serial_best, serial_results = _serial_campaign(
        net, schedule, stopping, TRIALS
    )
    batched_best, batched_results = _batched_campaign(
        net, schedule, stopping, TRIALS
    )
    return {
        "num_nodes": n,
        "slots": slots,
        "serial_seconds": round(serial_best, 3),
        "batched_seconds": round(batched_best, 3),
        "serial_slots_per_sec": round(total_slots / serial_best, 1),
        "batched_slots_per_sec": round(total_slots / batched_best, 1),
        "speedup": round(serial_best / batched_best, 2),
        "identical": serial_results == batched_results,
    }


def _bench_sensitivity(serial_per_trial: float) -> list:
    """The N=500 campaign at several batch sizes.

    ``speedup`` compares each batch against the serial loop running the
    same number of trials (``serial_per_trial`` × B).
    """
    n, universal, per_node, slots = next(
        s for s in SIZES if s[0] == SENSITIVITY_N
    )
    net = _network(n, universal, per_node)
    schedule = _vector_schedule(PROTOCOL, net, n)
    stopping = StoppingCondition(max_slots=slots, stop_on_full_coverage=False)
    reference = {}
    rows = []
    for batch in SENSITIVITY_BATCHES:
        batched_best, results = _batched_campaign(
            net, schedule, stopping, batch
        )
        # Every batch size must reproduce the same per-trial results —
        # output is invariant to B by construction.
        identical = all(
            reference.setdefault(i, r) == r for i, r in enumerate(results)
        )
        rows.append(
            {
                "batch_size": batch,
                "batched_seconds": round(batched_best, 3),
                "per_trial_ms": round(1000.0 * batched_best / batch, 2),
                "speedup": round(serial_per_trial * batch / batched_best, 2),
                "identical": identical,
            }
        )
    return rows


def run_experiment() -> dict:
    rows = [_bench_size(*size) for size in SIZES]
    by_n = {r["num_nodes"]: r for r in rows}
    sensitivity = _bench_sensitivity(
        by_n[SENSITIVITY_N]["serial_seconds"] / TRIALS
    )
    record = {
        "benchmark": "batched_campaign",
        "protocol": PROTOCOL,
        "trials": TRIALS,
        "base_seed": BASE_SEED,
        "sizes": rows,
        "batch_sensitivity": {
            "num_nodes": SENSITIVITY_N,
            "slots": by_n[SENSITIVITY_N]["slots"],
            "rows": sensitivity,
        },
        "headline_speedup_n200": by_n[200]["speedup"],
        "headline_speedup_n500": by_n[500]["speedup"],
        "byte_identical": all(r["identical"] for r in rows)
        and all(r["identical"] for r in sensitivity),
    }
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "batched",
        rows,
        title=f"Trial batching — {TRIALS} trials, {PROTOCOL}",
        columns=[
            "num_nodes",
            "slots",
            "serial_slots_per_sec",
            "batched_slots_per_sec",
            "speedup",
            "identical",
        ],
    )
    emit_table(
        "batched_sensitivity",
        sensitivity,
        title=f"Batch-size sensitivity — N={SENSITIVITY_N}, {PROTOCOL}",
        columns=[
            "batch_size",
            "batched_seconds",
            "per_trial_ms",
            "speedup",
            "identical",
        ],
    )
    return record


@pytest.mark.benchmark(group="batched")
def test_batched_speedup(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Batching must never change a trial's result.
    assert record["byte_identical"]
    # The acceptance bars: >=5x on the 16-trial N=200 campaign, and —
    # post cliff-fix — >=5x at N=500 too. Batching pays on any host
    # (it removes per-trial numpy dispatch overhead, not just core
    # contention), so no cpu_count escape hatch here.
    assert record["headline_speedup_n200"] >= 5.0
    assert record["headline_speedup_n500"] >= 5.0


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
