"""Batched engine micro-benchmark — trial-batching speedup.

Times a 16-trial fixed-horizon campaign (so every trial costs the same
CPU) two ways at N ∈ {50, 200, 500}: a serial loop of
``FastSlottedSimulator`` runs versus one ``BatchedSlottedSimulator``
batch, verifies the per-trial results are identical objects, and
records slots/sec plus the wall-clock ratio in ``BENCH_batched.json``
at the repo root. The N=200 row is the headline number CI smokes
against (the batched engine must beat the serial loop by a wide
margin even on a 1-core host — batching saves interpreter and kernel
dispatch, not cores).

At N=500 the serial engine's ``reception="auto"`` already selects the
sparse kernel (the dense (C, N, N) tensor crosses
``DENSE_RECEPTION_CEILING``), so that row measures pure batching gain;
the smaller rows also fold in the dense→sparse win.

Run directly (``PYTHONPATH=src python benchmarks/bench_batched.py``) or
via pytest-benchmark.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from _helpers import emit_bench_record, emit_table
from repro.net import build_network, channels, topology
from repro.sim.batched import BatchedSlottedSimulator
from repro.sim.fast_slotted import FastSlottedSimulator
from repro.sim.rng import RngFactory, derive_trial_seed
from repro.sim.runner import _vector_schedule
from repro.sim.stopping import StoppingCondition

TRIALS = 16
BASE_SEED = 7
PROTOCOL = "algorithm3"
#: (num_nodes, universal channels, channels per node, slot horizon).
SIZES = ((50, 8, 3, 3000), (200, 10, 4, 1500), (500, 12, 4, 500))
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched.json"


def _network(n: int, universal: int, per_node: int):
    rng = np.random.default_rng(1000 + n)
    topo = topology.random_geometric(n, max(0.12, 4.0 / np.sqrt(n)), rng)
    return build_network(
        topo, channels.uniform_random_subsets(n, universal, per_node, rng)
    )


def _bench_size(n: int, universal: int, per_node: int, slots: int) -> dict:
    net = _network(n, universal, per_node)
    schedule = _vector_schedule(PROTOCOL, net, n)
    stopping = StoppingCondition(max_slots=slots, stop_on_full_coverage=False)
    total_slots = TRIALS * slots

    # Serial loop: one FastSlottedSimulator per trial, as run_batch's
    # serial backend would dispatch it (reception="auto").
    serial_best = float("inf")
    serial_results = None
    for _ in range(2):
        t0 = time.perf_counter()
        results = []
        for i in range(TRIALS):
            factory = RngFactory(derive_trial_seed(BASE_SEED, i))
            results.append(
                FastSlottedSimulator(net, schedule, factory).run(stopping)
            )
        serial_best = min(serial_best, time.perf_counter() - t0)
        serial_results = results

    batched_best = float("inf")
    batched_results = None
    for _ in range(2):
        factories = [
            RngFactory(derive_trial_seed(BASE_SEED, i)) for i in range(TRIALS)
        ]
        sim = BatchedSlottedSimulator(net, schedule, factories)
        t0 = time.perf_counter()
        batched_results = sim.run(stopping)
        batched_best = min(batched_best, time.perf_counter() - t0)

    return {
        "num_nodes": n,
        "slots": slots,
        "serial_seconds": round(serial_best, 3),
        "batched_seconds": round(batched_best, 3),
        "serial_slots_per_sec": round(total_slots / serial_best, 1),
        "batched_slots_per_sec": round(total_slots / batched_best, 1),
        "speedup": round(serial_best / batched_best, 2),
        "identical": serial_results == batched_results,
    }


def run_experiment() -> dict:
    rows = [_bench_size(*size) for size in SIZES]
    headline = next(r for r in rows if r["num_nodes"] == 200)
    record = {
        "benchmark": "batched_campaign",
        "protocol": PROTOCOL,
        "trials": TRIALS,
        "base_seed": BASE_SEED,
        "sizes": rows,
        "headline_speedup_n200": headline["speedup"],
        "byte_identical": all(r["identical"] for r in rows),
    }
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "batched",
        rows,
        title=f"Trial batching — {TRIALS} trials, {PROTOCOL}",
        columns=[
            "num_nodes",
            "slots",
            "serial_slots_per_sec",
            "batched_slots_per_sec",
            "speedup",
            "identical",
        ],
    )
    return record


@pytest.mark.benchmark(group="batched")
def test_batched_speedup(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Batching must never change a trial's result.
    assert record["byte_identical"]
    # The acceptance bar: >=5x on the 16-trial N=200 campaign. Batching
    # pays on any host (it removes per-trial numpy dispatch overhead,
    # not just core contention), so no cpu_count escape hatch here.
    assert record["headline_speedup_n200"] >= 5.0


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
