"""E5 — Lemma 4 (and Figure 2's timing model): frame overlap counts.

Claim: with drift bounded by δ ≤ 1/7 (the proof in fact only needs
δ ≤ 1/3), a frame of one node overlaps at most 3 frames of any other
node. Beyond δ = 1/3 the property is violated.

Output: worst observed overlap count per drift level, on adversarial
constant-drift clock pairs (one fast, one slow, random offsets) and on
real engine traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis import alignment
from repro.sim.clock import ConstantDriftClock
from repro.sim.runner import run_asynchronous
from repro.sim.trace import ExecutionTrace

DRIFTS = (0.0, 0.05, 1.0 / 7.0, 0.3, 0.45)
FRAMES = 400


def synthetic_max_overlap(delta: float) -> int:
    worst = 0
    for offset in (0.0, 0.17, 0.49, 0.83):
        fast = alignment.synthesize_frames(
            ConstantDriftClock(delta, drift_bound=max(delta, 1e-12)),
            1.0, 0.0, FRAMES, node_id=0,
        )
        slow = alignment.synthesize_frames(
            ConstantDriftClock(-delta, drift_bound=max(delta, 1e-12)),
            1.0, offset, FRAMES, node_id=1,
        )
        report = alignment.check_lemma4({0: fast, 1: slow})
        worst = max(worst, report.max_overlap)
    return worst


def engine_max_overlap(delta: float) -> int:
    net = heterogeneous_net(num_nodes=8, radius=0.55, universal=5, set_size=2)
    trace = ExecutionTrace()
    run_asynchronous(
        net,
        seed=55,
        delta_est=8,
        max_frames_per_node=150,
        drift_bound=delta,
        clock_model="constant",
        start_spread=5.0,
        stop_on_full_coverage=False,
        trace=trace,
    )
    return alignment.check_lemma4_trace(trace).max_overlap


def run_experiment():
    rows = []
    for delta in DRIFTS:
        synth = synthetic_max_overlap(delta)
        engine = engine_max_overlap(delta)
        rows.append(
            {
                "drift": round(delta, 4),
                "within_assumption": delta <= 1.0 / 7.0 + 1e-12,
                "within_lemma4_proof": delta <= 1.0 / 3.0 + 1e-12,
                "max_overlap_synthetic": synth,
                "max_overlap_engine": engine,
                "lemma4_bound": 3,
            }
        )
    emit_table(
        "e5_overlap",
        rows,
        title="E5 / Lemma 4 — worst frame-overlap count vs drift rate",
    )
    return rows


@pytest.mark.benchmark(group="e5")
def test_e5_overlap(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        if row["within_lemma4_proof"]:
            assert row["max_overlap_synthetic"] <= 3, row
            assert row["max_overlap_engine"] <= 3, row
    # The violation regime is real: at drift 0.45 > 1/3 the synthetic
    # adversarial pair exceeds 3.
    worst = [r for r in rows if r["drift"] == 0.45]
    assert worst and worst[0]["max_overlap_synthetic"] > 3
