"""Distributed sharding benchmark — sharded vs serial, byte-identity.

Records in ``BENCH_distributed.json`` at the repo root:

* wall-clock of one campaign run serially in-process versus sharded
  over two real ``m2hew worker`` subprocesses through a lease-based
  file queue (coordinator overhead, IPC-through-filesystem cost and
  subprocess startup all included — on a small campaign the sharded
  run is *expected* to be slower; the record is a regression baseline
  for the protocol's overhead, not a speedup claim);
* ``byte_identical`` — the load-bearing assertion: the sharded archive
  must byte-match the serial archive file for file.

Run directly (``PYTHONPATH=src python benchmarks/bench_distributed.py``)
or via pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import pytest

from _helpers import emit_bench_record, emit_table
from repro.resilience import LeasePolicy, RetryPolicy, WorkQueue
from repro.sim.batch import ExperimentSpec, run_batch
from repro.workloads.generator import WorkloadConfig

TRIALS = 8
CHUNK_SIZE = 2  # 4 chunks for 2 workers to split
MAX_SLOTS = 3_000
BASE_SEED = 7
WORKERS = 2
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

LEASE = LeasePolicy(lease_ttl=5.0, heartbeat_interval=0.5, poll_interval=0.02)


def _specs():
    return [
        ExperimentSpec(
            name="clique_algorithm3",
            workload=WorkloadConfig(
                topology="clique",
                topology_params={"num_nodes": 12},
                channel_model="uniform_random_subsets",
                channel_params={
                    "universal_size": 4,
                    "set_size": 2,
                    "set_size_max": 4,
                },
            ),
            protocol="algorithm3",
            trials=TRIALS,
            runner_params={
                "max_slots": MAX_SLOTS,
                "delta_est": 12,
                "stop_on_full_coverage": False,
            },
        )
    ]


def _archive_bytes(directory: Path) -> dict:
    return {p.name: p.read_bytes() for p in sorted(directory.glob("*.json"))}


def _spawn_worker(queue_dir: Path, index: int) -> "subprocess.Popen[bytes]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--queue",
            str(queue_dir),
            "--worker-id",
            f"bench-{index}",
            "--idle-exit",
            "2.0",
            "--lease-ttl",
            str(LEASE.lease_ttl),
            "--poll-interval",
            str(LEASE.poll_interval),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_heartbeats(queue: WorkQueue, count: int, timeout: float = 60.0) -> None:
    deadline = time.perf_counter() + timeout
    while len(queue.list_workers()) < count:
        if time.perf_counter() > deadline:
            raise RuntimeError("benchmark workers failed to announce themselves")
        time.sleep(0.05)


def run_experiment() -> dict:
    specs = _specs()
    with TemporaryDirectory(prefix="m2hew-bench-dist-") as tmp:
        root = Path(tmp)
        serial_dir = root / "serial"
        t0 = time.perf_counter()
        run_batch(specs, base_seed=BASE_SEED, output_dir=serial_dir)
        serial_s = time.perf_counter() - t0

        queue_dir = root / "queue"
        queue = WorkQueue(queue_dir)
        procs = [_spawn_worker(queue_dir, i) for i in range(WORKERS)]
        sharded_dir = root / "sharded"
        try:
            _await_heartbeats(queue, WORKERS)
            t0 = time.perf_counter()
            run_batch(
                specs,
                base_seed=BASE_SEED,
                output_dir=sharded_dir,
                backend="distributed",
                chunk_size=CHUNK_SIZE,
                retry=RetryPolicy(base_delay=0.0, jitter=0.0),
                queue_dir=queue_dir,
                lease=LEASE,
            )
            sharded_s = time.perf_counter() - t0
        finally:
            for proc in procs:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()

        byte_identical = _archive_bytes(sharded_dir) == _archive_bytes(serial_dir)

    record = {
        "benchmark": "distributed_sharding",
        "trials": TRIALS,
        "chunk_size": CHUNK_SIZE,
        "max_slots": MAX_SLOTS,
        "base_seed": BASE_SEED,
        "workers": WORKERS,
        "lease_ttl": LEASE.lease_ttl,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "sharded_vs_serial_ratio": round(sharded_s / serial_s, 3),
        "byte_identical": byte_identical,
    }
    assert byte_identical, "sharded archive diverged from serial archive"
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "distributed",
        [record],
        title="Distributed sharding — 2-worker queue vs serial, byte-identity",
        columns=[
            "serial_seconds",
            "sharded_seconds",
            "sharded_vs_serial_ratio",
            "byte_identical",
        ],
    )
    return record


@pytest.mark.benchmark(group="distributed")
def test_distributed_byte_identity(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert record["byte_identical"]


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
