"""E4 — Eqs. (3)-(6), (9) and Lemma 5: coverage probability lower bounds.

Claim: in the stage slot matched to a link's degree (eq. (2)), the three
coverage events satisfy Pr{A} ≥ 1/(2 max(S, Δ)), Pr{B} ≥ 1/(2|A(u)|),
Pr{C} ≥ 1/4, and a stage covers a link w.p. ≥ ρ/(16 max(S, Δ));
Algorithm 3's per-slot coverage is ≥ ρ/(8 max(2S, Δ_est)); an aligned
frame-pair under Algorithm 4 covers w.p. ≥ ρ/(8 max(2S, 3Δ_est)).

Output: measured event and coverage probabilities vs analytic lower
bounds on star networks of controlled degree.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table
from repro.analysis import coverage
from repro.core import bounds
from repro.net import build_network, channels, topology

TRIALS = 40_000
DEGREES = (2, 4, 8)
NUM_CHANNELS = 4
DELTA_EST = 8


def run_experiment():
    rng = np.random.default_rng(404)
    rows = []
    checks = []
    for degree in DEGREES:
        topo = topology.star(degree)
        net = build_network(topo, channels.homogeneous(topo.num_nodes, NUM_CHANNELS))
        link = net.link(1, 0)  # leaf -> hub, hub has the full degree
        s, d, rho = net.max_channel_set_size, net.max_degree, net.min_span_ratio

        # --- Algorithm 1, matched slot (eq. (2)) ---
        i = coverage.matched_slot_index(net.degree_on(0, 0))
        probs1 = {
            nid: coverage.alg1_slot_probability(
                len(net.channels_of(nid)), i
            )
            for nid in net.node_ids
        }
        events = coverage.estimate_event_probabilities(
            net, link, 0, probs1, TRIALS, rng
        )
        cov1 = coverage.estimate_link_coverage(net, link, probs1, TRIALS, rng)
        b_a = bounds.pr_transmit_event_alg1(s, d)
        b_b = bounds.pr_listen_event(NUM_CHANNELS)
        b_c = bounds.pr_no_interference_event()
        b_cov1 = bounds.stage_coverage_alg1(s, d, rho)

        # --- Algorithm 3 per slot ---
        probs3 = {
            nid: coverage.alg3_slot_probability(
                len(net.channels_of(nid)), DELTA_EST
            )
            for nid in net.node_ids
        }
        cov3 = coverage.estimate_link_coverage(net, link, probs3, TRIALS, rng)
        b_cov3 = bounds.slot_coverage_alg3(s, DELTA_EST, rho)

        # --- Algorithm 4 aligned pair (Lemma 5) ---
        cov4 = coverage.estimate_aligned_pair_coverage(
            net, link, DELTA_EST, TRIALS, rng
        )
        b_cov4 = bounds.lemma5_pair_coverage(s, DELTA_EST, rho)

        rows.append(
            {
                "Delta": d,
                "PrA_meas": round(events.pr_transmit.probability, 4),
                "PrA_bound": round(b_a, 4),
                "PrB_meas": round(events.pr_listen.probability, 4),
                "PrB_bound": round(b_b, 4),
                "PrC_meas": round(events.pr_no_interference.probability, 4),
                "PrC_bound": b_c,
                "cov_alg1": round(cov1.probability, 5),
                "eq6_bound": round(b_cov1, 5),
                "cov_alg3": round(cov3.probability, 5),
                "thm3_bound": round(b_cov3, 5),
                "cov_alg4": round(cov4.probability, 5),
                "lemma5_bound": round(b_cov4, 5),
            }
        )
        checks.append(
            (
                events.pr_transmit.at_least(b_a),
                events.pr_listen.at_least(b_b),
                events.pr_no_interference.at_least(b_c),
                cov1.at_least(b_cov1),
                cov3.at_least(b_cov3),
                cov4.at_least(b_cov4),
            )
        )

    emit_table(
        "e4_coverage",
        rows,
        title=(
            "E4 / eqs. (3)-(6), (9), Lemma 5 — measured coverage "
            f"probabilities vs analytic lower bounds (star, {NUM_CHANNELS} "
            f"channels, {TRIALS} samples)"
        ),
    )
    return checks


@pytest.mark.benchmark(group="e4")
def test_e4_coverage(benchmark):
    checks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in checks:
        # Every measured probability must be consistent with its lower bound.
        assert all(row), row
