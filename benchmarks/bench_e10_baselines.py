"""E10 — §I related work: randomized vs deterministic discovery.

Claim: deterministic multi-channel algorithms ([20]-[22]) run in time
proportional to the *product* of the agreed maximum network size N_max
and the universal channel set size |U|; the paper's randomized
algorithms depend on the actual contention (S, Δ, ρ) and only
logarithmically on N — so they win whenever the id space is sized for a
large potential deployment.

Output: completion slots of the deterministic scan vs Algorithms 1/3 on
the same single-common-channel clique for growing id spaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table
from repro.analysis.stats import mean
from repro.net import build_network, channels, topology
from repro.sim.runner import run_synchronous, run_trials

TRIALS = 8
NUM_NODES = 8
UNIVERSAL = 25
ID_SPACES = (8, 64, 512)


def build_net():
    rng = np.random.default_rng(1010)
    topo = topology.clique(NUM_NODES)
    assignment = channels.single_common_channel(NUM_NODES, UNIVERSAL, 3, rng)
    return build_network(topo, assignment)


def run_experiment():
    net = build_net()
    # The agreed universal set is the whole spectrum; adversarial-but-fair
    # order: the one shared channel is not conveniently first.
    universal_order = list(range(1, UNIVERSAL)) + [0]

    rows = []
    det_times = {}
    for id_space in ID_SPACES:
        result = run_synchronous(
            net,
            "deterministic_scan",
            seed=0,
            max_slots=len(universal_order) * id_space,
            engine="reference",
            universal_channels=universal_order,
            id_space_size=id_space,
        )
        assert result.completed
        det_times[id_space] = result.completion_time
        rows.append(
            {
                "protocol": f"deterministic_scan (N_max={id_space})",
                "mean_slots": result.completion_time,
                "worst_case_slots": len(universal_order) * id_space,
            }
        )

    rand_means = {}
    for protocol, delta_est in (("algorithm1", 8), ("algorithm3", 8)):
        results = run_trials(
            lambda seed, p=protocol, de=delta_est: run_synchronous(
                net, p, seed=seed, max_slots=500_000, delta_est=de
            ),
            num_trials=TRIALS,
            base_seed=1011,
        )
        assert all(r.completed for r in results)
        m = mean([r.completion_time for r in results])
        rand_means[protocol] = m
        rows.append(
            {
                "protocol": f"{protocol} (randomized)",
                "mean_slots": round(m, 1),
                "worst_case_slots": None,
            }
        )

    emit_table(
        "e10_baselines",
        rows,
        title=(
            f"E10 — deterministic product bound vs randomized discovery "
            f"(N={NUM_NODES} clique, |U|={UNIVERSAL}, single common channel)"
        ),
    )
    return det_times, rand_means


@pytest.mark.benchmark(group="e10")
def test_e10_baselines(benchmark):
    det_times, rand_means = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Deterministic completion scales with the id space (the product bound).
    assert det_times[512] > det_times[64] > det_times[8]
    # For a realistically sized id space, both randomized algorithms win.
    for m in rand_means.values():
        assert m < det_times[512]
