"""E12 — Assumption 1 ablation: Algorithm 4 as drift crosses 1/7.

The paper *assumes* δ ≤ 1/7 for its analysis. This ablation measures
what actually happens to discovery time as drift grows past the
assumption, under the worst constant-drift pairing (clocks drawn from
the full ±δ range): the guarantee is analytical, so we expect graceful
degradation rather than a cliff at exactly 1/7 — but the measured curve
quantifies the cost of drift and locates where discovery gets slow.

Output: mean completion (real time after T_s, in frame units) per drift
level, plus soundness verification at every level.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis.stats import summarize
from repro.sim.runner import run_asynchronous, run_trials

TRIALS = 8
DRIFTS = (0.0, 0.05, 1.0 / 7.0, 0.25, 0.4)
FRAME_LENGTH = 1.0


def run_experiment():
    net = heterogeneous_net(num_nodes=10, radius=0.5, universal=5, set_size=2)
    delta_est = max(2, net.max_degree)

    rows = []
    curve = {}
    sound = True
    for drift in DRIFTS:
        results = run_trials(
            lambda seed, dr=drift: run_asynchronous(
                net,
                seed=seed,
                delta_est=delta_est,
                frame_length=FRAME_LENGTH,
                max_frames_per_node=300_000,
                drift_bound=dr,
                clock_model="constant",
                start_spread=10.0,
            ),
            num_trials=TRIALS,
            base_seed=1212,
        )
        for r in results:
            for nid in net.node_ids:
                truth = net.discoverable_neighbors(nid)
                if not set(r.neighbor_tables[nid]) <= truth:
                    sound = False
        completed = sum(r.completed for r in results)
        times = [
            r.completion_after_all_started
            for r in results
            if r.completion_after_all_started is not None
        ]
        summary = summarize(times) if times else None
        curve[drift] = summary.mean if summary else float("inf")
        rows.append(
            {
                "drift": round(drift, 4),
                "within_assumption": drift <= 1.0 / 7.0 + 1e-12,
                "completed": f"{completed}/{TRIALS}",
                "mean_time_after_Ts": round(summary.mean, 1) if summary else None,
                "p90_time_after_Ts": round(summary.p90, 1) if summary else None,
            }
        )

    emit_table(
        "e12_drift_ablation",
        rows,
        title=(
            "E12 — Algorithm 4 completion vs clock drift "
            f"(constant-drift worst pairing, L={FRAME_LENGTH})"
        ),
    )
    return curve, sound


@pytest.mark.benchmark(group="e12")
def test_e12_drift_ablation(benchmark):
    curve, sound = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Soundness never depends on the assumption.
    assert sound
    # Within the assumption, discovery always completed (finite means).
    for drift in (0.0, 0.05, 1.0 / 7.0):
        assert curve[drift] != float("inf")
    # Degradation is graceful: even at 2x the assumption the protocol
    # still completes in this workload (the analysis breaks, not the
    # mechanism).
    assert curve[0.25] != float("inf")
