"""E14 (extension) — diverse propagation characteristics (§V(c)).

High channels reach less far, so link spans shrink below
``A(u) ∩ A(v)`` and ρ drops; the paper predicts discovery time inversely
proportional to ρ regardless of *why* spans shrink. This ablation sweeps
the frequency-decay knob and checks:

1. ρ decreases monotonically with the decay;
2. discovery time tracks the shrinking ρ (time × ρ roughly constant);
3. discovery stays exact: each node finds every true neighbor, and the
   true span is always bracketed by [channels heard on, claimed
   intersection].
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import emit_table
from repro.analysis.stats import mean
from repro.net import channels
from repro.net.propagation import build_channel_dependent_network
from repro.net.topology import random_geometric
from repro.sim.runner import run_synchronous, run_trials

TRIALS = 8
DECAYS = (0.0, 0.3, 0.6)
NUM_NODES = 14
NUM_CHANNELS = 6


def build(decay):
    rng = np.random.default_rng(1414)
    topo = random_geometric(
        NUM_NODES, radius=0.45, rng=rng, require_connected=True
    )
    assignment = channels.homogeneous(NUM_NODES, NUM_CHANNELS)
    return build_channel_dependent_network(
        topo, assignment, base_radius=0.45, range_decay=decay
    )


def run_experiment():
    rows = []
    curve = {}
    for decay in DECAYS:
        net = build(decay)
        delta_est = max(2, net.max_degree)
        results = run_trials(
            lambda seed, de=delta_est, n=net: run_synchronous(
                n, "algorithm3", seed=seed, max_slots=500_000, delta_est=de
            ),
            num_trials=TRIALS,
            base_seed=1415,
        )
        assert all(r.completed for r in results)
        exact = True
        for r in results:
            for nid in net.node_ids:
                truth = net.discoverable_neighbors(nid)
                table = r.neighbor_tables[nid]
                if frozenset(table) != truth:
                    exact = False
        m = mean([r.completion_time for r in results])
        rho = net.min_span_ratio
        curve[decay] = (rho, m, exact)
        rows.append(
            {
                "range_decay": decay,
                "rho": round(rho, 3),
                "links": net.num_links,
                "mean_slots": round(m, 1),
                "slots_x_rho": round(m * rho, 1),
                "all_neighbors_found": exact,
            }
        )

    emit_table(
        "e14_propagation",
        rows,
        title=(
            f"E14 — diverse propagation on N={NUM_NODES}, "
            f"{NUM_CHANNELS} homogeneous channels, geometric placement"
        ),
    )
    return curve


@pytest.mark.benchmark(group="e14")
def test_e14_propagation(benchmark):
    curve = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rhos = [curve[d][0] for d in DECAYS]
    times = [curve[d][1] for d in DECAYS]
    # (1) rho shrinks as high channels lose range (it may saturate at
    # its floor once the worst pair is down to the single base channel).
    assert rhos[0] == pytest.approx(1.0)
    assert rhos[1] <= rhos[0] and rhos[2] <= rhos[1]
    assert rhos[2] < rhos[0]
    # (2) discovery slows accordingly.
    assert times[2] > times[0]
    # (3) exactness of the neighbor sets at every decay.
    assert all(curve[d][2] for d in DECAYS)
