"""E2 — Theorem 2: Algorithm 2 completes with no degree knowledge.

Claim: starting from estimate d = 2 and growing it by one per stage,
discovery completes within ``O(M log M)`` slots w.p. ≥ 1 − ε, where
``M = (16 max(S, Δ)/ρ) ln(N²/ε)`` — a modest premium over the
knowledge-aware Algorithm 1.

Output: Algorithm 2 vs Algorithm 1 (tight and loose Δ_est) on the same
network: budgets, measured completion, success rates.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net, run_bench_trials
from repro.analysis.theory import compare_to_bound
from repro.core import bounds

EPSILON = 0.1
TRIALS = 15


def run_experiment():
    net = heterogeneous_net()
    s, d = net.max_channel_set_size, net.max_degree
    rho, n = net.min_span_ratio, net.num_nodes

    configs = [
        ("algorithm2 (no knowledge)", "algorithm2", None,
         bounds.theorem2_slot_budget(s, d, rho, n, EPSILON)),
        ("algorithm1 (tight est)", "algorithm1", max(2, d),
         bounds.theorem1_slot_budget(s, d, rho, n, EPSILON, max(2, d))),
        ("algorithm1 (loose est)", "algorithm1", 128,
         bounds.theorem1_slot_budget(s, d, rho, n, EPSILON, 128)),
    ]

    rows = []
    comparisons = {}
    for label, protocol, delta_est, budget in configs:
        results = run_bench_trials(
            net,
            protocol,
            trials=TRIALS,
            base_seed=202,
            max_slots=budget,
            delta_est=delta_est,
        )
        comp = compare_to_bound(label, results, budget, EPSILON)
        comparisons[label] = comp
        rows.append(comp.as_row())

    emit_table(
        "e2_theorem2",
        rows,
        title=(
            f"E2 / Theorem 2 — no-knowledge premium on N={n}, S={s}, "
            f"Delta={d}, rho={rho:.3f}, eps={EPSILON}"
        ),
    )
    return comparisons


@pytest.mark.benchmark(group="e2")
def test_e2_theorem2(benchmark):
    comparisons = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for comp in comparisons.values():
        assert comp.meets_guarantee, comp.label
    # Shape: Algorithm 2's budget exceeds Algorithm 1's (the paid premium),
    # and its measured time lands between the tight-estimate Algorithm 1
    # and its own bound.
    alg2 = comparisons["algorithm2 (no knowledge)"]
    alg1 = comparisons["algorithm1 (tight est)"]
    assert alg2.bound > alg1.bound
    assert alg2.completion.mean < alg2.bound
