"""E7 — Lemma 8: admissible-sequence extraction.

Claim: any execution containing M full frames of both link endpoints
after T_s contains a sequence of ≥ M/6 frame-pairs that is *admissible*
(same nodes, strictly advancing, every pair aligned, consecutive pairs'
overlap sets disjoint).

Output: constructed γ and σ lengths vs M/6 per drift level, built with
the proof's own greedy recipe on engine traces, plus verification of all
four admissibility properties.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis import alignment
from repro.sim.runner import run_asynchronous
from repro.sim.trace import ExecutionTrace

DRIFTS = (0.0, 0.05, 0.1, 1.0 / 7.0)
FRAME_BUDGET = 360


def run_one(delta: float):
    net = heterogeneous_net(num_nodes=6, radius=0.7, universal=4, set_size=2)
    trace = ExecutionTrace()
    run_asynchronous(
        net,
        seed=77,
        delta_est=8,
        max_frames_per_node=FRAME_BUDGET,
        drift_bound=delta,
        clock_model="constant",
        start_spread=6.0,
        stop_on_full_coverage=False,
        trace=trace,
    )
    t_s = 6.0
    all_frames = {nid: trace.frames_of(nid) for nid in trace.node_ids}
    v, u = trace.node_ids[0], trace.node_ids[1]
    report = alignment.build_admissible_sequence(
        trace.frames_of(v), trace.frames_of(u), all_frames, t_s
    )
    return report


def run_experiment():
    rows = []
    reports = []
    for delta in DRIFTS:
        report = run_one(delta)
        reports.append(report)
        rows.append(
            {
                "drift": round(delta, 4),
                "full_frames_M": report.full_frames,
                "gamma_len": report.gamma_length,
                "sigma_len": len(report.pairs),
                "M/6": round(report.full_frames / 6, 1),
                "bound_met": report.satisfies_bound,
                "all_aligned": report.all_aligned,
                "overlapAll_disjoint": report.disjoint_overlap,
            }
        )
    emit_table(
        "e7_admissible",
        rows,
        title="E7 / Lemma 8 — admissible sequence length vs the M/6 bound",
    )
    return reports


@pytest.mark.benchmark(group="e7")
def test_e7_admissible(benchmark):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for report in reports:
        assert report.all_aligned
        assert report.disjoint_overlap
        assert report.satisfies_bound
        # gamma collects a pair at least every two frames (proof's M/2).
        assert report.gamma_length * 2 >= report.full_frames - 8
