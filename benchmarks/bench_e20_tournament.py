"""E20 (extension) — the protocol league: rivals vs the paper's algorithms.

Runs the standing tournament (:func:`repro.analysis.tournament.
default_league` — a clean clique, a bursty heterogeneous ring, and a
lightly-jammed grid) over every registered synchronous protocol and
records the league table in ``BENCH_tournament.json``. Two gates:

1. **Determinism** — the rendered league is byte-identical across two
   full runs (standings derive only from ``(cells, protocols, trials,
   base_seed, max_slots)``).
2. **Sanity** — every registered protocol completes every trial on the
   standing league within the slot horizon; a regression that stalls a
   protocol (or a fixture that starves one) trips the gate before it
   reaches EXPERIMENTS.md.

Campaigns honor ``M2HEW_BENCH_WORKERS``; the archive and the tables are
byte-identical for any worker count.

Run directly (``PYTHONPATH=src python benchmarks/bench_e20_tournament.py``)
or via pytest-benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _helpers import bench_workers, emit_bench_record, emit_table
from repro.analysis.tournament import run_tournament

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_tournament.json"

TRIALS = 15
MAX_SLOTS = 30_000
BASE_SEED = 20


def _league():
    return run_tournament(
        trials=TRIALS,
        base_seed=BASE_SEED,
        max_slots=MAX_SLOTS,
        max_workers=bench_workers(),
    )


def run_experiment() -> dict:
    first = _league()
    second = _league()
    overall = first.overall()
    rows = [s.as_row() for s in overall]
    record = {
        "benchmark": "tournament",
        "protocols": list(first.protocols),
        "cells": [c.name for c in first.cells],
        "trials": TRIALS,
        "max_slots": MAX_SLOTS,
        "base_seed": BASE_SEED,
        "league": rows,
        "per_cell": {
            name: [s.as_row() for s in standings]
            for name, standings in first.standings.items()
        },
        "deterministic": first.render() == second.render(),
        "all_complete": all(s.completed_fraction == 1.0 for s in overall),
    }
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "e20_tournament",
        rows,
        title=(
            f"E20 — protocol league ({len(first.cells)} cells x "
            f"{TRIALS} trials, base_seed {BASE_SEED}, "
            f"horizon {MAX_SLOTS} slots)"
        ),
    )
    return record


@pytest.mark.benchmark(group="e20-tournament")
def test_e20_tournament(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The league table must be a pure function of its seeds.
    assert record["deterministic"]
    # Every registered protocol finishes every fixture within horizon.
    assert record["all_complete"]


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
