"""E13 (extension) — termination detection and the energy it buys.

The paper's protocols never stop; experiments use an oracle. This
ablation evaluates the node-local quiescence rule of
``repro.core.termination``: stop after K slots with no new neighbor,
then SLEEP (radio off) or BEACON (keep transmitting, never listen).

Claims checked:

1. with K from :func:`recommended_quiet_threshold`, no node stops
   early and the global output stays complete;
2. aggressive K trades correctness for energy, visibly;
3. BEACON preserves others' discovery where SLEEP strands them;
4. self-termination saves most of the oracle run's listening energy
   when the budget is generous.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis.energy import EnergyModel, energy_report
from repro.core.termination import TerminationPolicy, recommended_quiet_threshold
from repro.sim.rng import derive_trial_seed
from repro.sim.termination_runner import run_terminating_sync

TRIALS = 8
DELTA_EST = 8


def run_experiment():
    net = heterogeneous_net()
    s, rho = net.max_channel_set_size, net.min_span_ratio
    recommended = recommended_quiet_threshold(s, DELTA_EST, rho, 1e-3)
    budget = 6 * recommended
    model = EnergyModel.cc2420()

    rows = []
    stats = {}
    for policy in (TerminationPolicy.BEACON, TerminationPolicy.SLEEP):
        for threshold in (recommended // 16, recommended // 4, recommended):
            complete = 0
            false_stops = 0
            stopped = 0
            joules = 0.0
            for t in range(TRIALS):
                outcome = run_terminating_sync(
                    net,
                    "algorithm3",
                    seed=derive_trial_seed(1313, t),
                    max_slots=budget,
                    quiet_threshold=threshold,
                    delta_est=DELTA_EST,
                    policy=policy,
                )
                complete += outcome.output_complete
                false_stops += len(outcome.false_stops)
                stopped += outcome.all_stopped
                joules += energy_report(
                    outcome.result, model, slot_seconds=0.01
                ).total_joules
            key = (policy.value, threshold)
            stats[key] = (complete, false_stops, joules / TRIALS)
            rows.append(
                {
                    "policy": policy.value,
                    "K": threshold,
                    "K/recommended": round(threshold / recommended, 3),
                    "complete_runs": f"{complete}/{TRIALS}",
                    "false_stops_total": false_stops,
                    "all_stopped": f"{stopped}/{TRIALS}",
                    "mean_joules": round(joules / TRIALS, 4),
                }
            )

    emit_table(
        "e13_termination",
        rows,
        title=(
            f"E13 — quiescence termination on N={net.num_nodes} "
            f"(recommended K = {recommended}, budget = {budget} slots, "
            "cc2420 energy @ 10 ms slots)"
        ),
    )
    return recommended, stats


@pytest.mark.benchmark(group="e13")
def test_e13_termination(benchmark):
    recommended, stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # (1) the recommended threshold is safe under both policies.
    for policy in ("beacon", "sleep"):
        complete, false_stops, _ = stats[(policy, recommended)]
        assert complete == TRIALS, policy
        assert false_stops == 0, policy
    # (2) slashing K by 16x causes false stops under both policies.
    assert stats[("sleep", recommended // 16)][1] > 0
    assert stats[("beacon", recommended // 16)][1] > 0
    # (3) energy: earlier stopping is cheaper, and SLEEP is cheaper than
    # BEACON at the same threshold (a beaconing node keeps paying tx).
    assert (
        stats[("sleep", recommended // 16)][2]
        < stats[("sleep", recommended)][2]
    )
    for threshold in (recommended // 4, recommended):
        assert stats[("sleep", threshold)][2] < stats[("beacon", threshold)][2]
