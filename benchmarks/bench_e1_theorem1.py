"""E1 — Theorem 1: Algorithm 1 completes within its slot budget.

Claim: with identical start times and a (possibly loose) common degree
bound Δ_est, every link is covered within
``O((max(S, Δ)/ρ) · log Δ_est · log(N/ε))`` slots w.p. ≥ 1 − ε; the
dependence on Δ_est is only logarithmic.

Output: one row per Δ_est with the theorem budget, measured completion
statistics, success rate at the budget and the slack factor.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net, run_bench_trials
from repro.analysis.theory import compare_to_bound
from repro.core import bounds

EPSILON = 0.1
TRIALS = 15
DELTA_ESTS = (8, 32, 128)


def run_experiment():
    net = heterogeneous_net()
    s, d = net.max_channel_set_size, net.max_degree
    rho, n = net.min_span_ratio, net.num_nodes

    rows = []
    comparisons = {}
    for delta_est in DELTA_ESTS:
        budget = bounds.theorem1_slot_budget(s, d, rho, n, EPSILON, delta_est)
        results = run_bench_trials(
            net,
            "algorithm1",
            trials=TRIALS,
            base_seed=101,
            max_slots=budget,
            delta_est=delta_est,
        )
        comp = compare_to_bound(
            f"E1 delta_est={delta_est}", results, budget, EPSILON
        )
        comparisons[delta_est] = comp
        row = {"delta_est": delta_est}
        row.update(comp.as_row())
        del row["experiment"]
        rows.append(row)

    emit_table(
        "e1_theorem1",
        rows,
        title=(
            f"E1 / Theorem 1 — Algorithm 1 on N={n}, S={s}, Delta={d}, "
            f"rho={rho:.3f}, eps={EPSILON}"
        ),
    )
    return comparisons


@pytest.mark.benchmark(group="e1")
def test_e1_theorem1(benchmark):
    comparisons = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for delta_est, comp in comparisons.items():
        # Theorem 1's 1 - eps guarantee must be consistent with data.
        assert comp.meets_guarantee, delta_est
        # The bound is an upper bound: completions fit inside it with slack.
        assert comp.bound_over_measured_mean is None or comp.bound_over_measured_mean > 1
    # Log dependence on delta_est: 16x looser estimate costs < 4x time
    # (exact log ratio would be log2(128)/log2(8) = 2.33).
    t8 = comparisons[8].completion.mean
    t128 = comparisons[128].completion.mean
    assert t128 < 4 * t8
