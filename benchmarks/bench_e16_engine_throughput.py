"""E16 (infrastructure) — simulator throughput.

Not a paper claim: this benchmark measures the substrate itself, so
performance regressions in the engines are caught and the vectorized
engine's speedup over the reference engine is documented. Both engines
run the same fixed-slot workload (early stop disabled) so the measured
quantity is slots-per-second at N = 30.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import heterogeneous_net
from repro.sim.fast_slotted import FastSlottedSimulator, FlatSchedule
from repro.sim.rng import RngFactory
from repro.sim.runner import run_asynchronous
from repro.sim.slotted import SlottedSimulator
from repro.sim.stopping import StoppingCondition
from repro.core.registry import make_sync_factory

SLOTS = 1500
NUM_NODES = 30


def _network():
    return heterogeneous_net(
        num_nodes=NUM_NODES, radius=0.3, universal=8, set_size=3
    )


@pytest.mark.benchmark(group="e16-throughput")
def test_e16_reference_engine_throughput(benchmark):
    net = _network()

    def run():
        sim = SlottedSimulator(
            net,
            make_sync_factory("algorithm3", delta_est=8),
            RngFactory(7),
        )
        return sim.run(
            StoppingCondition(max_slots=SLOTS, stop_on_full_coverage=False)
        )

    result = benchmark(run)
    assert result.horizon == SLOTS


@pytest.mark.benchmark(group="e16-throughput")
def test_e16_fast_engine_throughput(benchmark):
    net = _network()
    sizes = np.array(
        [len(net.channels_of(nid)) for nid in net.node_ids], dtype=np.int64
    )

    def run():
        sim = FastSlottedSimulator(
            net, FlatSchedule(sizes, delta_est=8), RngFactory(7)
        )
        return sim.run(
            StoppingCondition(max_slots=SLOTS, stop_on_full_coverage=False)
        )

    result = benchmark(run)
    assert result.horizon == SLOTS


@pytest.mark.benchmark(group="e16-async")
def test_e16_async_engine_throughput(benchmark):
    net = heterogeneous_net(num_nodes=12, radius=0.45, universal=5, set_size=2)

    def run():
        return run_asynchronous(
            net,
            seed=7,
            delta_est=8,
            max_frames_per_node=250,
            drift_bound=0.05,
            stop_on_full_coverage=False,
        )

    result = benchmark(run)
    assert result.horizon > 0
