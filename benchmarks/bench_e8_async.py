"""E8 — Theorems 9 & 10: Algorithm 4 end-to-end guarantees.

Claim (Thm 9): every node discovers all neighbors w.p. ≥ 1 − ε by the
time each node has executed ``(48 max(2S, 3Δ_est)/ρ) ln(N²/ε)`` full
frames after T_s. Claim (Thm 10): the real-time span of those frames is
at most ``(frames + 1) · L / (1 − δ)``.

Output: per drift level, success rate at the Theorem 9 frame budget,
measured completion (frames and real time after T_s) vs both bounds.
"""

from __future__ import annotations

import pytest

from _helpers import emit_table, heterogeneous_net
from repro.analysis.stats import summarize
from repro.core import bounds
from repro.sim.runner import run_asynchronous, run_trials

EPSILON = 0.2
TRIALS = 8
DRIFTS = (0.0, 0.05, 1.0 / 7.0)
FRAME_LENGTH = 1.0


def run_experiment():
    net = heterogeneous_net(num_nodes=10, radius=0.5, universal=5, set_size=2)
    s, d = net.max_channel_set_size, net.max_degree
    rho, n = net.min_span_ratio, net.num_nodes
    delta_est = max(2, d)
    frame_budget = bounds.theorem9_frame_budget(s, delta_est, rho, n, EPSILON)

    rows = []
    outcome = []
    for drift in DRIFTS:
        results = run_trials(
            lambda seed, dr=drift: run_asynchronous(
                net,
                seed=seed,
                delta_est=delta_est,
                frame_length=FRAME_LENGTH,
                max_frames_per_node=frame_budget,
                drift_bound=dr,
                clock_model="constant",
                start_spread=10.0,
            ),
            num_trials=TRIALS,
            base_seed=808,
        )
        successes = sum(r.completed for r in results)
        completion = summarize(
            [
                r.completion_after_all_started
                for r in results
                if r.completion_after_all_started is not None
            ]
        )
        realtime_bound = bounds.theorem10_realtime_bound(
            s, delta_est, rho, n, EPSILON, FRAME_LENGTH, drift
        )
        within_thm10 = all(
            r.completion_after_all_started is None
            or r.completion_after_all_started <= realtime_bound
            for r in results
        )
        rows.append(
            {
                "drift": round(drift, 4),
                "thm9_frames": frame_budget,
                "trials": TRIALS,
                "completed": successes,
                "mean_time_after_Ts": round(completion.mean, 1),
                "p90_time_after_Ts": round(completion.p90, 1),
                "thm10_realtime_bound": round(realtime_bound, 1),
                "all_within_thm10": within_thm10,
            }
        )
        outcome.append((drift, successes, within_thm10))

    emit_table(
        "e8_async",
        rows,
        title=(
            f"E8 / Theorems 9-10 — Algorithm 4 on N={n}, S={s}, "
            f"Delta_est={delta_est}, rho={rho:.3f}, eps={EPSILON}, L={FRAME_LENGTH}"
        ),
    )
    return outcome


@pytest.mark.benchmark(group="e8")
def test_e8_async(benchmark):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for drift, successes, within_thm10 in outcome:
        # Theorem 9 target is 1 - eps = 0.8 of trials; the bound is loose
        # so in practice all trials finish.
        assert successes >= int(0.8 * TRIALS), drift
        assert within_thm10, drift
