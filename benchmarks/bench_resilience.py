"""Resilience micro-benchmark — supervision overhead and recovery cost.

Two claims about the trial supervisor, recorded in
``BENCH_resilience.json`` at the repo root:

1. **Near-zero cost when unused** — a fault-free supervised campaign
   (retry policy armed, nothing failing) must cost within a few percent
   of the fail-fast ``run_spec_trials`` path, because supervision adds
   only bookkeeping around the same chunk dispatch. The gate is <3%
   measured as the median of several alternating rounds (wall-clock
   noise on shared CI runners exceeds the true overhead).

2. **Recovery beats rerunning** — a campaign where ~10% of chunks fail
   once (chaos-injected, zero backoff) must finish in well under the
   cost of the fail-fast alternative: one doomed full run to discover
   the failure plus one clean rerun. Retrying re-executes only the
   failed chunks, so the expected end-to-end ratio is ~(1 + f) : 2 for
   failure fraction f.

Both legs verify byte-identity against the unsupervised reference —
resilience must never buy throughput with determinism.

Run directly (``PYTHONPATH=src python benchmarks/bench_resilience.py``)
or via pytest-benchmark.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from _helpers import emit_bench_record, emit_table
from repro.resilience import RetryPolicy, parse_chaos_spec, run_supervised_trials
from repro.sim.parallel import run_spec_trials
from repro.workloads.scenarios import scenario

TRIALS = 20
MAX_SLOTS = 3_000
BASE_SEED = 7
ROUNDS = 5
CHUNK_SIZE = 2  # 10 chunks; one failing chunk == 10% chunk-failure rate
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: One of the ten chunks fails on its first attempt, then recovers.
CHAOS_10PCT = "raise@4"


def _workload():
    s = scenario("urban_dense")
    network = s.build(0)
    params = {
        "max_slots": MAX_SLOTS,
        "delta_est": s.delta_est,
        # Fixed horizon: every trial simulates the same slot count, so
        # the ratios measure supervision overhead, not protocol variance.
        "stop_on_full_coverage": False,
    }
    return network, params


def _payload(results) -> bytes:
    return json.dumps([r.to_dict() for r in results], sort_keys=True).encode()


def run_experiment() -> dict:
    network, params = _workload()
    policy = RetryPolicy(base_delay=0.0, jitter=0.0)

    def baseline():
        return run_spec_trials(
            network,
            "algorithm3",
            trials=TRIALS,
            base_seed=BASE_SEED,
            runner_params=params,
            chunk_size=CHUNK_SIZE,
        )

    def supervised(chaos=None):
        outcome = run_supervised_trials(
            network,
            "algorithm3",
            trials=TRIALS,
            base_seed=BASE_SEED,
            runner_params=params,
            chunk_size=CHUNK_SIZE,
            policy=policy,
            chaos=chaos,
            sleep=lambda _delay: None,
        )
        assert outcome.complete
        return [r for _, r in outcome.results_in_order()]

    reference = _payload(baseline())
    assert _payload(supervised()) == reference
    chaos = parse_chaos_spec(CHAOS_10PCT)
    assert _payload(supervised(chaos)) == reference

    # Alternate baseline/supervised within each round so drift in host
    # load hits both sides equally; gate on the median ratio.
    base_times, sup_times, chaos_times = [], [], []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        baseline()
        base_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        supervised()
        sup_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        supervised(chaos)
        chaos_times.append(time.perf_counter() - t0)

    base_s = statistics.median(base_times)
    sup_s = statistics.median(sup_times)
    chaos_s = statistics.median(chaos_times)
    # Fail-fast alternative to recovery: one doomed run (the failure
    # lands mid-campaign; charge the mean half) plus one clean rerun.
    fail_fast_rerun_s = 1.5 * base_s

    record = {
        "benchmark": "resilience_supervisor",
        "scenario": "urban_dense",
        "protocol": "algorithm3",
        "trials": TRIALS,
        "chunk_size": CHUNK_SIZE,
        "max_slots": MAX_SLOTS,
        "base_seed": BASE_SEED,
        "rounds": ROUNDS,
        "chaos": CHAOS_10PCT,
        "baseline_seconds": round(base_s, 4),
        "supervised_seconds": round(sup_s, 4),
        "supervised_overhead_pct": round(100.0 * (sup_s / base_s - 1.0), 2),
        "chaos_recovery_seconds": round(chaos_s, 4),
        "fail_fast_rerun_seconds": round(fail_fast_rerun_s, 4),
        "recovery_vs_rerun_ratio": round(chaos_s / fail_fast_rerun_s, 3),
        "byte_identical": True,  # asserted above, for all three paths
    }
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "resilience",
        [record],
        title="Resilient execution — supervision overhead and recovery cost",
        columns=[
            "baseline_seconds",
            "supervised_seconds",
            "supervised_overhead_pct",
            "chaos_recovery_seconds",
            "fail_fast_rerun_seconds",
            "recovery_vs_rerun_ratio",
        ],
    )
    return record


@pytest.mark.benchmark(group="resilience")
def test_resilience_overhead(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert record["byte_identical"]
    # Fault-free supervision must be within 3% of fail-fast execution.
    assert record["supervised_overhead_pct"] < 3.0, record
    # Recovering from a 10% chunk-failure round must be cheaper than the
    # discover-and-rerun alternative.
    assert record["recovery_vs_rerun_ratio"] < 1.0, record


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
