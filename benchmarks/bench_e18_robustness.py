"""E18 (extension) — robustness under fault injection.

Two claims about the fault subsystem, recorded in
``BENCH_robustness.json`` at the repo root:

1. **Zero cost when unused** — a zero-intensity :class:`FaultPlan`
   compiles away entirely, so the fast engine with an empty plan runs
   within 5% of the fault-free engine (ABAB interleaved timing, median
   of several rounds, fixed slot horizon).
2. **Monotone degradation** — sweeping jamming duty cycle upward never
   *improves* Algorithm 3's completion behavior (coverage and censored
   completion time, checked via
   :func:`repro.analysis.robustness.is_monotone_non_improving`).

Campaigns honor ``M2HEW_BENCH_WORKERS``; the degradation table is
byte-identical for any worker count.

Run directly (``PYTHONPATH=src python benchmarks/bench_e18_robustness.py``)
or via pytest-benchmark.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from _helpers import emit_bench_record, emit_table, heterogeneous_net, run_bench_trials
from repro.analysis.robustness import (
    aggregate_point,
    degradation_table,
    is_monotone_non_improving,
)
from repro.faults import FaultPlan, JammingBursts
from repro.sim.runner import run_synchronous

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"

TIMING_SLOTS = 2_000
TIMING_ROUNDS = 5
DUTIES = (0.0, 0.2, 0.4, 0.6)
TRIALS = 8
MAX_SLOTS = 60_000
BASE_SEED = 18


def _overhead_at_zero_intensity() -> dict:
    """ABAB-interleaved timing: fault-free vs empty-plan fast engine."""
    net = heterogeneous_net(num_nodes=20, radius=0.35)
    empty = FaultPlan()

    def run(faults):
        return run_synchronous(
            net,
            "algorithm3",
            seed=7,
            max_slots=TIMING_SLOTS,
            delta_est=8,
            stop_on_full_coverage=False,
            faults=faults,
        )

    run(None)  # warm up caches / imports outside the timed region
    base_times, plan_times = [], []
    for _ in range(TIMING_ROUNDS):
        t0 = time.perf_counter()
        run(None)
        base_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run(empty)
        plan_times.append(time.perf_counter() - t0)
    base = statistics.median(base_times)
    plan = statistics.median(plan_times)
    return {
        "fault_free_seconds": round(base, 4),
        "empty_plan_seconds": round(plan, 4),
        "overhead_fraction": round(plan / base - 1.0, 4),
    }


def _jamming_plan(duty: float) -> FaultPlan:
    return FaultPlan(
        models=(JammingBursts.from_duty_cycle(duty, mean_burst=200.0),)
    )


def _degradation_points():
    net = heterogeneous_net(num_nodes=15, radius=0.42)
    points = []
    for duty in DUTIES:
        params = {
            "max_slots": MAX_SLOTS,
            "delta_est": 8,
        }
        plan = _jamming_plan(duty) if duty > 0 else None
        if plan is not None:
            params["faults"] = plan
        results = run_bench_trials(
            net,
            "algorithm3",
            trials=TRIALS,
            base_seed=BASE_SEED,
            **params,
        )
        points.append(aggregate_point(duty, results))
    return points


def run_experiment() -> dict:
    overhead = _overhead_at_zero_intensity()
    points = _degradation_points()
    monotone = is_monotone_non_improving(points)
    rows = degradation_table(points)
    record = {
        "benchmark": "robustness",
        "protocol": "algorithm3",
        "trials": TRIALS,
        "max_slots": MAX_SLOTS,
        "base_seed": BASE_SEED,
        "jamming_duties": list(DUTIES),
        "degradation": rows,
        "monotone_non_improving": monotone,
        **overhead,
    }
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "e18_robustness",
        rows,
        title=(
            "E18 — Algorithm 3 under jamming (duty sweep, "
            f"{TRIALS} trials; empty-plan overhead "
            f"{overhead['overhead_fraction'] * 100:.1f}%)"
        ),
        columns=["intensity", "trials", "completed", "mean_coverage", "mean_time"],
    )
    return record


@pytest.mark.benchmark(group="e18-robustness")
def test_e18_robustness(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Zero-intensity plans compile away; the fault layer may not tax
    # fault-free runs.
    assert record["overhead_fraction"] < 0.05
    # Heavier jamming must never help.
    assert record["monotone_non_improving"]


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
