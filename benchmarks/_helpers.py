"""Shared helpers for the experiment benchmarks (E1-E12).

Each benchmark regenerates one of the paper's quantitative claims and
prints a paper-style table; tables are also written to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable output.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.net import M2HeWNetwork, build_network, channels, topology

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def heterogeneous_net(
    num_nodes: int = 15,
    radius: float = 0.42,
    universal: int = 8,
    set_size: int = 3,
    seed: int = 0,
) -> M2HeWNetwork:
    """The default heterogeneous workload: connected geometric placement,
    random channel subsets sharing a common control channel."""
    rng = np.random.default_rng(seed)
    topo = topology.random_geometric(
        num_nodes, radius=radius, rng=rng, require_connected=True
    )
    assignment = channels.common_channel_plus_random(
        topo.num_nodes, universal_size=universal, set_size=set_size, rng=rng
    )
    return build_network(topo, assignment)


def emit_table(
    experiment: str,
    rows: Sequence[Mapping[str, Any]],
    title: str,
    columns: Sequence[str] = None,
) -> str:
    """Print the experiment table and persist it under results/."""
    text = format_table(rows, columns=columns, title=title)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    return text
