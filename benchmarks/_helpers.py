"""Shared helpers for the experiment benchmarks (E1-E12).

Each benchmark regenerates one of the paper's quantitative claims and
prints a paper-style table; tables are also written to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.net import M2HeWNetwork, build_network, channels, topology
from repro.resilience.atomic import atomic_write_text
from repro.sim.parallel import run_spec_trials
from repro.sim.results import DiscoveryResult

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_workers(default: int = 1) -> int:
    """Trial fan-out for benchmark campaigns.

    Set ``M2HEW_BENCH_WORKERS=N`` to run every seeded campaign below on
    ``N`` worker processes. Tables stay byte-identical for any value —
    the parallel backend guarantees worker-count invariance — so this
    only changes wall-clock time.
    """
    raw = os.environ.get("M2HEW_BENCH_WORKERS", "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def run_bench_trials(
    network: M2HeWNetwork,
    protocol: str,
    *,
    trials: int,
    base_seed: Optional[int],
    **runner_params: Any,
) -> List[DiscoveryResult]:
    """Seeded trial campaign honoring ``M2HEW_BENCH_WORKERS``.

    Drop-in for the ``run_trials(lambda seed: run_synchronous(...))``
    pattern: trial ``t`` uses ``derive_trial_seed(base_seed, t)``
    exactly as before, so converted benchmarks reproduce their historic
    numbers bit-for-bit.
    """
    return run_spec_trials(
        network,
        protocol,
        trials=trials,
        base_seed=base_seed,
        runner_params=runner_params,
        max_workers=bench_workers(),
        backend="auto",
    )


def heterogeneous_net(
    num_nodes: int = 15,
    radius: float = 0.42,
    universal: int = 8,
    set_size: int = 3,
    seed: int = 0,
) -> M2HeWNetwork:
    """The default heterogeneous workload: connected geometric placement,
    random channel subsets sharing a common control channel."""
    rng = np.random.default_rng(seed)
    topo = topology.random_geometric(
        num_nodes, radius=radius, rng=rng, require_connected=True
    )
    assignment = channels.common_channel_plus_random(
        topo.num_nodes, universal_size=universal, set_size=set_size, rng=rng
    )
    return build_network(topo, assignment)


def emit_table(
    experiment: str,
    rows: Sequence[Mapping[str, Any]],
    title: str,
    columns: Sequence[str] = None,
) -> str:
    """Print the experiment table and persist it under results/."""
    text = format_table(rows, columns=columns, title=title)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / f"{experiment}.txt", text + "\n")
    return text


def emit_bench_record(path: Path, record: Mapping[str, Any]) -> None:
    """Write a ``BENCH_*.json`` record atomically (tmp + fsync + rename).

    A benchmark interrupted mid-write must leave either the previous
    record or the new one — CI gates read these files, and a torn JSON
    would fail the gate for the wrong reason.
    """
    atomic_write_text(path, json.dumps(record, indent=2, sort_keys=True) + "\n")
