"""Parallel campaign micro-benchmark — worker fan-out speedup.

Times one seeded campaign (urban_dense, Algorithm 3, fixed slot horizon
so every trial costs the same CPU) twice: serially and on a process
pool, verifies the archived bytes are identical, and records the
wall-clock ratio in ``BENCH_parallel.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel.py``) or
via pytest-benchmark. On an N-core machine the expected speedup is
close to ``min(N, workers)``; the JSON records the host core count so
single-core CI results are interpretable.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from _helpers import emit_bench_record, emit_table
from repro.sim.batch import ExperimentSpec, run_batch
from repro.workloads.scenarios import scenario

TRIALS = 24
MAX_SLOTS = 4_000
BASE_SEED = 7
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _campaign_spec() -> ExperimentSpec:
    s = scenario("urban_dense")
    return ExperimentSpec(
        name="parallel_bench",
        workload=s.config,
        protocol="algorithm3",
        trials=TRIALS,
        network_seed=0,
        runner_params={
            "max_slots": MAX_SLOTS,
            "delta_est": s.delta_est,
            # Fixed horizon: every trial simulates the same slot count,
            # so the speedup measures dispatch overhead, not variance.
            "stop_on_full_coverage": False,
        },
    )


def _archive_bytes(directory: Path) -> bytes:
    return b"".join(
        p.read_bytes() for p in sorted(directory.iterdir())
    )


def run_experiment(workers: int = 0) -> dict:
    cpu_count = os.cpu_count() or 1
    if workers < 1:
        # At least 2 so the process-pool path actually runs, even on a
        # single-core host (where the recorded speedup will be < 1).
        workers = max(2, min(4, cpu_count))
    spec = _campaign_spec()

    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        parallel_dir = Path(tmp) / "parallel"

        t0 = time.perf_counter()
        run_batch([spec], base_seed=BASE_SEED, output_dir=serial_dir, max_workers=1)
        serial_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_batch(
            [spec],
            base_seed=BASE_SEED,
            output_dir=parallel_dir,
            max_workers=workers,
            backend="process",
        )
        parallel_seconds = time.perf_counter() - t0

        byte_identical = _archive_bytes(serial_dir) == _archive_bytes(parallel_dir)

    record = {
        "benchmark": "parallel_campaign",
        "scenario": "urban_dense",
        "protocol": "algorithm3",
        "trials": TRIALS,
        "max_slots": MAX_SLOTS,
        "base_seed": BASE_SEED,
        "cpu_count": cpu_count,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "byte_identical": byte_identical,
    }
    emit_bench_record(BENCH_PATH, record)
    emit_table(
        "parallel",
        [record],
        title=f"Parallel fan-out — {workers} workers on {cpu_count} cores",
        columns=[
            "workers",
            "cpu_count",
            "serial_seconds",
            "parallel_seconds",
            "speedup",
            "byte_identical",
        ],
    )
    return record


@pytest.mark.benchmark(group="parallel")
def test_parallel_speedup(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Fan-out must never change the archived bytes.
    assert record["byte_identical"]
    # On a multi-core runner the pool must at least halve wall-clock
    # time; a single-core host can only demonstrate correctness.
    if record["cpu_count"] >= 4:
        assert record["speedup"] >= 2.0
    else:
        assert record["speedup"] > 0.0


if __name__ == "__main__":
    print(json.dumps(run_experiment(), indent=2, sort_keys=True))
