"""The campaign service: REST surface, dispatcher, dedup and resume.

:class:`CampaignService` composes the subsystem: the
:class:`~repro.service.jobs.JobStore` (persistent job records), the
:class:`~repro.service.scheduler.CampaignScheduler` (quota-bounded FIFO
queue), the :class:`~repro.service.store.ResultStore`
(fingerprint-indexed verified archives), the
:class:`~repro.service.progress.ProgressTracker` (per-job event logs)
and :func:`~repro.service.worker.execute_job` (the supervised runner),
behind a small REST surface:

====== =============================== =====================================
Method Path                            Meaning
====== =============================== =====================================
GET    ``/health``                     liveness + queue counters
POST   ``/campaigns``                  submit (dedups by fingerprint)
GET    ``/campaigns``                  list all jobs
GET    ``/campaigns/{id}``             status (+ ``?since=N`` events)
GET    ``/campaigns/{id}/events``      chunked JSON-lines event stream
GET    ``/campaigns/{id}/result``      verified result listing
GET    ``/campaigns/{id}/files/{name}`` raw archive file bytes
POST   ``/campaigns/{id}/cancel``      cancel (cooperative when running)
====== =============================== =====================================

Dedup semantics: a submission whose fingerprint matches a queued or
running job *joins* that job; one matching a stored verified archive is
answered ``cache_hit`` without recomputation; anything else queues.
Resume semantics: job records and checkpoint journals both live under
``data_dir``, so a killed server restores its queue on restart
(``running`` demotes to ``queued``) and re-executing a half-done
campaign restores its journaled trials instead of recomputing them.

Campaigns execute in worker threads via :func:`asyncio.to_thread` — the
trial supervisor is synchronous (it fsyncs journals) — while the HTTP
side stays on the event loop and reads progress through the
thread-safe tracker.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from pathlib import Path
from typing import Any, AsyncIterator, Dict, Optional, Set, Union

from ..exceptions import (
    ConfigurationError,
    JobCancelledError,
    QuotaExceededError,
)
from ..resilience.policy import RetryPolicy
from .campaigns import CampaignRequest, request_fingerprint
from .http import HttpError, HttpRequest, HttpResponse, HttpServer, json_response
from .jobs import CampaignJob, JobStore
from .progress import ProgressTracker
from .scheduler import CampaignScheduler, QuotaPolicy
from .store import ResultStore
from .worker import execute_job

__all__ = ["CampaignService", "EVENT_POLL_SECONDS"]

_logger = logging.getLogger("repro.service")

#: How often the chunked event stream polls the tracker for news.
EVENT_POLL_SECONDS = 0.05


class CampaignService:
    """One service instance rooted at a data directory.

    Layout: ``<data_dir>/jobs/`` (job records), ``<data_dir>/store/``
    (archives by fingerprint), ``<data_dir>/ckpt/`` (checkpoint
    journals by fingerprint). Everything a restart needs is on disk;
    call :meth:`restore` (or :meth:`serve`) to rebuild the queue.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        *,
        quota: Optional[QuotaPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        max_workers: int = 1,
        backend: str = "auto",
        chunk_size: Optional[int] = 1,
        queue_dir: Optional[Union[str, Path]] = None,
        store_max_archives: Optional[int] = None,
        store_max_bytes: Optional[int] = None,
    ) -> None:
        data = Path(data_dir)
        self.data_dir = data
        self.jobs = JobStore(data / "jobs")
        self.store = ResultStore(
            data / "store",
            max_archives=store_max_archives,
            max_bytes=store_max_bytes,
        )
        self.checkpoint_root = data / "ckpt"
        self.scheduler = CampaignScheduler(quota)
        self.progress = ProgressTracker()
        self.retry = retry or RetryPolicy()
        self.max_workers = max_workers
        self.backend = backend
        self.chunk_size = chunk_size
        #: Shared distributed work queue; jobs fan chunks out to any
        #: ``m2hew worker --queue`` process that mounts it.
        self.queue_dir = None if queue_dir is None else Path(queue_dir)
        #: fingerprint → job_id for queued/running jobs (join-dedup).
        self._inflight: Dict[str, str] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._wake = asyncio.Event()
        self._tasks: Set["asyncio.Task[None]"] = set()

    # -- lifecycle -------------------------------------------------------

    def restore(self) -> int:
        """Rebuild queue state from persisted job records; returns count requeued."""
        requeued = 0
        for job in self.jobs.load_all():
            if job.state == "queued":
                self.scheduler.requeue(job)
                self._inflight[job.fingerprint] = job.job_id
                self._cancel_flags[job.job_id] = threading.Event()
                self.progress.emit(job.job_id, "state", "queued")
                requeued += 1
        return requeued

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> HttpServer:
        """Restore, bind, and start dispatching; returns the live server.

        The caller owns the loop: await :meth:`run_forever` (CLI) or
        keep the loop alive some other way (tests), then
        :meth:`shutdown`.
        """
        requeued = self.restore()
        if requeued:
            _logger.info("restored %d queued campaign job(s)", requeued)
        server = HttpServer(self.handle_request, host, port)
        await server.start()
        dispatcher = asyncio.create_task(self._dispatch_loop())
        self._tasks.add(dispatcher)
        dispatcher.add_done_callback(self._tasks.discard)
        self._wake.set()
        return server

    async def run_forever(self, host: str, port: int) -> None:
        """Serve until cancelled (the CLI entry point's body)."""
        server = await self.serve(host, port)
        print(
            f"m2hew service listening on http://{server.host}:{server.port} "
            f"(data: {self.data_dir})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await self.shutdown(server)

    async def shutdown(self, server: HttpServer) -> None:
        """Stop accepting connections and cancel the dispatcher.

        Running campaign threads are asked to stop via their cancel
        flags; their journals keep whatever completed, so a restart
        resumes them.
        """
        await server.close()
        for flag in list(self._cancel_flags.values()):
            flag.set()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                job = self.scheduler.start_next()
                if job is None:
                    break
                task = asyncio.create_task(self._run_job(job))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: CampaignJob) -> None:
        job.state = "running"
        self.jobs.save(job)
        self.progress.emit(job.job_id, "state", "running")
        flag = self._cancel_flags.setdefault(job.job_id, threading.Event())

        def on_progress(experiment: str, completed: int, total: int) -> None:
            self.progress.emit(
                job.job_id,
                "progress",
                "running",
                experiment=experiment,
                completed=completed,
                total=total,
            )

        try:
            result = await asyncio.to_thread(
                execute_job,
                job,
                store=self.store,
                checkpoint_root=self.checkpoint_root,
                retry=self.retry,
                max_workers=self.max_workers,
                backend=self.backend,
                chunk_size=self.chunk_size,
                on_progress=on_progress,
                cancelled=flag.is_set,
                queue_dir=self.queue_dir,
            )
        except JobCancelledError:
            job.state = "cancelled"
        except Exception as exc:
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            _logger.exception("job %s failed", job.job_id)
        else:
            job.state = "done"
            job.cached = result.cached
            job.restored = result.restored
        finally:
            self.scheduler.finish(job.job_id)
            if self._inflight.get(job.fingerprint) == job.job_id:
                del self._inflight[job.fingerprint]
            self._cancel_flags.pop(job.job_id, None)
            self.jobs.save(job)
            self.progress.emit(job.job_id, "state", job.state)
            # Bound the store: in-flight fingerprints and the archive
            # this job just produced are protected from eviction.
            try:
                evicted = self.store.enforce_limits(
                    protect=set(self._inflight) | {job.fingerprint}
                )
            except OSError:
                evicted = []
            for fingerprint in evicted:
                _logger.info("evicted archive %s…", fingerprint[:12])
            self._wake.set()

    # -- routing ---------------------------------------------------------

    async def handle_request(self, request: HttpRequest) -> HttpResponse:
        """Route one request (the :class:`HttpServer` handler)."""
        segments = [s for s in request.path.split("/") if s]
        if segments == ["health"] and request.method == "GET":
            return self._health()
        if not segments or segments[0] != "campaigns":
            raise HttpError(404, f"no such resource {request.path!r}")
        if len(segments) == 1:
            if request.method == "POST":
                return self._submit(request)
            if request.method == "GET":
                return self._list()
            raise HttpError(405, f"{request.method} not allowed here")
        job = self.jobs.get(segments[1])
        if job is None:
            raise HttpError(404, f"no such job {segments[1]!r}")
        rest = segments[2:]
        if not rest and request.method == "GET":
            return self._status(job, request)
        if rest == ["events"] and request.method == "GET":
            return self._events(job, request)
        if rest == ["result"] and request.method == "GET":
            return self._result(job)
        if len(rest) == 2 and rest[0] == "files" and request.method == "GET":
            return self._file(job, rest[1])
        if rest == ["cancel"] and request.method == "POST":
            return self._cancel(job)
        raise HttpError(404, f"no such resource {request.path!r}")

    # -- handlers --------------------------------------------------------

    def _health(self) -> HttpResponse:
        states: Dict[str, int] = {}
        for job in self.jobs.jobs_in_order():
            states[job.state] = states.get(job.state, 0) + 1
        return json_response(
            {
                "status": "ok",
                "jobs": states,
                "queued": len(self.scheduler.queued_jobs()),
                "running": len(self.scheduler.running_jobs()),
            }
        )

    def _submit(self, request: HttpRequest) -> HttpResponse:
        try:
            campaign = CampaignRequest.from_dict(request.json())
            fingerprint = request_fingerprint(campaign)
        except ConfigurationError as exc:
            raise HttpError(400, str(exc)) from exc

        inflight_id = self._inflight.get(fingerprint)
        if inflight_id is not None:
            joined = self.jobs.get(inflight_id)
            if joined is not None:
                return json_response(
                    {"job": joined.as_dict(), "created": False, "cache_hit": False}
                )

        if self.store.lookup(fingerprint) is not None:
            for done in reversed(self.jobs.jobs_in_order()):
                if done.fingerprint == fingerprint and done.state == "done":
                    return json_response(
                        {"job": done.as_dict(), "created": False, "cache_hit": True}
                    )
            job = self._new_job(campaign, fingerprint)
            job.state = "done"
            job.cached = True
            self.jobs.save(job)
            self.progress.emit(job.job_id, "state", "done")
            return json_response(
                {"job": job.as_dict(), "created": True, "cache_hit": True}
            )

        job = self._new_job(campaign, fingerprint)
        try:
            self.scheduler.submit(job)
        except QuotaExceededError as exc:
            raise HttpError(429, str(exc)) from exc
        self.jobs.save(job)
        self._inflight[fingerprint] = job.job_id
        self._cancel_flags[job.job_id] = threading.Event()
        self.progress.emit(job.job_id, "state", "queued")
        self._wake.set()
        return json_response(
            {"job": job.as_dict(), "created": True, "cache_hit": False}, status=202
        )

    def _new_job(self, campaign: CampaignRequest, fingerprint: str) -> CampaignJob:
        seq = self.jobs.next_seq()
        return CampaignJob(
            job_id=f"job-{seq:06d}",
            seq=seq,
            request=campaign,
            fingerprint=fingerprint,
        )

    def _list(self) -> HttpResponse:
        return json_response(
            {"jobs": [job.as_dict() for job in self.jobs.jobs_in_order()]}
        )

    def _status(self, job: CampaignJob, request: HttpRequest) -> HttpResponse:
        payload: Dict[str, Any] = {"job": job.as_dict()}
        latest = self.progress.latest(job.job_id)
        payload["latest_event"] = None if latest is None else latest.as_dict()
        since = request.query.get("since")
        if since is not None:
            try:
                cursor = int(since)
            except ValueError as exc:
                raise HttpError(400, "since must be an integer cursor") from exc
            events = self.progress.events_since(job.job_id, cursor)
            payload["events"] = [event.as_dict() for event in events]
            payload["next_cursor"] = (
                events[-1].seq + 1 if events else cursor
            )
        return json_response(payload)

    def _events(self, job: CampaignJob, request: HttpRequest) -> HttpResponse:
        since = request.query.get("since", "0")
        try:
            cursor = int(since)
        except ValueError as exc:
            raise HttpError(400, "since must be an integer cursor") from exc

        async def stream() -> AsyncIterator[bytes]:
            position = cursor
            while True:
                events = self.progress.events_since(job.job_id, position)
                for event in events:
                    position = event.seq + 1
                    line = json_response(event.as_dict()).body
                    yield b"".join(line.split(b"\n")) + b"\n"
                current = self.jobs.get(job.job_id)
                if (
                    not events
                    and (current is None or current.terminal)
                ):
                    return
                if not events:
                    await asyncio.sleep(EVENT_POLL_SECONDS)

        return HttpResponse(stream=stream(), content_type="application/jsonl")

    def _result(self, job: CampaignJob) -> HttpResponse:
        if job.state != "done":
            raise HttpError(
                409, f"job {job.job_id} is {job.state}, not done"
            )
        report = self.store.verify(job.fingerprint)
        if not report.ok:
            # The archive rotted (or was torn) after the job finished;
            # serving it is not an option and the job can no longer
            # honor its result, so it degrades to failed. Resubmitting
            # the campaign recomputes it.
            self.store.discard(job.fingerprint)
            job.state = "failed"
            job.error = "stored archive failed verification; resubmit"
            self.jobs.save(job)
            self.progress.emit(job.job_id, "state", "failed")
            raise HttpError(500, job.error)
        return json_response(
            {
                "job_id": job.job_id,
                "fingerprint": job.fingerprint,
                "files": self.store.archive_files(job.fingerprint),
                "verification": report.as_dict(),
            }
        )

    def _file(self, job: CampaignJob, name: str) -> HttpResponse:
        if job.state != "done":
            raise HttpError(
                409, f"job {job.job_id} is {job.state}, not done"
            )
        try:
            body = self.store.read_file(job.fingerprint, name)
        except (ConfigurationError, OSError) as exc:
            raise HttpError(404, f"archive file {name!r}: {exc}") from exc
        return HttpResponse(body=body, content_type="application/json")

    def _cancel(self, job: CampaignJob) -> HttpResponse:
        if job.terminal:
            raise HttpError(
                409, f"job {job.job_id} already {job.state}"
            )
        if self.scheduler.cancel_queued(job.job_id):
            job.state = "cancelled"
            if self._inflight.get(job.fingerprint) == job.job_id:
                del self._inflight[job.fingerprint]
            self._cancel_flags.pop(job.job_id, None)
            self.jobs.save(job)
            self.progress.emit(job.job_id, "state", "cancelled")
        else:
            # Running: cooperative — the worker observes the flag at its
            # next progress point and unwinds, keeping journaled trials.
            flag = self._cancel_flags.get(job.job_id)
            if flag is not None:
                flag.set()
        return json_response({"job": job.as_dict()})
