"""Fingerprint-indexed result store with verify-before-serve.

One completed campaign archive lives at ``<directory>/<fingerprint>/``
— exactly the directory :func:`~repro.sim.batch.run_batch` wrote, so
serving it *is* serving ``m2hew batch`` output. The store trusts
nothing it did not just write: every :meth:`lookup` re-verifies the
archive against its manifest checksums
(:func:`~repro.resilience.verify.verify_archive`) and treats a corrupt
archive as a miss, discarding it so the campaign recomputes instead of
serving damaged bytes. File reads are restricted to names the manifest
lists, so the HTTP layer cannot be walked out of an archive directory.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import List, Optional, Union

from ..exceptions import ConfigurationError
from ..resilience.verify import VerificationReport, verify_archive

__all__ = ["ResultStore"]


class ResultStore:
    """Campaign archives keyed by content fingerprint."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def path_for(self, fingerprint: str) -> Path:
        """Directory a campaign with this fingerprint archives into."""
        if not fingerprint or "/" in fingerprint or fingerprint.startswith("."):
            raise ConfigurationError(
                f"malformed campaign fingerprint {fingerprint!r}"
            )
        return self.directory / fingerprint

    def verify(self, fingerprint: str) -> VerificationReport:
        """Verification report for a stored archive (missing dir included)."""
        return verify_archive(self.path_for(fingerprint))

    def lookup(self, fingerprint: str) -> Optional[Path]:
        """The archive directory if present *and* verified, else ``None``.

        A present-but-corrupt archive (torn by a kill during the final
        archive write, bit rot, tampering) is discarded so the next
        submission recomputes it — serving unverifiable bytes is never
        an option.
        """
        path = self.path_for(fingerprint)
        if not path.is_dir():
            return None
        if not verify_archive(path).ok:
            self.discard(fingerprint)
            return None
        return path

    def discard(self, fingerprint: str) -> None:
        """Remove a stored archive (corruption recovery path)."""
        path = self.path_for(fingerprint)
        if path.is_dir():
            shutil.rmtree(path)

    def archive_files(self, fingerprint: str) -> List[str]:
        """The archive's servable file names, manifest first.

        Read from the manifest rather than the filesystem so the
        listing matches what verification covered.
        """
        path = self.path_for(fingerprint)
        manifest = json.loads(
            (path / "manifest.json").read_text(encoding="utf-8")
        )
        names = ["manifest.json"]
        for entry in manifest.get("experiments", []):
            name = entry.get("file")
            if isinstance(name, str) and name:
                names.append(name)
        return names

    def read_file(self, fingerprint: str, name: str) -> bytes:
        """Raw bytes of one archive file; only manifest-listed names."""
        if name not in self.archive_files(fingerprint):
            raise ConfigurationError(
                f"{name!r} is not a file of archive {fingerprint}"
            )
        return (self.path_for(fingerprint) / name).read_bytes()
