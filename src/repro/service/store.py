"""Fingerprint-indexed result store with verify-before-serve.

One completed campaign archive lives at ``<directory>/<fingerprint>/``
— exactly the directory :func:`~repro.sim.batch.run_batch` wrote, so
serving it *is* serving ``m2hew batch`` output. The store trusts
nothing it did not just write: every :meth:`lookup` re-verifies the
archive against its manifest checksums
(:func:`~repro.resilience.verify.verify_archive`) and treats a corrupt
archive as a miss, discarding it so the campaign recomputes instead of
serving damaged bytes. File reads are restricted to names the manifest
lists, so the HTTP layer cannot be walked out of an archive directory.

The store can be capped (``max_archives`` / ``max_bytes``): when
:meth:`enforce_limits` runs — the service calls it after every job —
least-recently-used archives are evicted until the caps hold. Recency
is a monotonic *use counter* journaled in ``.lru-index.json`` (atomic
writes, torn-file tolerant via
:func:`~repro.resilience.checkpoint.load_sidecar`), not wall-clock
mtimes, so recency survives restarts and clock steps. Eviction is
verified-archive-aware — archives that fail verification are junk and
go first, regardless of recency — and never touches a protected
fingerprint (jobs in flight, the archive just produced).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import AbstractSet, Dict, List, Optional, Union

from ..exceptions import ConfigurationError
from ..resilience.atomic import atomic_write_text
from ..resilience.checkpoint import load_sidecar
from ..resilience.verify import VerificationReport, verify_archive

__all__ = ["LRU_INDEX_NAME", "ResultStore"]

#: Recency journal, stored next to the archives it ranks. The leading
#: dot keeps it out of ``path_for``'s reachable fingerprint space.
LRU_INDEX_NAME = ".lru-index.json"


class ResultStore:
    """Campaign archives keyed by content fingerprint.

    Args:
        directory: Root directory (one subdirectory per fingerprint).
        max_archives: Keep at most this many archives (``None`` = no
            count cap).
        max_bytes: Keep the archives' total size at or under this
            (``None`` = no size cap). A single archive larger than the
            cap survives until a newer one displaces it.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        max_archives: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_archives is not None and max_archives < 1:
            raise ConfigurationError(
                f"max_archives must be >= 1, got {max_archives}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = Path(directory)
        self.max_archives = max_archives
        self.max_bytes = max_bytes

    def path_for(self, fingerprint: str) -> Path:
        """Directory a campaign with this fingerprint archives into."""
        if not fingerprint or "/" in fingerprint or fingerprint.startswith("."):
            raise ConfigurationError(
                f"malformed campaign fingerprint {fingerprint!r}"
            )
        return self.directory / fingerprint

    def verify(self, fingerprint: str) -> VerificationReport:
        """Verification report for a stored archive (missing dir included)."""
        return verify_archive(self.path_for(fingerprint))

    def lookup(self, fingerprint: str) -> Optional[Path]:
        """The archive directory if present *and* verified, else ``None``.

        A present-but-corrupt archive (torn by a kill during the final
        archive write, bit rot, tampering) is discarded so the next
        submission recomputes it — serving unverifiable bytes is never
        an option.
        """
        path = self.path_for(fingerprint)
        if not path.is_dir():
            return None
        if not verify_archive(path).ok:
            self.discard(fingerprint)
            return None
        self.touch(fingerprint)
        return path

    def discard(self, fingerprint: str) -> None:
        """Remove a stored archive (corruption recovery path)."""
        path = self.path_for(fingerprint)
        if path.is_dir():
            shutil.rmtree(path)

    def archive_files(self, fingerprint: str) -> List[str]:
        """The archive's servable file names, manifest first.

        Read from the manifest rather than the filesystem so the
        listing matches what verification covered.
        """
        path = self.path_for(fingerprint)
        manifest = json.loads(
            (path / "manifest.json").read_text(encoding="utf-8")
        )
        names = ["manifest.json"]
        for entry in manifest.get("experiments", []):
            name = entry.get("file")
            if isinstance(name, str) and name:
                names.append(name)
        return names

    def read_file(self, fingerprint: str, name: str) -> bytes:
        """Raw bytes of one archive file; only manifest-listed names."""
        if name not in self.archive_files(fingerprint):
            raise ConfigurationError(
                f"{name!r} is not a file of archive {fingerprint}"
            )
        return (self.path_for(fingerprint) / name).read_bytes()

    # -- recency + eviction ---------------------------------------------

    def _index_path(self) -> Path:
        return self.directory / LRU_INDEX_NAME

    def _load_index(self) -> Dict[str, object]:
        index = load_sidecar(self._index_path())
        if index is None or index.get("kind") != "lru":
            return {"kind": "lru", "counter": 0, "touched": {}}
        if not isinstance(index.get("touched"), dict):
            index["touched"] = {}
        return index

    def touch(self, fingerprint: str) -> None:
        """Mark a fingerprint as just-used (monotonic counter, not clock)."""
        self.path_for(fingerprint)  # reject malformed names
        index = self._load_index()
        counter = int(index.get("counter", 0)) + 1  # type: ignore[call-overload]
        touched = dict(index["touched"])  # type: ignore[arg-type]
        touched[fingerprint] = counter
        atomic_write_text(
            self._index_path(),
            json.dumps(
                {"kind": "lru", "counter": counter, "touched": touched},
                sort_keys=True,
            )
            + "\n",
        )

    def stored_fingerprints(self) -> List[str]:
        """Fingerprints with an archive directory present, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p.name
            for p in self.directory.iterdir()
            if p.is_dir() and not p.name.startswith(".")
        )

    def total_bytes(self) -> int:
        """Total size of all stored archives (recursive file sizes)."""
        total = 0
        for fingerprint in self.stored_fingerprints():
            total += self._archive_bytes(self.path_for(fingerprint))
        return total

    @staticmethod
    def _archive_bytes(path: Path) -> int:
        return sum(
            f.stat().st_size for f in sorted(path.rglob("*")) if f.is_file()
        )

    def enforce_limits(
        self, protect: AbstractSet[str] = frozenset()
    ) -> List[str]:
        """Evict archives until the configured caps hold.

        Eviction order: unverifiable archives first (they would be
        discarded on lookup anyway), then verified ones least-recently
        used first (never-touched archives rank oldest). ``protect``
        names fingerprints that must survive regardless — the service
        passes every in-flight job's fingerprint plus the archive it
        just finished, so eviction can never pull a directory out from
        under a running ``run_batch`` or an archive about to be served.

        Returns the evicted fingerprints, in eviction order.
        """
        if self.max_archives is None and self.max_bytes is None:
            return []
        index = self._load_index()
        touched = index["touched"]
        assert isinstance(touched, dict)
        candidates = []  # (corrupt_last, recency, fingerprint, size)
        sizes: Dict[str, int] = {}
        for fingerprint in self.stored_fingerprints():
            sizes[fingerprint] = self._archive_bytes(self.path_for(fingerprint))
            if fingerprint in protect:
                continue
            verified = verify_archive(self.path_for(fingerprint)).ok
            recency = int(touched.get(fingerprint, 0))
            candidates.append((1 if verified else 0, recency, fingerprint))
        candidates.sort()
        evicted: List[str] = []
        count = len(sizes)
        total = sum(sizes.values())
        for _verified, _recency, fingerprint in candidates:
            over_count = self.max_archives is not None and count > self.max_archives
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_count or over_bytes):
                break
            self.discard(fingerprint)
            evicted.append(fingerprint)
            count -= 1
            total -= sizes[fingerprint]
        if evicted:
            remaining = {
                fp: tick for fp, tick in sorted(touched.items())
                if fp not in set(evicted)
            }
            atomic_write_text(
                self._index_path(),
                json.dumps(
                    {
                        "kind": "lru",
                        "counter": int(index.get("counter", 0)),  # type: ignore[call-overload]
                        "touched": remaining,
                    },
                    sort_keys=True,
                )
                + "\n",
            )
        return evicted
