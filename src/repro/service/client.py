"""Stdlib HTTP client for the campaign service (``m2hew submit``).

A deliberately small client over :mod:`http.client` — no third-party
HTTP stack — speaking the REST surface documented in
:mod:`repro.service.app`:

* :meth:`ServiceClient.submit` posts a
  :class:`~repro.service.campaigns.CampaignRequest` and returns the
  service's submission envelope (``job``, ``created``, ``cache_hit``);
* :meth:`ServiceClient.status` reads one job, optionally with the
  progress events past a cursor (``?since=N``) so a poller never
  re-reads events it has seen;
* :meth:`ServiceClient.wait` polls status until the job reaches a
  terminal state, reporting fresh progress events along the way;
* :meth:`ServiceClient.fetch_result` / :meth:`ServiceClient.fetch_file`
  retrieve the verified result listing and raw archive bytes.

Downloaded archives remain self-verifying: fetch every listed file into
a directory and ``m2hew verify-archive`` checks it against the same
manifest checksums the server verified before serving.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from .campaigns import CampaignRequest

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the campaign service.

    Attributes:
        status: The HTTP status code.
        detail: The service's ``error`` message when the body carried
            one, else the raw body text.
    """

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class ServiceClient:
    """One campaign-service endpoint, addressed by host and port.

    Args:
        host: Service host (as passed to ``m2hew serve --host``).
        port: Service port.
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, *, timeout: float = 30.0
    ) -> None:
        if port < 1 or port > 65535:
            raise ConfigurationError(f"port must be in [1, 65535], got {port}")
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body, sort_keys=True).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        status, raw = self._request(method, path, body)
        if status >= 400:
            raise ServiceError(status, _error_detail(raw))
        document = json.loads(raw.decode("utf-8"))
        if not isinstance(document, dict):
            raise ServiceError(status, f"expected a JSON object, got {document!r}")
        return document

    # -- API -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The service's liveness document (``GET /health``)."""
        return self._json("GET", "/health")

    def submit(self, request: CampaignRequest) -> Dict[str, Any]:
        """Submit a campaign; returns ``{job, created, cache_hit}``."""
        return self._json("POST", "/campaigns", body=request.as_dict())

    def status(
        self, job_id: str, since: Optional[int] = None
    ) -> Dict[str, Any]:
        """One job's record, plus events past ``since`` when given."""
        path = f"/campaigns/{job_id}"
        if since is not None:
            path += f"?since={since}"
        return self._json("GET", path)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation (cooperative when the job is running)."""
        return self._json("POST", f"/campaigns/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        *,
        poll_interval: float = 0.25,
        timeout: Optional[float] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final record.

        Every progress event the service emits is delivered exactly once
        to ``on_event`` (the ``?since=`` cursor advances past delivered
        events), so a caller can stream per-trial progress without a
        long-lived connection.

        Args:
            job_id: The job to watch.
            poll_interval: Seconds between status polls.
            timeout: Give up after this many seconds (``None`` = wait
                forever); raises :class:`TimeoutError`.
            on_event: Observer for each fresh progress event dict.
            sleep: Injectable clock for tests.
        """
        cursor = 0
        waited = 0.0
        while True:
            document = self.status(job_id, since=cursor)
            for event in document.get("events", []):
                if on_event is not None:
                    on_event(event)
            cursor = int(document.get("next_cursor", cursor))
            job = document["job"]
            if job.get("state") in ("done", "failed", "cancelled"):
                return job
            if timeout is not None and waited >= timeout:
                raise TimeoutError(
                    f"job {job_id} still {job.get('state')!r} after {waited:.1f}s"
                )
            sleep(poll_interval)
            waited += poll_interval

    def fetch_result(self, job_id: str) -> Dict[str, Any]:
        """The verified result listing (``files`` + verification report)."""
        return self._json("GET", f"/campaigns/{job_id}/result")

    def fetch_file(self, job_id: str, name: str) -> bytes:
        """Raw bytes of one archive file."""
        status, raw = self._request("GET", f"/campaigns/{job_id}/files/{name}")
        if status >= 400:
            raise ServiceError(status, _error_detail(raw))
        return raw

    def download_archive(self, job_id: str, names: List[str]) -> Dict[str, bytes]:
        """Fetch the named archive files; ``name -> bytes`` in given order."""
        return {name: self.fetch_file(job_id, name) for name in names}


def _error_detail(raw: bytes) -> str:
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return raw.decode("utf-8", errors="replace")
    if isinstance(document, dict) and isinstance(document.get("error"), str):
        return document["error"]
    return raw.decode("utf-8", errors="replace")
