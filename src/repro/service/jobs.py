"""Campaign jobs and their crash-safe persistence.

A :class:`CampaignJob` is one submission's lifecycle record: the
validated request, its campaign fingerprint and a state machine
``queued → running → done | failed | cancelled``. The
:class:`JobStore` persists every transition as one atomically-written
JSON file per job, so the scheduler's queue can be rebuilt after a
server kill: jobs found in ``running`` state are demoted back to
``queued`` on load — their journals (not the job file) are the source
of truth for how much work remains, so re-running them resumes rather
than recomputes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..exceptions import ArchiveCorruptionError, ConfigurationError
from ..resilience.atomic import atomic_write_text
from .campaigns import CampaignRequest

__all__ = ["JOB_STATES", "TERMINAL_STATES", "CampaignJob", "JobStore"]

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class CampaignJob:
    """Lifecycle record of one submitted campaign.

    Attributes:
        job_id: Stable identifier (``job-<seq>``), assigned at submit.
        seq: Monotonic submission sequence number.
        request: The validated campaign request.
        fingerprint: Campaign content fingerprint (dedup/store key).
        state: One of :data:`JOB_STATES`.
        error: Failure detail (``failed`` state only).
        cached: Whether the result was served from the store without
            recomputation.
        restored: Trials restored from checkpoint journals instead of
            executed (resumed jobs).
    """

    job_id: str
    seq: int
    request: CampaignRequest
    fingerprint: str
    state: str = "queued"
    error: Optional[str] = None
    cached: bool = False
    restored: int = 0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ConfigurationError(
                f"unknown job state {self.state!r}; choose from {JOB_STATES}"
            )

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL_STATES

    def as_dict(self) -> Dict[str, Any]:
        """JSON form (both the persisted record and the API shape)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "request": self.request.as_dict(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "error": self.error,
            "cached": self.cached,
            "restored": self.restored,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignJob":
        """Rebuild a job from its persisted JSON record."""
        return cls(
            job_id=payload["job_id"],
            seq=int(payload["seq"]),
            request=CampaignRequest.from_dict(payload["request"]),
            fingerprint=payload["fingerprint"],
            state=payload["state"],
            error=payload.get("error"),
            cached=bool(payload.get("cached", False)),
            restored=int(payload.get("restored", 0)),
        )


class JobStore:
    """One-file-per-job persistence under ``<directory>/job-*.json``.

    Writes are atomic (tmp + fsync + rename), so a reader — including a
    restarted server — only ever observes complete records.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._jobs: Dict[str, CampaignJob] = {}

    def save(self, job: CampaignJob) -> None:
        """Persist (and index) a job's current state."""
        self._jobs[job.job_id] = job
        atomic_write_text(
            self.directory / f"{job.job_id}.json",
            json.dumps(job.as_dict(), indent=2, sort_keys=True),
        )

    def get(self, job_id: str) -> Optional[CampaignJob]:
        """The job by id, or ``None``."""
        return self._jobs.get(job_id)

    def jobs_in_order(self) -> List[CampaignJob]:
        """Every known job, by submission sequence."""
        return sorted(self._jobs.values(), key=lambda job: job.seq)

    def next_seq(self) -> int:
        """Sequence number for the next submission."""
        if not self._jobs:
            return 1
        return max(job.seq for job in self._jobs.values()) + 1

    def load_all(self) -> List[CampaignJob]:
        """Rebuild the index from disk (server restart).

        Jobs persisted as ``running`` are demoted to ``queued``: the
        previous process died mid-campaign, and the checkpoint journals
        — not the job record — say which trials already ran.
        """
        self._jobs = {}
        if not self.directory.is_dir():
            return []
        requeued: List[CampaignJob] = []
        for path in sorted(self.directory.glob("job-*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                job = CampaignJob.from_dict(payload)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ArchiveCorruptionError(
                    f"job record {path} is corrupt: {exc}"
                ) from exc
            if job.state == "running":
                job.state = "queued"
                requeued.append(job)
            self._jobs[job.job_id] = job
        for job in requeued:
            self.save(job)
        return self.jobs_in_order()
