"""Campaign service: the long-running, queue-driven face of ``m2hew``.

Where ``m2hew batch`` is one-shot, ``m2hew serve`` keeps a process
alive that accepts campaign submissions over HTTP, schedules them under
quota control, executes them through the resilience supervisor with
checkpoint journals as job state, deduplicates identical campaigns by
content fingerprint against a store of self-verifying archives, and
streams per-job progress. See ``docs/service.md`` for the API and the
dedup/resume contracts.

The invariant everything here leans on: archived campaign bytes are a
pure function of campaign *inputs* (scenario, protocols, seeds, trial
count, fault plan) — never of how execution happened (workers, backend,
chunking, retries, resume). That is what makes fingerprint-keyed dedup
sound and served archives byte-identical to direct CLI runs.
"""

from __future__ import annotations

from .app import CampaignService
from .campaigns import (
    CampaignRequest,
    campaign_specs,
    request_fingerprint,
    resolve_fault_plan,
)
from .client import ServiceClient, ServiceError
from .jobs import CampaignJob, JobStore
from .progress import ProgressEvent, ProgressTracker
from .scheduler import CampaignScheduler, QuotaPolicy
from .store import LRU_INDEX_NAME, ResultStore
from .worker import ExecutionResult, execute_job

__all__ = [
    "CampaignJob",
    "CampaignRequest",
    "CampaignScheduler",
    "CampaignService",
    "ExecutionResult",
    "JobStore",
    "LRU_INDEX_NAME",
    "ProgressEvent",
    "ProgressTracker",
    "QuotaPolicy",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "campaign_specs",
    "execute_job",
    "request_fingerprint",
    "resolve_fault_plan",
]
