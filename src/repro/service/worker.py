"""Job execution: the queue-driven face of the resilience supervisor.

:func:`execute_job` turns one queued :class:`~repro.service.jobs.CampaignJob`
into a verified archive in the result store. It is a thin, idempotent
wrapper around :func:`~repro.sim.batch.run_batch` run *supervised*:

* the checkpoint directory is keyed by the campaign **fingerprint**
  (not the job id), so any later job for the same campaign — including
  the re-queued job of a killed server — resumes from the journals
  instead of recomputing completed trials;
* the archive is written straight into the store slot for that
  fingerprint and verified before the function returns; a kill during
  the archive write leaves a partial directory that fails verification
  and is discarded on the next lookup, which recomputes (instantly,
  from the journals);
* cancellation is cooperative: the ``cancelled`` probe is checked at
  every progress point and unwinds via
  :class:`~repro.exceptions.JobCancelledError`, keeping every journaled
  trial.

Because the specs come from :func:`~repro.service.campaigns.campaign_specs`
— the same expansion ``m2hew batch`` uses — and ``run_batch``'s output
is execution-invariant, the stored archive is byte-identical to a
direct CLI run of the same parameters.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from ..exceptions import ConfigurationError, JobCancelledError
from ..resilience.policy import RetryPolicy
from ..resilience.verify import verify_archive
from ..sim.batch import batch_fingerprint, run_batch
from .campaigns import campaign_specs
from .jobs import CampaignJob
from .store import ResultStore

__all__ = ["ExecutionResult", "execute_job"]


@dataclass(frozen=True)
class ExecutionResult:
    """What executing (or short-circuiting) one job produced.

    Attributes:
        archive: The verified archive directory inside the store.
        cached: True when the store already held a verified archive and
            nothing ran.
        restored: Trials restored from checkpoint journals rather than
            executed (0 for fresh runs and cache hits).
    """

    archive: Path
    cached: bool
    restored: int


def execute_job(
    job: CampaignJob,
    *,
    store: ResultStore,
    checkpoint_root: Union[str, Path],
    retry: Optional[RetryPolicy] = None,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = 1,
    on_progress: Optional[Callable[[str, int, int], None]] = None,
    cancelled: Optional[Callable[[], bool]] = None,
    queue_dir: Optional[Union[str, Path]] = None,
) -> ExecutionResult:
    """Run one job to a verified archive in the store.

    Args:
        job: The job to execute; its fingerprint must match its request
            (defense against tampered persisted records).
        store: Result store the archive lands in.
        checkpoint_root: Directory holding per-fingerprint checkpoint
            journal directories.
        retry: Supervision policy (default: a standard
            :class:`~repro.resilience.policy.RetryPolicy`).
        max_workers: Trial fan-out processes per campaign.
        backend: Execution backend (see :mod:`repro.sim.parallel`).
        chunk_size: Trials per dispatch unit. The default of 1 gives
            per-trial journaling and progress granularity — archives
            are chunking-invariant, so this is a latency knob only.
        on_progress: Observer receiving ``(experiment, completed,
            total)`` as trials complete (after journaling).
        cancelled: Probe polled at every progress point; returning True
            aborts via :class:`~repro.exceptions.JobCancelledError`.
        queue_dir: Shared work-queue directory. When set, trial chunks
            are published for ``m2hew worker`` processes (any host
            sharing the directory) instead of running in-process — see
            :mod:`repro.resilience.distributed`. Archives stay
            byte-identical either way, so this changes job latency,
            never job output.

    Raises:
        JobCancelledError: The probe reported cancellation.
        ConfigurationError: The job's fingerprint does not match its
            request.
        ArchiveCorruptionError: The archive failed its post-write
            verification (disk-level trouble).
    """
    specs = campaign_specs(job.request)
    fingerprint = batch_fingerprint(specs, job.request.base_seed)
    if fingerprint != job.fingerprint:
        raise ConfigurationError(
            f"job {job.job_id}: stored fingerprint {job.fingerprint[:12]}… "
            f"does not match its request ({fingerprint[:12]}…); "
            "refusing to execute a tampered job record"
        )

    def check_cancelled() -> None:
        if cancelled is not None and cancelled():
            raise JobCancelledError(f"job {job.job_id} was cancelled")

    check_cancelled()
    cached = store.lookup(fingerprint)
    if cached is not None:
        return ExecutionResult(archive=cached, cached=True, restored=0)

    def observer(experiment: str, completed: int, total: int) -> None:
        check_cancelled()
        if on_progress is not None:
            on_progress(experiment, completed, total)

    checkpoint_dir = Path(checkpoint_root) / fingerprint
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    archive_dir = store.path_for(fingerprint)
    outcomes = run_batch(
        specs,
        base_seed=job.request.base_seed,
        output_dir=archive_dir,
        max_workers=max_workers,
        backend=backend,
        chunk_size=chunk_size,
        retry=retry or RetryPolicy(),
        checkpoint_dir=checkpoint_dir,
        on_progress=observer,
        queue_dir=queue_dir,
    )
    verify_archive(archive_dir).raise_if_corrupt()
    store.touch(fingerprint)
    # The archive now carries the campaign; the journals were only ever
    # its in-flight state. Dropping them keeps the data dir bounded.
    shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return ExecutionResult(
        archive=archive_dir,
        cached=False,
        restored=sum(outcome.restored for outcome in outcomes),
    )
