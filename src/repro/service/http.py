"""Minimal asyncio HTTP/1.1 layer for the campaign service.

Exactly what the REST surface needs and nothing more: request parsing
with hard size limits, JSON responses with ``Content-Length``, and
chunked transfer encoding for event streams. Every connection is
``Connection: close`` — the service trades keep-alive throughput for
not carrying connection-reuse state, which is the right trade for a
handful of long-poll clients. No third-party framework, per the repo's
dependency policy.

Security posture: the server binds loopback by default (the CLI's
``--host``), enforces a 1 MiB body cap and a 100-header cap, and maps
parse failures to 400 without echoing raw bytes back.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "Handler",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "json_response",
]

_logger = logging.getLogger("repro.service")

#: Request body cap: campaign submissions are a few hundred bytes.
MAX_BODY_BYTES = 1 << 20
__all__.append("MAX_BODY_BYTES")

_MAX_HEADERS = 100
_MAX_LINE_BYTES = 8192

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request the server refuses; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON, or :class:`HttpError` 400."""
        if not self.body:
            raise HttpError(400, "request body must be JSON, got none")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


@dataclass
class HttpResponse:
    """One response: either a complete body or a chunked stream."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    #: When set, the body is ignored and the stream's chunks are sent
    #: with ``Transfer-Encoding: chunked`` as they become available.
    stream: Optional[AsyncIterator[bytes]] = None


def json_response(payload: Any, status: int = 200) -> HttpResponse:
    """A JSON response with deterministic (sorted-key) encoding."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return HttpResponse(status=status, body=text.encode("utf-8"))


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


class HttpServer:
    """An :func:`asyncio.start_server` wrapper around one handler."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0):
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        Port 0 binds an ephemeral port (tests); the bound port is
        reflected into :attr:`port`.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = int(sockname[1])
        return str(sockname[0]), self.port

    async def close(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except HttpError as exc:
                await _write_response(
                    writer, json_response({"error": exc.message}, exc.status)
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client went away or sent garbage mid-line
            try:
                response = await self.handler(request)
            except HttpError as exc:
                response = json_response({"error": exc.message}, exc.status)
            except Exception:
                _logger.exception(
                    "handler failed for %s %s", request.method, request.path
                )
                response = json_response({"error": "internal server error"}, 500)
            await _write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client disconnects mid-write are routine
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _read_request(reader: asyncio.StreamReader) -> HttpRequest:
    request_line = await reader.readline()
    if not request_line:
        raise asyncio.IncompleteReadError(partial=b"", expected=1)
    if len(request_line) > _MAX_LINE_BYTES:
        raise HttpError(400, "request line too long")
    parts = request_line.decode("latin-1").strip().split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS + 1):
        line = await reader.readline()
        if len(line) > _MAX_LINE_BYTES:
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= _MAX_HEADERS:
            raise HttpError(400, "too many headers")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return HttpRequest(
        method=method,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


async def _write_response(
    writer: asyncio.StreamWriter, response: HttpResponse
) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.append(f"Content-Type: {response.content_type}")
    for name, value in sorted(response.headers.items()):
        lines.append(f"{name}: {value}")
    lines.append("Connection: close")
    if response.stream is None:
        lines.append(f"Content-Length: {len(response.body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)
        await writer.drain()
        return
    lines.append("Transfer-Encoding: chunked")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()
