"""Per-job progress events, bridged from worker threads to HTTP readers.

The worker executes campaigns in a thread (the supervised trial loop is
synchronous and fsyncs journals); HTTP handlers run on the asyncio
loop. The bridge is deliberately primitive: an append-only, per-job
event list guarded by a :class:`threading.Lock`, with integer cursors.
Writers append; readers poll ``events_since(job_id, cursor)``. No
cross-thread ``asyncio`` signalling — the streaming endpoint sleeps
briefly between polls, which is robust against every
thread/loop-lifetime race the fancier designs invite.

Events fire *after* the journal holds what they report (see
:meth:`repro.resilience.supervisor._Supervision.notify_progress`), so a
consumer acting on an event never runs ahead of what a restart would
restore. The log is in-memory only and O(completed trials) per job; a
restarted server starts a fresh log, with the journals carrying the
durable state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["ProgressEvent", "ProgressTracker"]


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of a job's execution.

    ``kind="state"`` marks a lifecycle transition (``state`` carries the
    new job state); ``kind="progress"`` reports trial completion within
    one experiment (``experiment``, ``completed``, ``total`` set).
    ``seq`` is the event's per-job cursor position.
    """

    seq: int
    job_id: str
    kind: str
    state: str
    experiment: Optional[str] = None
    completed: Optional[int] = None
    total: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON form served by the status and event-stream endpoints."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
        }
        if self.experiment is not None:
            payload["experiment"] = self.experiment
        if self.completed is not None:
            payload["completed"] = self.completed
        if self.total is not None:
            payload["total"] = self.total
        return payload


class ProgressTracker:
    """Thread-safe append-only event logs, one per job."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: Dict[str, List[ProgressEvent]] = {}

    def emit(
        self,
        job_id: str,
        kind: str,
        state: str,
        experiment: Optional[str] = None,
        completed: Optional[int] = None,
        total: Optional[int] = None,
    ) -> ProgressEvent:
        """Append one event; safe from any thread."""
        with self._lock:
            log = self._events.setdefault(job_id, [])
            event = ProgressEvent(
                seq=len(log),
                job_id=job_id,
                kind=kind,
                state=state,
                experiment=experiment,
                completed=completed,
                total=total,
            )
            log.append(event)
            return event

    def events_since(self, job_id: str, cursor: int = 0) -> List[ProgressEvent]:
        """Events with ``seq >= cursor``, in order; empty if none yet.

        The next cursor is ``events[-1].seq + 1`` (or the same cursor
        when nothing new arrived) — poll loops and the chunked stream
        both advance it that way.
        """
        if cursor < 0:
            cursor = 0
        with self._lock:
            log = self._events.get(job_id, [])
            return list(log[cursor:])

    def latest(self, job_id: str) -> Optional[ProgressEvent]:
        """The most recent event for a job, if any."""
        with self._lock:
            log = self._events.get(job_id, [])
            return log[-1] if log else None
