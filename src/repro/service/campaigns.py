"""Campaign requests: the service's validated submission surface.

A :class:`CampaignRequest` is the JSON-friendly description of one
``run_batch`` campaign — a named scenario, a set of registered
protocols and the seeded-trial parameters. Validation happens at
construction against the same registries the CLI uses
(:func:`~repro.workloads.scenarios.scenario_names`, the protocol table
in :mod:`repro.core.registry`, the fault presets), so a request that
constructs is a request the worker can run.

:func:`campaign_specs` expands a request into the exact
:class:`~repro.sim.batch.ExperimentSpec` list ``m2hew batch`` builds
for the same arguments — both call sites share this function, which is
what makes a service-produced archive byte-identical to a CLI-produced
one. :func:`request_fingerprint` is the content fingerprint the dedup
store and the checkpoint journals key on; it covers only campaign
*inputs*, never execution knobs (workers, backend, chunking), because
those cannot influence archived bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.registry import ASYNCHRONOUS_PROTOCOLS
from ..exceptions import ConfigurationError
from ..faults.plan import FaultPlan
from ..faults.presets import fault_preset, fault_preset_names
from ..sim.batch import ExperimentSpec, batch_fingerprint
from ..sim.runner import SYNC_PROTOCOLS, experiment_runner_params
from ..workloads.scenarios import Scenario, scenario, scenario_names

__all__ = [
    "CampaignRequest",
    "campaign_specs",
    "request_fingerprint",
    "resolve_fault_plan",
]


def resolve_fault_plan(name: str, scen: Scenario) -> Optional[FaultPlan]:
    """Fault plan for the ``faults`` selector the CLI and service share.

    ``"scenario"`` means the scenario's own plan (possibly none),
    ``"none"`` disables faults, anything else is a named preset.
    """
    if name == "scenario":
        return scen.fault_plan
    if name == "none":
        return None
    return fault_preset(name)


@dataclass(frozen=True)
class CampaignRequest:
    """One validated campaign submission.

    Attributes:
        scenario: Named workload (see ``m2hew scenarios``).
        protocols: Registered protocol names, in run order (order is
            part of the campaign identity — it fixes the manifest
            order, hence the archived bytes).
        trials: Seeded trials per protocol.
        base_seed: Campaign root seed.
        network_seed: Workload realization seed.
        max_slots: Per-trial slot budget (synchronous protocols).
        delta_est: Degree bound override (default: the scenario's).
        faults: ``"scenario"``, ``"none"`` or a fault preset name.
        client: Submitting client's identifier; quota accounting only —
            deliberately *excluded* from the fingerprint so identical
            campaigns dedup across clients.
    """

    scenario: str
    protocols: Tuple[str, ...]
    trials: int = 5
    base_seed: int = 0
    network_seed: int = 0
    max_slots: int = 200_000
    delta_est: Optional[int] = None
    faults: str = "scenario"
    client: str = "anonymous"

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        if self.scenario not in scenario_names():
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; choose from "
                f"{tuple(scenario_names())}"
            )
        if not self.protocols:
            raise ConfigurationError("a campaign needs at least one protocol")
        known = SYNC_PROTOCOLS + ASYNCHRONOUS_PROTOCOLS
        for protocol in self.protocols:
            if protocol not in known:
                raise ConfigurationError(
                    f"unknown protocol {protocol!r}; choose from {known}"
                )
        if len(set(self.protocols)) != len(self.protocols):
            raise ConfigurationError(
                f"duplicate protocols in campaign: {sorted(self.protocols)}"
            )
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        if self.max_slots < 1:
            raise ConfigurationError(
                f"max_slots must be >= 1, got {self.max_slots}"
            )
        if self.delta_est is not None and self.delta_est < 1:
            raise ConfigurationError(
                f"delta_est must be >= 1, got {self.delta_est}"
            )
        fault_choices = ("scenario", "none") + tuple(fault_preset_names())
        if self.faults not in fault_choices:
            raise ConfigurationError(
                f"unknown fault selector {self.faults!r}; choose from "
                f"{fault_choices}"
            )
        if not self.client or not isinstance(self.client, str):
            raise ConfigurationError("client must be a non-empty string")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignRequest":
        """Build a request from a JSON object, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"campaign request must be a JSON object, got {type(payload).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign request field(s): {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        for key in ("scenario", "protocols"):
            if key not in payload:
                raise ConfigurationError(f"campaign request needs {key!r}")
        kwargs = dict(payload)
        protocols = kwargs.pop("protocols")
        if isinstance(protocols, str) or not isinstance(protocols, (list, tuple)):
            raise ConfigurationError(
                "protocols must be a list of protocol names"
            )
        for key in ("trials", "base_seed", "network_seed", "max_slots", "delta_est"):
            value = kwargs.get(key)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ConfigurationError(
                    f"campaign request field {key!r} must be an integer, "
                    f"got {value!r}"
                )
        try:
            return cls(protocols=tuple(protocols), **kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"invalid campaign request: {exc}") from exc

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (inverse of :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "protocols": list(self.protocols),
            "trials": self.trials,
            "base_seed": self.base_seed,
            "network_seed": self.network_seed,
            "max_slots": self.max_slots,
            "delta_est": self.delta_est,
            "faults": self.faults,
            "client": self.client,
        }


def campaign_specs(request: CampaignRequest) -> List[ExperimentSpec]:
    """Expand a request into the batch's :class:`ExperimentSpec` list.

    This is the single source of truth for campaign expansion: ``m2hew
    batch`` and the service worker both call it, so for equal parameters
    they hand :func:`~repro.sim.batch.run_batch` equal specs and archive
    equal bytes.
    """
    scen = scenario(request.scenario)
    network = scen.build(request.network_seed)
    delta_est = (
        request.delta_est if request.delta_est is not None else scen.delta_est
    )
    fault_plan = resolve_fault_plan(request.faults, scen)
    specs: List[ExperimentSpec] = []
    for protocol in request.protocols:
        runner_params: Dict[str, Any]
        if protocol in ASYNCHRONOUS_PROTOCOLS:
            runner_params = {"delta_est": delta_est}
            if fault_plan is not None:
                runner_params["faults"] = fault_plan
        else:
            runner_params = experiment_runner_params(
                protocol,
                network,
                delta_est=delta_est,
                max_slots=request.max_slots,
                faults=fault_plan,
            )
        specs.append(
            ExperimentSpec(
                name=f"{request.scenario}_{protocol}",
                workload=scen.config,
                protocol=protocol,
                trials=request.trials,
                network_seed=request.network_seed,
                runner_params=runner_params,
            )
        )
    return specs


def request_fingerprint(request: CampaignRequest) -> str:
    """Content fingerprint of the campaign a request describes.

    Defined as :func:`~repro.sim.batch.batch_fingerprint` over the
    expanded specs, so a request and the equivalent ``m2hew batch``
    invocation fingerprint identically, and two requests differing in
    any input parameter (or protocol order) do not.
    """
    return batch_fingerprint(campaign_specs(request), request.base_seed)
