"""Campaign scheduling: a FIFO queue under quota and rate control.

The scheduler is deliberately dumb about *what* a job computes — dedup
against the result store and in-flight fingerprints happens before a
job reaches it (:mod:`repro.service.app`). It enforces the service's
capacity promises:

* at most ``max_active`` campaigns execute concurrently (each campaign
  already fans its trials out over worker processes, so campaign-level
  concurrency multiplies process counts);
* at most ``max_queued`` submissions wait;
* one client may hold at most ``max_per_client`` open (queued or
  running) jobs and must space submissions ``min_interval`` seconds
  apart.

Rejections raise :class:`~repro.exceptions.QuotaExceededError` (HTTP
429) and leave no trace. The clock is injectable for tests; wall time
here is rate limiting, not simulation input — nothing scheduled ever
influences archived bytes, which depend only on campaign parameters.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ..exceptions import ConfigurationError, QuotaExceededError
from .jobs import CampaignJob

__all__ = ["CampaignScheduler", "QuotaPolicy"]


@dataclass(frozen=True)
class QuotaPolicy:
    """Capacity and per-client fairness limits.

    Attributes:
        max_active: Campaigns executing concurrently.
        max_queued: Submissions waiting behind them.
        max_per_client: Open (queued + running) jobs one client may hold.
        min_interval: Minimum seconds between one client's submissions.
    """

    max_active: int = 1
    max_queued: int = 16
    max_per_client: int = 8
    min_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ConfigurationError(
                f"max_active must be >= 1, got {self.max_active}"
            )
        if self.max_queued < 1:
            raise ConfigurationError(
                f"max_queued must be >= 1, got {self.max_queued}"
            )
        if self.max_per_client < 1:
            raise ConfigurationError(
                f"max_per_client must be >= 1, got {self.max_per_client}"
            )
        if self.min_interval < 0:
            raise ConfigurationError(
                f"min_interval must be >= 0, got {self.min_interval}"
            )


class CampaignScheduler:
    """FIFO job queue enforcing a :class:`QuotaPolicy`."""

    def __init__(
        self,
        policy: Optional[QuotaPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.policy = policy or QuotaPolicy()
        self._clock = clock if clock is not None else time.monotonic
        self._queue: Deque[CampaignJob] = deque()
        self._running: Dict[str, CampaignJob] = {}
        self._last_submit: Dict[str, float] = {}

    # -- submission ------------------------------------------------------

    def submit(self, job: CampaignJob) -> None:
        """Enqueue a job, or raise :class:`QuotaExceededError`."""
        client = job.request.client
        if len(self._queue) >= self.policy.max_queued:
            raise QuotaExceededError(
                f"queue is full ({self.policy.max_queued} campaign(s) "
                "waiting); retry later"
            )
        open_jobs = sum(
            1
            for other in list(self._queue) + list(self._running.values())
            if other.request.client == client
        )
        if open_jobs >= self.policy.max_per_client:
            raise QuotaExceededError(
                f"client {client!r} already holds {open_jobs} open "
                f"campaign(s) (limit {self.policy.max_per_client})"
            )
        now = self._clock()
        last = self._last_submit.get(client)
        if (
            self.policy.min_interval > 0
            and last is not None
            and now - last < self.policy.min_interval
        ):
            raise QuotaExceededError(
                f"client {client!r} must wait "
                f"{self.policy.min_interval - (now - last):.2f}s before "
                "submitting again"
            )
        self._last_submit[client] = now
        self._queue.append(job)

    def requeue(self, job: CampaignJob) -> None:
        """Re-enqueue a restored job (restart path); bypasses quotas."""
        self._queue.append(job)

    # -- dispatch --------------------------------------------------------

    def start_next(self) -> Optional[CampaignJob]:
        """Pop the next job if a concurrency slot is free, else ``None``."""
        if not self._queue or len(self._running) >= self.policy.max_active:
            return None
        job = self._queue.popleft()
        self._running[job.job_id] = job
        return job

    def finish(self, job_id: str) -> None:
        """Release a running job's concurrency slot."""
        self._running.pop(job_id, None)

    def cancel_queued(self, job_id: str) -> bool:
        """Remove a job still waiting in the queue; True if it was there."""
        for job in list(self._queue):
            if job.job_id == job_id:
                self._queue.remove(job)
                return True
        return False

    # -- introspection ---------------------------------------------------

    def queued_jobs(self) -> List[CampaignJob]:
        """Waiting jobs, in dispatch order."""
        return list(self._queue)

    def running_jobs(self) -> List[CampaignJob]:
        """Executing jobs, by submission sequence."""
        return sorted(self._running.values(), key=lambda job: job.seq)

    @property
    def has_work(self) -> bool:
        """Whether a dispatch attempt could start something."""
        return bool(self._queue) and len(self._running) < self.policy.max_active
