"""Per-trial realization of a :class:`~repro.faults.plan.FaultPlan`.

:func:`compile_plan` turns a plan into a :class:`FaultRuntime` for one
trial — or into ``None`` when the plan is trivial, in which case the
engines follow their fault-free code path untouched (the zero-intensity
invariance the tests pin at archive-byte level).

Determinism contract: every random element of a runtime draws from a
dedicated, stably named stream of the trial's
:class:`~repro.sim.rng.RngFactory` (``"faults-jam-…"``, ``"faults-pu-…"``,
``"faults-ge-…"``, ``"faults-glitch-…"``). Streams are keyed by model
index within the plan plus entity (channel / user / node), never by
query order, so trajectories are identical wherever the trial runs.
Loss models are the one deliberate exception: :class:`BernoulliLoss`
draws from the *engine's* erasure stream in exactly the legacy pattern,
which is what makes a Bernoulli-only plan bit-identical to the engines'
``erasure_prob`` parameter.

Engine integration surface (all cheap no-ops for absent families):

* synchronous engines call :meth:`FaultRuntime.begin_slot` once per
  slot, then :meth:`blocked` / :meth:`blocked_mask`,
  :meth:`alive` / :meth:`alive_mask`, :meth:`join_offset` and the loss
  hooks;
* the asynchronous engine uses :meth:`blocked_during` (interval
  queries), :meth:`join_time`, :meth:`crash_time`, :meth:`wrap_clock`
  and :meth:`keep_delivery`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ClockModelError, ConfigurationError
from ..net.network import M2HeWNetwork
from ..sim.clock import Clock
from ..sim.rng import RngFactory
from .activity import OnOffTimeline, realize
from .models import (
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
)
from .plan import FaultPlan

__all__ = ["FaultRuntime", "GlitchedClock", "TIME_UNITS", "compile_plan"]

#: Engine time units a runtime can be compiled for.
TIME_UNITS = ("slots", "seconds")

#: Cap on logged spectrum on/off events per trial (archives stay small;
#: the drop count is recorded alongside).
_EVENT_CAP = 200


class GlitchedClock(Clock):
    """A clock whose rate gains ``spike`` while a glitch timeline is on.

    ``C'(t) = C(t) + spike · on_time_before(t)`` — the base mapping plus
    the integral of the spike over glitch-on time. Strictly increasing
    because the combined drift bound stays below 1 (validated here).
    The inverse is computed by bisection, like
    :class:`~repro.sim.clock.SinusoidalDriftClock`.
    """

    def __init__(self, base: Clock, timeline: OnOffTimeline, spike: float) -> None:
        bound = base.drift_bound + abs(spike)
        if bound >= 1.0:
            raise ClockModelError(
                f"glitched clock drift bound {bound} >= 1 (base "
                f"{base.drift_bound} + |spike| {abs(spike)}); the clock "
                "would not be strictly increasing"
            )
        super().__init__(bound)
        self._base = base
        self._timeline = timeline
        self._spike = float(spike)

    def local_from_real(self, real: float) -> float:
        return (
            self._base.local_from_real(real)
            + self._spike * self._timeline.on_time_before(real)
        )

    def real_from_local(self, local: float) -> float:
        origin = self.local_from_real(0.0)
        if local < origin - 1e-9:
            raise ClockModelError(
                f"local time {local} precedes clock origin {origin}"
            )
        # Rate >= 1 − drift_bound > 0 brackets the root in [0, hi].
        hi = max(local - origin, 0.0) / (1.0 - self.drift_bound) + 1e-9
        lo = 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.local_from_real(mid) < local:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-12 * max(1.0, abs(local)):
                break
        return 0.5 * (lo + hi)


class _SpectrumEmitter:
    """One realized blocker: a channel, an affected node set, a timeline."""

    __slots__ = ("kind", "label", "channel", "nodes", "timeline")

    def __init__(
        self,
        kind: str,
        label: str,
        channel: int,
        nodes: Optional[frozenset],
        timeline: OnOffTimeline,
    ) -> None:
        self.kind = kind
        self.label = label
        self.channel = channel
        self.nodes = nodes  # None = affects every node
        self.timeline = timeline

    def affects(self, node_id: int) -> bool:
        return self.nodes is None or node_id in self.nodes


class _BernoulliLossRuntime:
    """Draws from the *engine's* erasure stream, legacy shapes exactly."""

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        self.p = p

    def keep(
        self,
        sender: int,
        receiver: int,
        time: float,
        engine_rng: np.random.Generator,
    ) -> bool:
        return not engine_rng.random() < self.p


class _GilbertElliottRuntime:
    """Lazy per-link two-state chain, dedicated stream.

    State is advanced only at delivery instants using the exact chain
    transient ``P(bad at t+Δ) = π_b + (1{bad} − π_b)·e^{−(α+β)Δ}``; one
    uniform resolves the state, a second (skipped when the state's loss
    probability is 0) resolves the drop.
    """

    __slots__ = ("_model", "_rng", "_pi_bad", "_rate", "_states")

    def __init__(self, model: GilbertElliott, rng: np.random.Generator) -> None:
        self._model = model
        self._rng = rng
        self._pi_bad = model.stationary_bad
        self._rate = 1.0 / model.mean_good + 1.0 / model.mean_bad
        self._states: Dict[Tuple[int, int], Tuple[float, bool]] = {}

    def keep(
        self,
        sender: int,
        receiver: int,
        time: float,
        engine_rng: np.random.Generator,
    ) -> bool:
        link = (sender, receiver)
        previous = self._states.get(link)
        if previous is None:
            p_bad = self._pi_bad
        else:
            last_time, was_bad = previous
            decay = math.exp(-self._rate * (time - last_time))
            p_bad = self._pi_bad + ((1.0 if was_bad else 0.0) - self._pi_bad) * decay
        is_bad = bool(self._rng.random() < p_bad)
        self._states[link] = (float(time), is_bad)
        p_loss = self._model.p_bad if is_bad else self._model.p_good
        if p_loss <= 0.0:
            return True
        return not self._rng.random() < p_loss


class FaultRuntime:
    """One trial's realized fault trajectories (see module docstring).

    Build via :func:`compile_plan`; constructing a runtime for a trivial
    plan is an error — the engines rely on ``runtime is None`` to mean
    "fault-free path".
    """

    def __init__(
        self,
        plan: FaultPlan,
        network: M2HeWNetwork,
        rng_factory: RngFactory,
        time_unit: str,
    ) -> None:
        if time_unit not in TIME_UNITS:
            raise ConfigurationError(
                f"unknown time unit {time_unit!r}; choose from {TIME_UNITS}"
            )
        if plan.is_trivial:
            raise ConfigurationError(
                "trivial FaultPlan must not be compiled; compile_plan "
                "returns None for it"
            )
        self._plan = plan
        self._time_unit = time_unit
        self._rng_factory = rng_factory
        node_ids = set(network.node_ids)

        self._emitters: List[_SpectrumEmitter] = []
        self._loss: List[Any] = []
        self._glitches: List[Tuple[int, ClockGlitch]] = []
        self._joins: Dict[int, float] = {}
        self._crashes: Dict[int, float] = {}

        for m_idx, model in enumerate(plan.models):
            if model.is_trivial:
                continue
            if isinstance(model, JammingBursts):
                self._add_jamming(m_idx, model, network)
            elif isinstance(model, DynamicPrimaryUsers):
                self._add_primary_users(m_idx, model, network)
            elif isinstance(model, BernoulliLoss):
                self._loss.append(_BernoulliLossRuntime(model.p))
            elif isinstance(model, GilbertElliott):
                self._loss.append(
                    _GilbertElliottRuntime(
                        model, rng_factory.stream(f"faults-ge-{m_idx}")
                    )
                )
            elif isinstance(model, NodeChurn):
                self._add_churn(model, node_ids)
            elif isinstance(model, ClockGlitch):
                if model.nodes is not None:
                    unknown = [n for n in model.nodes if n not in node_ids]
                    if unknown:
                        raise ConfigurationError(
                            f"ClockGlitch targets unknown nodes {unknown}"
                        )
                self._glitches.append((m_idx, model))

        self.has_spectrum = bool(self._emitters)
        self.has_loss = bool(self._loss)
        self.has_churn = bool(self._joins or self._crashes)
        self.has_clock_faults = bool(self._glitches)

        # Spectrum state cache for the slot-synchronous engines.
        self._active_flags = [False] * len(self._emitters)
        self._mask_dirty = True
        self._events: List[Dict[str, Any]] = []
        self._events_dropped = 0

        # Populated by bind_dense (fast engine only).
        self._bound_ids: Optional[List[int]] = None
        self._bound_rows: List[Optional[Tuple[int, np.ndarray]]] = []
        self._mask: Optional[np.ndarray] = None
        self._crash_vec: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _add_jamming(
        self, m_idx: int, model: JammingBursts, network: M2HeWNetwork
    ) -> None:
        universal = sorted(network.universal_channel_set)
        if model.channels is None:
            channels: Sequence[int] = universal
        else:
            unknown = [c for c in model.channels if c not in set(universal)]
            if unknown:
                raise ConfigurationError(
                    f"JammingBursts targets channels {unknown} outside the "
                    f"network's universal set {universal}"
                )
            channels = model.channels
        for c in channels:
            timeline = realize(
                model.activity,
                self._rng_factory.stream(f"faults-jam-{m_idx}-ch{c}"),
            )
            self._emitters.append(
                _SpectrumEmitter("jamming", f"jam-{m_idx}-ch{c}", c, None, timeline)
            )

    def _add_primary_users(
        self, m_idx: int, model: DynamicPrimaryUsers, network: M2HeWNetwork
    ) -> None:
        positions = {
            nid: network.node(nid).position for nid in network.node_ids
        }
        if all(p is None for p in positions.values()):
            raise ConfigurationError(
                "DynamicPrimaryUsers requires node positions (geometric "
                "topologies); this network has none"
            )
        for u_idx, user in enumerate(model.users):
            affected = frozenset(
                nid
                for nid, pos in positions.items()
                if pos is not None and user.blocks(pos)
            )
            timeline = realize(
                model.activity,
                self._rng_factory.stream(f"faults-pu-{m_idx}-{u_idx}"),
            )
            self._emitters.append(
                _SpectrumEmitter(
                    "primary_user",
                    f"pu-{m_idx}-{u_idx}",
                    user.channel,
                    affected,
                    timeline,
                )
            )

    def _add_churn(self, model: NodeChurn, node_ids: set) -> None:
        for nid, _ in model.joins + model.crashes:
            if nid not in node_ids:
                raise ConfigurationError(
                    f"NodeChurn references unknown node {nid}"
                )
        for nid, t in model.joins:
            self._joins[nid] = max(self._joins.get(nid, 0.0), t)
        for nid, t in model.crashes:
            self._crashes[nid] = min(self._crashes.get(nid, math.inf), t)

    # ------------------------------------------------------------------
    # spectrum — synchronous (slot) interface
    # ------------------------------------------------------------------

    def begin_slot(self, t: int) -> None:
        """Advance spectrum state to slot ``t``; log on/off transitions."""
        if not self.has_spectrum:
            return
        now = float(t)
        for i, emitter in enumerate(self._emitters):
            on = emitter.timeline.active_at(now)
            if on != self._active_flags[i]:
                self._active_flags[i] = on
                self._mask_dirty = True
                self._log_event(now, emitter, on)

    def blocked(self, node_id: int, channel: int) -> bool:
        """Whether ``(node, channel)`` is unusable in the current slot."""
        for emitter, on in zip(self._emitters, self._active_flags):
            if on and emitter.channel == channel and emitter.affects(node_id):
                return True
        return False

    def bind_dense(
        self,
        node_ids: Sequence[int],
        dense_of_channel: Mapping[int, int],
        num_dense: int,
    ) -> None:
        """Prepare vectorized views for the fast engine's node/channel
        indexing (row = node index, column = dense channel index)."""
        ids = list(node_ids)
        index = {nid: i for i, nid in enumerate(ids)}
        self._bound_ids = ids
        self._bound_rows = []
        for emitter in self._emitters:
            k = dense_of_channel.get(emitter.channel)
            if k is None:
                self._bound_rows.append(None)
                continue
            if emitter.nodes is None:
                rows = np.arange(len(ids), dtype=np.int64)
            else:
                rows = np.array(
                    sorted(index[n] for n in emitter.nodes if n in index),
                    dtype=np.int64,
                )
            self._bound_rows.append((k, rows))
        self._mask = np.zeros((len(ids), num_dense), dtype=bool)
        self._mask_dirty = True
        self._crash_vec = np.array(
            [self._crashes.get(nid, math.inf) for nid in ids], dtype=np.float64
        )

    def blocked_mask(self) -> np.ndarray:
        """Boolean ``(num_nodes, num_dense)`` blocked matrix for the
        current slot (requires :meth:`bind_dense`)."""
        if self._mask is None:
            raise ConfigurationError(
                "blocked_mask requires bind_dense (fast engine only)"
            )
        if self._mask_dirty:
            self._mask[:] = False
            for bound, on in zip(self._bound_rows, self._active_flags):
                if on and bound is not None:
                    k, rows = bound
                    self._mask[rows, k] = True
            self._mask_dirty = False
        return self._mask

    # ------------------------------------------------------------------
    # spectrum — asynchronous (interval) interface
    # ------------------------------------------------------------------

    def blocked_during(
        self, node_id: int, channel: int, start: float, end: float
    ) -> bool:
        """Whether any blocker covers part of ``(start, end)`` on
        ``channel`` for ``node_id`` (asynchronous engine)."""
        if not self.has_spectrum:
            return False
        for emitter in self._emitters:
            if (
                emitter.channel == channel
                and emitter.affects(node_id)
                and emitter.timeline.overlaps_on(start, end)
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------

    def join_time(self, node_id: int) -> float:
        """Earliest time the node may start (0 when unaffected)."""
        return self._joins.get(node_id, 0.0)

    def join_offset(self, node_id: int) -> int:
        """:meth:`join_time` rounded up to a whole slot."""
        return int(math.ceil(self._joins.get(node_id, 0.0)))

    def crash_time(self, node_id: int) -> float:
        """Crash-stop instant (``inf`` when the node never crashes)."""
        return self._crashes.get(node_id, math.inf)

    def alive(self, node_id: int, time: float) -> bool:
        """Whether the node has not yet crashed at ``time``."""
        return time < self._crashes.get(node_id, math.inf)

    def alive_mask(self, t: int) -> np.ndarray:
        """Vectorized :meth:`alive` over the bound node order."""
        if self._crash_vec is None:
            raise ConfigurationError(
                "alive_mask requires bind_dense (fast engine only)"
            )
        return self._crash_vec > t

    # ------------------------------------------------------------------
    # loss
    # ------------------------------------------------------------------

    def keep_delivery(
        self,
        sender: int,
        receiver: int,
        time: float,
        engine_rng: np.random.Generator,
    ) -> bool:
        """Whether a clear delivery survives every loss model."""
        for loss in self._loss:
            if not loss.keep(sender, receiver, time, engine_rng):
                return False
        return True

    def keep_mask(
        self,
        sender_indices: np.ndarray,
        receiver_indices: np.ndarray,
        time: float,
        engine_rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized loss hook for the fast engine (bound indices).

        Bernoulli models draw one batch of uniforms per call — the
        legacy ``erasure_prob`` shape exactly; link-state models draw
        per still-kept delivery in array order.
        """
        if self._bound_ids is None:
            raise ConfigurationError(
                "keep_mask requires bind_dense (fast engine only)"
            )
        count = int(receiver_indices.size)
        keep = np.ones(count, dtype=bool)
        for loss in self._loss:
            if isinstance(loss, _BernoulliLossRuntime):
                keep &= engine_rng.random(count) >= loss.p
            else:
                for j in range(count):
                    if keep[j]:
                        keep[j] = loss.keep(
                            self._bound_ids[int(sender_indices[j])],
                            self._bound_ids[int(receiver_indices[j])],
                            time,
                            engine_rng,
                        )
        return keep

    # ------------------------------------------------------------------
    # batched entry points (trial-batched engine)
    # ------------------------------------------------------------------

    @staticmethod
    def batched_alive_mask(
        runtimes: Sequence[Optional["FaultRuntime"]], t: int, num_nodes: int
    ) -> np.ndarray:
        """Stacked :meth:`alive_mask` rows, shape ``(B, num_nodes)``.

        ``runtimes[b]`` is trial ``b``'s runtime (all bound via
        :meth:`bind_dense`) or ``None`` for a fault-free row, whose
        nodes are all alive; used by the trial- and grid-batched engine.
        """
        mask = np.ones((len(runtimes), num_nodes), dtype=bool)
        for b, runtime in enumerate(runtimes):
            if runtime is not None:
                mask[b] = runtime.alive_mask(t)
        return mask

    @staticmethod
    def batched_blocked_mask(
        runtimes: Sequence[Optional["FaultRuntime"]],
        num_nodes: int,
        num_dense: int,
    ) -> np.ndarray:
        """Stacked :meth:`blocked_mask`, shape ``(B, num_nodes, num_dense)``.

        ``None`` rows (fault-free trials in a grid batch) block nothing.
        """
        mask = np.zeros((len(runtimes), num_nodes, num_dense), dtype=bool)
        for b, runtime in enumerate(runtimes):
            if runtime is not None:
                mask[b] = runtime.blocked_mask()
        return mask

    @staticmethod
    def batched_keep_mask(
        runtimes: Sequence[Optional["FaultRuntime"]],
        trial_indices: np.ndarray,
        sender_indices: np.ndarray,
        receiver_indices: np.ndarray,
        time: float,
        engine_rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Per-trial :meth:`keep_mask` over a trial-major delivery batch.

        ``trial_indices`` must be non-decreasing so each trial's slice is
        contiguous and its loss draws come from ``engine_rngs[b]`` in the
        exact order a serial run of that trial would issue them. Trials
        with no deliveries get no slice and therefore draw nothing —
        matching the serial engine's early return on an empty slot.
        ``None`` rows keep every delivery and draw nothing, exactly like
        a serial fault-free trial.
        """
        keep = np.ones(int(trial_indices.size), dtype=bool)
        for b, runtime in enumerate(runtimes):
            if runtime is None:
                continue
            lo = int(np.searchsorted(trial_indices, b, side="left"))
            hi = int(np.searchsorted(trial_indices, b, side="right"))
            if lo == hi:
                continue
            keep[lo:hi] = runtime.keep_mask(
                sender_indices[lo:hi],
                receiver_indices[lo:hi],
                time,
                engine_rngs[b],
            )
        return keep

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------

    def wrap_clock(self, node_id: int, clock: Clock) -> Clock:
        """Apply every clock-glitch model targeting ``node_id``."""
        for m_idx, model in self._glitches:
            if model.nodes is not None and node_id not in model.nodes:
                continue
            timeline = realize(
                model.activity,
                self._rng_factory.stream(f"faults-glitch-{m_idx}-node{node_id}"),
            )
            clock = GlitchedClock(clock, timeline, model.spike)
        return clock

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def _log_event(self, time: float, emitter: _SpectrumEmitter, on: bool) -> None:
        if len(self._events) >= _EVENT_CAP:
            self._events_dropped += 1
            return
        self._events.append(
            {
                "time": time,
                "kind": emitter.kind,
                "entity": emitter.label,
                "channel": emitter.channel,
                "on": on,
            }
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-ready record for result metadata: the plan plus the
        spectrum on/off events observed so far (synchronous engines)."""
        return {
            "plan": self._plan.describe(),
            "time_unit": self._time_unit,
            "events": [dict(e) for e in self._events],
            "events_dropped": self._events_dropped,
        }


def compile_plan(
    plan: FaultPlan,
    network: M2HeWNetwork,
    rng_factory: RngFactory,
    time_unit: str,
) -> Optional[FaultRuntime]:
    """Realize ``plan`` for one trial; ``None`` when it changes nothing.

    Engines treat the ``None`` return as "no fault layer at all" — no
    extra draws, no extra metadata — which is what makes an empty or
    zero-intensity plan byte-identical to a fault-free run.
    """
    if not isinstance(plan, FaultPlan):
        raise ConfigurationError(
            f"compile_plan expects a FaultPlan, got {type(plan).__name__}"
        )
    if plan.is_trivial:
        return None
    return FaultRuntime(plan, network, rng_factory, time_unit)
