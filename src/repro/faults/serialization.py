"""JSON round-trip for fault plans.

Plans ride inside :class:`~repro.sim.batch.ExperimentSpec` runner
parameters and must therefore archive as plain JSON (manifest +
experiment files) and rebuild bit-identically from that JSON — a
replayed faulted trial needs the exact plan, and the plan plus the
trial seed determine every fault trajectory.

Format: every model/activity serializes to a dict with a ``"kind"``
discriminator; a plan is ``{"models": [...]}``. Unknown kinds raise
:class:`~repro.exceptions.ConfigurationError` so stale archives fail
loudly instead of silently dropping faults.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Union

from ..exceptions import ConfigurationError
from ..net.primary_users import PrimaryUser
from .activity import ActivitySpec, FixedWindows, RenewalActivity
from .models import (
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    FaultModel,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
)
from .plan import FaultPlan

__all__ = [
    "activity_from_dict",
    "activity_to_dict",
    "as_fault_plan",
    "model_from_dict",
    "model_to_dict",
    "plan_from_dict",
    "plan_to_dict",
]


def activity_to_dict(spec: ActivitySpec) -> Dict[str, Any]:
    """Serialize an activity spec (see module docstring for the format)."""
    if isinstance(spec, FixedWindows):
        return {
            "kind": "fixed_windows",
            "windows": [[s, e] for s, e in spec.windows],
        }
    if isinstance(spec, RenewalActivity):
        return {
            "kind": "renewal",
            "mean_on": spec.mean_on,
            "mean_off": spec.mean_off,
            "start_on": spec.start_on,
        }
    raise ConfigurationError(
        f"cannot serialize activity {type(spec).__name__}"
    )


def activity_from_dict(data: Mapping[str, Any]) -> ActivitySpec:
    """Inverse of :func:`activity_to_dict`."""
    kind = data.get("kind")
    if kind == "fixed_windows":
        return FixedWindows(
            windows=tuple((float(s), float(e)) for s, e in data["windows"])
        )
    if kind == "renewal":
        return RenewalActivity(
            mean_on=data["mean_on"],
            mean_off=data["mean_off"],
            start_on=data.get("start_on"),
        )
    raise ConfigurationError(f"unknown activity kind {kind!r}")


def model_to_dict(model: FaultModel) -> Dict[str, Any]:
    """Serialize one fault model."""
    if isinstance(model, BernoulliLoss):
        return {"kind": "bernoulli_loss", "p": model.p}
    if isinstance(model, GilbertElliott):
        return {
            "kind": "gilbert_elliott",
            "p_good": model.p_good,
            "p_bad": model.p_bad,
            "mean_good": model.mean_good,
            "mean_bad": model.mean_bad,
        }
    if isinstance(model, JammingBursts):
        return {
            "kind": "jamming_bursts",
            "activity": activity_to_dict(model.activity),
            "channels": None if model.channels is None else list(model.channels),
        }
    if isinstance(model, DynamicPrimaryUsers):
        return {
            "kind": "dynamic_primary_users",
            "users": [
                {
                    "position": [u.position[0], u.position[1]],
                    "channel": u.channel,
                    "radius": u.radius,
                }
                for u in model.users
            ],
            "activity": activity_to_dict(model.activity),
        }
    if isinstance(model, NodeChurn):
        return {
            "kind": "node_churn",
            "joins": [[nid, t] for nid, t in model.joins],
            "crashes": [[nid, t] for nid, t in model.crashes],
        }
    if isinstance(model, ClockGlitch):
        return {
            "kind": "clock_glitch",
            "spike": model.spike,
            "activity": activity_to_dict(model.activity),
            "nodes": None if model.nodes is None else list(model.nodes),
        }
    raise ConfigurationError(
        f"cannot serialize fault model {type(model).__name__}"
    )


def model_from_dict(data: Mapping[str, Any]) -> FaultModel:
    """Inverse of :func:`model_to_dict`."""
    kind = data.get("kind")
    if kind == "bernoulli_loss":
        return BernoulliLoss(p=data["p"])
    if kind == "gilbert_elliott":
        return GilbertElliott(
            p_good=data["p_good"],
            p_bad=data["p_bad"],
            mean_good=data["mean_good"],
            mean_bad=data["mean_bad"],
        )
    if kind == "jamming_bursts":
        channels = data.get("channels")
        return JammingBursts(
            activity=activity_from_dict(data["activity"]),
            channels=None if channels is None else tuple(channels),
        )
    if kind == "dynamic_primary_users":
        return DynamicPrimaryUsers(
            users=tuple(
                PrimaryUser(
                    position=(float(u["position"][0]), float(u["position"][1])),
                    channel=int(u["channel"]),
                    radius=float(u["radius"]),
                )
                for u in data["users"]
            ),
            activity=activity_from_dict(data["activity"]),
        )
    if kind == "node_churn":
        return NodeChurn(
            joins=tuple((int(n), float(t)) for n, t in data.get("joins", ())),
            crashes=tuple(
                (int(n), float(t)) for n, t in data.get("crashes", ())
            ),
        )
    if kind == "clock_glitch":
        nodes = data.get("nodes")
        return ClockGlitch(
            spike=data["spike"],
            activity=activity_from_dict(data["activity"]),
            nodes=None if nodes is None else tuple(nodes),
        )
    raise ConfigurationError(f"unknown fault model kind {kind!r}")


def plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """Serialize a whole plan (model order preserved)."""
    return {"models": [model_to_dict(m) for m in plan.models]}


def plan_from_dict(data: Mapping[str, Any]) -> FaultPlan:
    """Inverse of :func:`plan_to_dict`."""
    models = data.get("models")
    if models is None:
        raise ConfigurationError(
            "fault plan dict needs a 'models' list"
        )
    return FaultPlan(models=tuple(model_from_dict(m) for m in models))


def as_fault_plan(
    value: Union[FaultPlan, Mapping[str, Any], None]
) -> Optional[FaultPlan]:
    """Normalize a runner-facing ``faults`` argument.

    Accepts an existing plan, a serialized plan dict (as archived in a
    batch manifest — this is how replayed campaigns rebuild faults), or
    ``None``.
    """
    if value is None:
        return None
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, Mapping):
        return plan_from_dict(value)
    raise ConfigurationError(
        f"faults must be a FaultPlan, a plan dict or None, got "
        f"{type(value).__name__}"
    )
