"""Named fault plans for the CLI's ``--faults`` option.

Presets are deliberately scenario-agnostic: they avoid hard-coded node
positions (no :class:`DynamicPrimaryUsers` — scenarios carry those, see
``workloads/scenarios.py``) and only reference node 0 / low channel ids,
which every bundled workload has. Each call builds a fresh plan, so
presets can never leak state between runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import ConfigurationError
from .models import BernoulliLoss, GilbertElliott, JammingBursts, NodeChurn
from .plan import FaultPlan

__all__ = ["FAULT_PRESETS", "fault_preset", "fault_preset_names"]


def _bursty_loss() -> FaultPlan:
    """Gilbert–Elliott loss on every link: mostly clean, bursty outages."""
    return FaultPlan(
        models=(
            GilbertElliott(p_good=0.02, p_bad=0.8, mean_good=500.0, mean_bad=50.0),
        )
    )


def _flat_loss() -> FaultPlan:
    """Memoryless 10% loss — the ``erasure_prob=0.1`` twin, as a plan."""
    return FaultPlan(models=(BernoulliLoss(p=0.1),))


def _jamming_light() -> FaultPlan:
    """All channels jammed ~15% of the time in ~300-unit bursts."""
    return FaultPlan(
        models=(JammingBursts.from_duty_cycle(duty=0.15, mean_burst=300.0),)
    )


def _jamming_heavy() -> FaultPlan:
    """All channels jammed ~45% of the time — near the usability cliff."""
    return FaultPlan(
        models=(JammingBursts.from_duty_cycle(duty=0.45, mean_burst=300.0),)
    )


def _late_join() -> FaultPlan:
    """Node 0 joins late (time 500) — the variable-start stress case."""
    return FaultPlan(models=(NodeChurn(joins=((0, 500.0),)),))


def _crash_node0() -> FaultPlan:
    """Node 0 crash-stops at time 2000; discovery of its outgoing links
    may stay incomplete (expected — that is the failure being modeled)."""
    return FaultPlan(models=(NodeChurn(crashes=((0, 2000.0),)),))


FAULT_PRESETS: Dict[str, Callable[[], FaultPlan]] = {
    "bursty_loss": _bursty_loss,
    "flat_loss": _flat_loss,
    "jamming_light": _jamming_light,
    "jamming_heavy": _jamming_heavy,
    "late_join": _late_join,
    "crash_node0": _crash_node0,
}


def fault_preset_names() -> List[str]:
    """All preset names, sorted (CLI choices)."""
    return sorted(FAULT_PRESETS)


def fault_preset(name: str) -> FaultPlan:
    """Build the named preset plan."""
    try:
        return FAULT_PRESETS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown fault preset {name!r}; choose from {fault_preset_names()}"
        ) from None
