"""The :class:`FaultPlan` — the unit the engines and campaigns accept.

A plan is an immutable, picklable composition of fault models (see
:mod:`repro.faults.models`). It carries *descriptions only*; per-trial
realization happens in :mod:`repro.faults.runtime` from the trial's
:class:`~repro.sim.rng.RngFactory`, so one plan object parameterizes a
whole campaign and ships unchanged to pool workers.

The empty (or all-trivial) plan is the identity: it compiles to no
runtime at all, and engines given it follow exactly their fault-free
code path — byte-identical results, proven by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..exceptions import ConfigurationError
from .models import (
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    FaultModel,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
)

__all__ = ["FaultPlan"]

_MODEL_TYPES = (
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered composition of fault models for one trial/campaign.

    Ordering matters only for loss models (they are consulted in plan
    order per delivery); spectrum, churn and clock models combine by
    union. The same plan realizes *different* trajectories per trial —
    every random element derives from the trial seed through dedicated
    ``"faults-…"`` streams.
    """

    models: Tuple[FaultModel, ...] = ()

    def __post_init__(self) -> None:
        models = tuple(self.models)
        for model in models:
            if not isinstance(model, _MODEL_TYPES):
                raise ConfigurationError(
                    f"unknown fault model {type(model).__name__}; known "
                    f"models: {sorted(t.__name__ for t in _MODEL_TYPES)}"
                )
        object.__setattr__(self, "models", models)

    @property
    def is_trivial(self) -> bool:
        """True when compiling this plan would change nothing."""
        return all(model.is_trivial for model in self.models)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready description (see :mod:`repro.faults.serialization`)."""
        from .serialization import plan_to_dict

        return plan_to_dict(self)
