"""On/off activity processes shared by the time-varying fault models.

Every *spectrum* fault (a primary user occupying a channel, a jammer
bursting on one) and every *clock glitch* is an entity that alternates
between an active ("on") and an inactive ("off") state over simulated
time. This module provides the two ways to describe that alternation —
:class:`FixedWindows` (explicit intervals, fully deterministic; the tool
for targeted tests and replay) and :class:`RenewalActivity` (an
exponential on/off renewal process, the standard model for primary-user
traffic) — plus :func:`realize`, which turns a description into a
queryable :class:`OnOffTimeline` for one trial.

Determinism: a :class:`RenewalTimeline` consumes randomness *only* from
the generator handed to :func:`realize` and extends itself lazily in
time order, so the state at any instant depends solely on that stream —
never on which component queried the timeline first. Each fault entity
gets its own named stream from the run's
:class:`~repro.sim.rng.RngFactory` (see :mod:`repro.faults.runtime`),
which is what keeps pooled campaigns byte-identical for any worker
count.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "ActivitySpec",
    "FixedWindows",
    "OnOffTimeline",
    "RenewalActivity",
    "RenewalTimeline",
    "WindowTimeline",
    "realize",
]


@dataclass(frozen=True)
class FixedWindows:
    """Deterministic activity: "on" exactly inside the given intervals.

    Attributes:
        windows: ``(start, end)`` pairs in simulated time units (slots
            for the synchronous engines, seconds for the asynchronous
            one); half-open ``[start, end)``, sorted and disjoint. An
            empty tuple means "never on" — a trivial spec.
    """

    windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        normalized = tuple(
            (float(s), float(e)) for s, e in self.windows
        )
        object.__setattr__(self, "windows", normalized)
        prev_end = None
        for start, end in normalized:
            if start < 0 or end <= start:
                raise ConfigurationError(
                    f"activity window must satisfy 0 <= start < end, "
                    f"got ({start}, {end})"
                )
            if prev_end is not None and start < prev_end:
                raise ConfigurationError(
                    f"activity windows must be sorted and disjoint; "
                    f"window ({start}, {end}) overlaps the previous one"
                )
            prev_end = end

    @property
    def is_trivial(self) -> bool:
        """True when the entity is never on."""
        return not self.windows


@dataclass(frozen=True)
class RenewalActivity:
    """Exponential on/off renewal process (random burst lengths).

    On periods are exponential with mean ``mean_on``, off periods with
    mean ``mean_off`` (same time units as the engine). The initial
    state is drawn from the stationary distribution — on with
    probability ``mean_on / (mean_on + mean_off)`` — unless pinned via
    ``start_on``.

    Attributes:
        mean_on: Mean duration of an on (active) period; must be > 0.
        mean_off: Mean duration of an off period; must be > 0.
        start_on: ``True``/``False`` pins the state at time 0;
            ``None`` draws it from the stationary distribution.
    """

    mean_on: float
    mean_off: float
    start_on: Optional[bool] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mean_on", float(self.mean_on))
        object.__setattr__(self, "mean_off", float(self.mean_off))
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ConfigurationError(
                f"renewal activity needs positive mean_on/mean_off, got "
                f"({self.mean_on}, {self.mean_off})"
            )

    @property
    def duty_cycle(self) -> float:
        """Stationary fraction of time the entity is on."""
        return self.mean_on / (self.mean_on + self.mean_off)

    @property
    def is_trivial(self) -> bool:
        """A renewal process is on a positive fraction of the time."""
        return False

    @classmethod
    def from_duty_cycle(
        cls, duty: float, mean_on: float, start_on: Optional[bool] = None
    ) -> "RenewalActivity":
        """Build from a target duty cycle and mean burst length."""
        if not 0.0 < duty < 1.0:
            raise ConfigurationError(
                f"duty cycle must be in (0, 1), got {duty}"
            )
        mean_off = mean_on * (1.0 - duty) / duty
        return cls(mean_on=mean_on, mean_off=mean_off, start_on=start_on)


ActivitySpec = Union[FixedWindows, RenewalActivity]


class OnOffTimeline(abc.ABC):
    """One realized on/off trajectory, queryable at any time ``>= 0``."""

    @abc.abstractmethod
    def active_at(self, time: float) -> bool:
        """Whether the entity is on at instant ``time``."""

    @abc.abstractmethod
    def overlaps_on(self, start: float, end: float) -> bool:
        """Whether any on-period intersects ``(start, end)`` with
        positive duration (used for interval receptions in the
        asynchronous engine)."""

    @abc.abstractmethod
    def on_time_before(self, time: float) -> float:
        """Total on-duration accumulated in ``[0, time]`` (used by the
        glitched-clock integral)."""


class WindowTimeline(OnOffTimeline):
    """Timeline backed by explicit :class:`FixedWindows`."""

    def __init__(self, spec: FixedWindows) -> None:
        self._windows = spec.windows

    def active_at(self, time: float) -> bool:
        for start, end in self._windows:
            if start <= time < end:
                return True
            if start > time:
                break
        return False

    def overlaps_on(self, start: float, end: float) -> bool:
        for w_start, w_end in self._windows:
            if w_start < end and w_end > start:
                return True
            if w_start >= end:
                break
        return False

    def on_time_before(self, time: float) -> float:
        total = 0.0
        for w_start, w_end in self._windows:
            if w_start > time:
                break
            total += min(w_end, time) - w_start
        return total


class RenewalTimeline(OnOffTimeline):
    """Lazily generated realization of a :class:`RenewalActivity`.

    Segment boundaries are appended in time order only, each drawn from
    the timeline's private generator, so queries at any mix of times
    observe one consistent trajectory regardless of query order.
    """

    def __init__(self, spec: RenewalActivity, rng: np.random.Generator) -> None:
        self._spec = spec
        self._rng = rng
        if spec.start_on is None:
            self._start_on = bool(rng.random() < spec.duty_cycle)
        else:
            self._start_on = bool(spec.start_on)
        # Segment i spans [bounds[i], bounds[i+1]) and is on iff
        # (i even) == start_on; cum_on[i] is the on-time in [0, bounds[i]].
        self._bounds: List[float] = [0.0, self._draw(self._state(0))]
        self._cum_on: List[float] = [0.0]

    def _state(self, segment: int) -> bool:
        return self._start_on if segment % 2 == 0 else not self._start_on

    def _draw(self, on: bool) -> float:
        mean = self._spec.mean_on if on else self._spec.mean_off
        # `or mean` guards the (measure-zero) exact-0.0 draw, which would
        # create an empty segment and stall the lazy extension.
        return float(self._rng.exponential(mean)) or mean

    def _extend_to(self, time: float) -> None:
        while self._bounds[-1] <= time:
            closed = len(self._bounds) - 2  # segment now fully determined
            seg_len = self._bounds[closed + 1] - self._bounds[closed]
            self._cum_on.append(
                self._cum_on[-1] + (seg_len if self._state(closed) else 0.0)
            )
            nxt = len(self._bounds) - 1
            self._bounds.append(self._bounds[-1] + self._draw(self._state(nxt)))

    def _segment_of(self, time: float) -> int:
        self._extend_to(time)
        return bisect.bisect_right(self._bounds, time) - 1

    def active_at(self, time: float) -> bool:
        if time < 0:
            return False
        return self._state(self._segment_of(time))

    def overlaps_on(self, start: float, end: float) -> bool:
        if end <= start:
            return False
        start = max(start, 0.0)
        i = self._segment_of(start)
        self._extend_to(end)
        while i < len(self._bounds) - 1 and self._bounds[i] < end:
            if self._state(i) and self._bounds[i + 1] > start:
                return True
            i += 1
        return False

    def on_time_before(self, time: float) -> float:
        if time <= 0:
            return 0.0
        i = self._segment_of(time)
        partial = time - self._bounds[i] if self._state(i) else 0.0
        return self._cum_on[i] + partial


def realize(
    spec: ActivitySpec, rng: Optional[np.random.Generator] = None
) -> OnOffTimeline:
    """Turn an activity description into one trial's timeline.

    Args:
        spec: The activity description.
        rng: Private generator for this entity's randomness; required
            for :class:`RenewalActivity`, ignored for
            :class:`FixedWindows`.
    """
    if isinstance(spec, FixedWindows):
        return WindowTimeline(spec)
    if isinstance(spec, RenewalActivity):
        if rng is None:
            raise ConfigurationError(
                "RenewalActivity needs a dedicated rng stream to realize"
            )
        return RenewalTimeline(spec, rng)
    raise ConfigurationError(
        f"unknown activity spec {type(spec).__name__}; use FixedWindows "
        "or RenewalActivity"
    )
