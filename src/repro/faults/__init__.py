"""Composable, fully seeded fault injection for the discovery engines.

This package models the adversity the paper's cognitive-radio setting
motivates but the static workloads cannot express: primary users that
arrive and depart mid-run, adversarial jamming bursts, bursty link
loss, node churn and clock glitches. A :class:`FaultPlan` composes any
subset; engines consult its compiled :class:`FaultRuntime` per slot
(synchronous) or per event time (asynchronous).

Guarantees (see ``docs/faults.md``):

* **determinism** — all fault randomness derives from the trial seed
  through dedicated named streams, so faulted campaigns stay
  byte-identical for any worker count;
* **zero-intensity invariance** — an empty or all-trivial plan compiles
  to ``None`` and the run is byte-identical to a fault-free one;
* **erasure equivalence** — a plan containing only
  :class:`BernoulliLoss(p)` is bit-identical to ``erasure_prob=p``.
"""

from __future__ import annotations

from .activity import (
    ActivitySpec,
    FixedWindows,
    OnOffTimeline,
    RenewalActivity,
    realize,
)
from .models import (
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    FaultModel,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
)
from .plan import FaultPlan
from .presets import FAULT_PRESETS, fault_preset, fault_preset_names
from .runtime import FaultRuntime, GlitchedClock, compile_plan
from .serialization import as_fault_plan, plan_from_dict, plan_to_dict

__all__ = [
    "ActivitySpec",
    "BernoulliLoss",
    "ClockGlitch",
    "DynamicPrimaryUsers",
    "FAULT_PRESETS",
    "FaultModel",
    "FaultPlan",
    "FaultRuntime",
    "FixedWindows",
    "GilbertElliott",
    "GlitchedClock",
    "JammingBursts",
    "NodeChurn",
    "OnOffTimeline",
    "RenewalActivity",
    "as_fault_plan",
    "compile_plan",
    "fault_preset",
    "fault_preset_names",
    "plan_from_dict",
    "plan_to_dict",
    "realize",
]
