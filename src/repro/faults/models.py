"""The fault models a :class:`~repro.faults.plan.FaultPlan` composes.

Each model is an immutable, picklable description — realization (the
actual random trajectories) happens per trial in
:mod:`repro.faults.runtime` so that a single plan object can be shared
across a whole campaign and shipped to pool workers. Models fall into
four families:

* **spectrum** — :class:`DynamicPrimaryUsers` and :class:`JammingBursts`
  make (node, channel) pairs temporarily unusable;
* **loss** — :class:`BernoulliLoss` and :class:`GilbertElliott` drop
  otherwise-clear deliveries;
* **membership** — :class:`NodeChurn` delays node starts and crash-stops
  nodes mid-run;
* **timing** — :class:`ClockGlitch` injects drift spikes into the
  asynchronous engine's clocks (ignored by the slot-synchronous engines,
  whose model has no clocks).

Every model exposes ``is_trivial``: a plan whose models are all trivial
compiles to *no* runtime at all, which is what guarantees byte-identical
results with a fault-free run (see ``docs/faults.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from ..net.primary_users import PrimaryUser
from .activity import ActivitySpec, FixedWindows, RenewalActivity

__all__ = [
    "BernoulliLoss",
    "ClockGlitch",
    "DynamicPrimaryUsers",
    "FaultModel",
    "GilbertElliott",
    "JammingBursts",
    "NodeChurn",
]


def _validate_activity(activity: ActivitySpec, owner: str) -> None:
    if not isinstance(activity, (FixedWindows, RenewalActivity)):
        raise ConfigurationError(
            f"{owner}.activity must be FixedWindows or RenewalActivity, "
            f"got {type(activity).__name__}"
        )


def _as_time_pairs(
    value: Union[Mapping[int, float], Iterable[Tuple[int, float]]],
    owner: str,
) -> Tuple[Tuple[int, float], ...]:
    items = value.items() if isinstance(value, Mapping) else value
    pairs = tuple(sorted((int(nid), float(t)) for nid, t in items))
    seen = set()
    for nid, t in pairs:
        if nid in seen:
            raise ConfigurationError(f"{owner} lists node {nid} twice")
        seen.add(nid)
        if t < 0:
            raise ConfigurationError(
                f"{owner} time for node {nid} must be >= 0, got {t}"
            )
    return pairs


@dataclass(frozen=True)
class BernoulliLoss:
    """Memoryless per-delivery loss — the degenerate bursty model.

    Semantically identical to the engines' ``erasure_prob`` parameter
    (and bit-identical to it when it is the plan's only loss model,
    which a differential test pins): each otherwise-clear delivery is
    dropped independently with probability ``p``.
    """

    p: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "p", float(self.p))
        if not 0.0 <= self.p < 1.0:
            raise ConfigurationError(
                f"BernoulliLoss.p must be in [0, 1), got {self.p}"
            )

    @property
    def is_trivial(self) -> bool:
        return self.p == 0.0


@dataclass(frozen=True)
class GilbertElliott:
    """Bursty per-link loss: a two-state continuous-time Gilbert–Elliott
    channel, independent per directed link.

    Each link alternates between a *good* state (loss probability
    ``p_good``) and a *bad* state (``p_bad``), with exponential sojourn
    times of means ``mean_good`` / ``mean_bad`` (engine time units).
    Link state is sampled lazily at delivery instants using the exact
    two-state chain transient, so only links that actually carry clear
    deliveries consume randomness.

    Attributes:
        p_good: Loss probability in the good state.
        p_bad: Loss probability in the bad state.
        mean_good: Mean sojourn in the good state (> 0).
        mean_bad: Mean sojourn in the bad state (> 0).
    """

    p_good: float = 0.0
    p_bad: float = 0.9
    mean_good: float = 500.0
    mean_bad: float = 50.0

    def __post_init__(self) -> None:
        for name in ("p_good", "p_bad", "mean_good", "mean_bad"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("p_good", "p_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"GilbertElliott.{name} must be in [0, 1], got {value}"
                )
        if self.p_good == 1.0 and self.p_bad == 1.0:
            raise ConfigurationError(
                "GilbertElliott with p_good = p_bad = 1 loses every "
                "delivery; discovery cannot make progress"
            )
        for name in ("mean_good", "mean_bad"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(
                    f"GilbertElliott.{name} must be > 0, got {value}"
                )

    @property
    def stationary_bad(self) -> float:
        """Stationary probability of the bad state."""
        return self.mean_bad / (self.mean_good + self.mean_bad)

    @property
    def is_trivial(self) -> bool:
        return self.p_good == 0.0 and self.p_bad == 0.0


@dataclass(frozen=True)
class JammingBursts:
    """Adversarial per-channel outages.

    While a jamming burst is on, the targeted channel carries only
    noise everywhere: transmissions on it are suppressed (the
    transmitter senses the busy channel) and listeners on it hear
    nothing useful. Protocols are oblivious — they keep scheduling the
    channel and waste those slots, which is exactly the degradation
    being measured.

    Attributes:
        activity: Burst process, shared realization per channel
            (independent streams per channel).
        channels: Targeted channels; ``None`` jams every channel of the
            network's universal set.
    """

    activity: ActivitySpec
    channels: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _validate_activity(self.activity, "JammingBursts")
        if self.channels is not None:
            chans = tuple(sorted(int(c) for c in self.channels))
            if not chans:
                raise ConfigurationError(
                    "JammingBursts.channels must be None (all) or non-empty"
                )
            if any(c < 0 for c in chans):
                raise ConfigurationError(
                    f"JammingBursts channels must be >= 0, got {chans}"
                )
            if len(set(chans)) != len(chans):
                raise ConfigurationError(
                    f"JammingBursts channels contain duplicates: {chans}"
                )
            object.__setattr__(self, "channels", chans)

    @property
    def is_trivial(self) -> bool:
        return self.activity.is_trivial

    @classmethod
    def from_duty_cycle(
        cls,
        duty: float,
        mean_burst: float,
        channels: Optional[Tuple[int, ...]] = None,
    ) -> "JammingBursts":
        """Jammer on a stationary fraction ``duty`` of the time; a
        ``duty`` of 0 yields a trivial (never-on) model."""
        if duty == 0.0:
            return cls(activity=FixedWindows(()), channels=channels)
        return cls(
            activity=RenewalActivity.from_duty_cycle(duty, mean_burst),
            channels=channels,
        )


@dataclass(frozen=True)
class DynamicPrimaryUsers:
    """Licensed primary users that arrive and depart during execution.

    Each :class:`~repro.net.primary_users.PrimaryUser` blocks its
    channel for every node inside its interference radius *while its
    activity is on* — shrinking ``A(u)`` mid-run and restoring it when
    the PU departs. Requires node positions (geometric topologies).

    Like static PU availability, a secondary node cannot use a blocked
    channel at all: its transmissions there are suppressed (it defers to
    the licensed user) and it hears only the PU's signal when
    listening. The protocols remain oblivious; the wasted slots are the
    modeled cost of spectrum dynamics.

    Attributes:
        users: The primary users (positions, channels, radii).
        activity: On/off process; realized independently per user.
    """

    users: Tuple[PrimaryUser, ...]
    activity: ActivitySpec

    def __post_init__(self) -> None:
        users = tuple(self.users)
        if not all(isinstance(u, PrimaryUser) for u in users):
            raise ConfigurationError(
                "DynamicPrimaryUsers.users must be PrimaryUser instances"
            )
        object.__setattr__(self, "users", users)
        _validate_activity(self.activity, "DynamicPrimaryUsers")

    @property
    def is_trivial(self) -> bool:
        return not self.users or self.activity.is_trivial


@dataclass(frozen=True)
class NodeChurn:
    """Late joins and crash-stop failures.

    A *join* at time ``t`` delays the node's protocol start to ``t`` (it
    composes with explicit start offsets by taking the maximum). A
    *crash* at time ``t`` silences the node from ``t`` on — it stops
    transmitting, listening and learning, exactly the crash-stop model.
    In the asynchronous engine a crash takes effect at the node's next
    frame boundary at or after ``t``.

    Attributes:
        joins: ``(node_id, time)`` pairs (mapping accepted).
        crashes: ``(node_id, time)`` pairs (mapping accepted).
    """

    joins: Tuple[Tuple[int, float], ...] = ()
    crashes: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "joins", _as_time_pairs(self.joins, "NodeChurn.joins")
        )
        object.__setattr__(
            self, "crashes", _as_time_pairs(self.crashes, "NodeChurn.crashes")
        )

    @property
    def is_trivial(self) -> bool:
        return not self.joins and not self.crashes


@dataclass(frozen=True)
class ClockGlitch:
    """Drift spikes for the asynchronous engine's clocks (Algorithm 4).

    While the glitch is on, the affected clocks run at an extra
    ``spike`` added to their base rate (e.g. ``spike = 0.05`` makes the
    clock 5% faster during spikes). The wrapped clock's drift bound
    grows by ``|spike|`` and must stay below 1. The slot-synchronous
    engines have no clocks and ignore this model.

    Attributes:
        spike: Additional drift rate while on; ``|spike| < 1``.
        activity: When spikes occur; realized independently per node.
        nodes: Affected node ids; ``None`` affects every node.
    """

    spike: float
    activity: ActivitySpec
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "spike", float(self.spike))
        if not abs(self.spike) < 1.0:
            raise ConfigurationError(
                f"ClockGlitch.spike must satisfy |spike| < 1, got {self.spike}"
            )
        _validate_activity(self.activity, "ClockGlitch")
        if self.nodes is not None:
            nodes = tuple(sorted(int(n) for n in self.nodes))
            if not nodes:
                raise ConfigurationError(
                    "ClockGlitch.nodes must be None (all) or non-empty"
                )
            if len(set(nodes)) != len(nodes):
                raise ConfigurationError(
                    f"ClockGlitch nodes contain duplicates: {nodes}"
                )
            object.__setattr__(self, "nodes", nodes)

    @property
    def is_trivial(self) -> bool:
        return self.spike == 0.0 or self.activity.is_trivial


FaultModel = Union[
    BernoulliLoss,
    ClockGlitch,
    DynamicPrimaryUsers,
    GilbertElliott,
    JammingBursts,
    NodeChurn,
]
