"""Command-line interface (``m2hew``).

Subcommands:

* ``scenarios`` — list the named workloads;
* ``info`` — realize a scenario and print its N/S/Δ/ρ parameters;
* ``profile`` — detailed structural statistics of a scenario instance;
* ``run-sync`` — run a synchronous algorithm on a scenario;
* ``run-async`` — run Algorithm 4 on a scenario with drifting clocks;
* ``compare`` — run several algorithms on one scenario and tabulate;
* ``batch`` — run a seeded multi-protocol campaign, optionally fanned
  out over worker processes (``--workers``), with JSON archiving;
  ``--retries``/``--checkpoint``/``--resume`` run it supervised
  (retry + quarantine + checkpoint/resume, see
  :mod:`repro.resilience`); ``--queue DIR`` (or ``--backend
  distributed``) shards trial chunks over ``m2hew worker`` processes
  through a lease-based file queue, archiving byte-identical results;
* ``worker`` — run one distributed campaign worker against a shared
  ``--queue`` directory: claim chunks by atomic lease, heartbeat,
  execute, publish results (see :mod:`repro.resilience.distributed`);
* ``submit`` — submit a campaign to a running ``m2hew serve`` over
  HTTP (stdlib client), stream its progress, and optionally download
  the verified archive;
* ``tournament`` — race every registered protocol across the standing
  league of (workload × fault preset) cells and print Welch-ranked
  standings (see :mod:`repro.analysis.tournament`);
* ``serve`` — run the async HTTP campaign service: submissions queue
  under quota control, execute supervised with checkpoint journals,
  dedup by campaign fingerprint against a store of verified archives,
  and stream per-job progress (see :mod:`repro.service`);
* ``fingerprint`` — compute a campaign's content fingerprint from its
  parameters without running it (the dedup/store key);
* ``verify-archive`` — check a campaign archive against its manifest
  (checksums, schema stamps, truncation, orphan files); ``--json``
  emits the machine-readable report;
* ``timeline`` — render an asynchronous frame timeline (paper Fig. 2);
* ``terminate`` — run with node-local termination and report energy;
* ``bounds`` — print every theorem budget for given parameters;
* ``lint`` — run the repo's determinism/model-invariant static analysis;
* ``audit`` — run the whole-program determinism audit: RNG
  stream-provenance registry, parallel-ordering rules, and cross-layer
  parity contracts (see :mod:`repro.devtools.audit`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .analysis.energy import EnergyModel, energy_report
from .analysis.network_stats import profile_network
from .analysis.tables import format_table
from .analysis.tournament import DEFAULT_MAX_SLOTS, DEFAULT_TRIALS
from .core import bounds
from .core.registry import ASYNCHRONOUS_PROTOCOLS
from .core.termination import TerminationPolicy, recommended_quiet_threshold
from .faults.plan import FaultPlan
from .faults.presets import fault_preset_names
from .resilience.distributed import DISTRIBUTED_BACKEND
from .sim.parallel import BACKENDS
from .sim.rng import RngFactory
from .sim.runner import (
    CLOCK_MODELS,
    SYNC_PROTOCOLS,
    experiment_runner_params,
    random_start_offsets,
    run_asynchronous,
    run_synchronous,
)
from .sim.termination_runner import run_terminating_sync
from .workloads.scenarios import Scenario, scenario, scenario_names

__all__ = ["main", "build_parser"]


def _add_faults_argument(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--faults",
        default="scenario",
        choices=["scenario", "none"] + fault_preset_names(),
        help=(
            "fault plan: 'scenario' (the scenario's own plan, if any), "
            "'none', or a named preset"
        ),
    )


def _resolve_faults(args: argparse.Namespace, s: Scenario) -> Optional[FaultPlan]:
    from .service.campaigns import resolve_fault_plan

    return resolve_fault_plan(args.faults, s)


def _campaign_arguments(cmd: argparse.ArgumentParser) -> None:
    """Campaign-identity flags shared by ``batch`` and ``fingerprint``.

    One helper so the two commands cannot drift: a fingerprint computed
    from these flags is the fingerprint the equivalent ``batch`` run
    (and the service) will use.
    """
    cmd.add_argument("scenario", choices=scenario_names())
    cmd.add_argument(
        "--protocols",
        nargs="+",
        default=list(SYNC_PROTOCOLS),
        choices=SYNC_PROTOCOLS + ASYNCHRONOUS_PROTOCOLS,
    )
    cmd.add_argument("--trials", type=int, default=5)
    cmd.add_argument("--seed", type=int, default=0, help="campaign base seed")
    cmd.add_argument(
        "--network-seed", type=int, default=0, help="workload realization seed"
    )
    cmd.add_argument("--max-slots", type=int, default=200_000)
    cmd.add_argument("--delta-est", type=int, default=None)
    _add_faults_argument(cmd)


def _campaign_request(args: argparse.Namespace) -> "Any":
    """Build the validated campaign request the flags describe."""
    from .service.campaigns import CampaignRequest

    return CampaignRequest(
        scenario=args.scenario,
        protocols=tuple(args.protocols),
        trials=args.trials,
        base_seed=args.seed,
        network_seed=args.network_seed,
        max_slots=args.max_slots,
        delta_est=args.delta_est,
        faults=args.faults,
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``m2hew`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="m2hew",
        description=(
            "Neighbor discovery in multi-hop multi-channel heterogeneous "
            "wireless networks (ICDCS 2011 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list named workload scenarios")

    info = sub.add_parser("info", help="print a scenario's network parameters")
    info.add_argument("scenario", choices=scenario_names())
    info.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile", help="structural statistics of a scenario instance"
    )
    profile.add_argument("scenario", choices=scenario_names())
    profile.add_argument("--seed", type=int, default=0)

    term = sub.add_parser(
        "terminate",
        help="run with node-local termination detection and report energy",
    )
    term.add_argument("scenario", choices=scenario_names())
    term.add_argument("--seed", type=int, default=0)
    term.add_argument("--delta-est", type=int, default=None)
    term.add_argument(
        "--policy", default="beacon", choices=("beacon", "sleep")
    )
    term.add_argument(
        "--local-epsilon",
        type=float,
        default=1e-3,
        help="per-node false-stop probability target for the threshold",
    )
    term.add_argument("--slot-ms", type=float, default=10.0)

    sync = sub.add_parser("run-sync", help="run a synchronous algorithm")
    sync.add_argument("scenario", choices=scenario_names())
    sync.add_argument(
        "--protocol",
        default="algorithm3",
        choices=SYNC_PROTOCOLS,
    )
    sync.add_argument("--seed", type=int, default=0)
    sync.add_argument("--max-slots", type=int, default=200_000)
    sync.add_argument("--delta-est", type=int, default=None)
    sync.add_argument(
        "--stagger",
        type=int,
        default=0,
        help="random start offsets in [0, STAGGER] slots",
    )
    _add_faults_argument(sync)

    asyn = sub.add_parser("run-async", help="run Algorithm 4 with drifting clocks")
    asyn.add_argument("scenario", choices=scenario_names())
    asyn.add_argument("--seed", type=int, default=0)
    asyn.add_argument("--delta-est", type=int, default=None)
    asyn.add_argument("--drift", type=float, default=0.01)
    asyn.add_argument(
        "--clock-model",
        default="constant",
        choices=CLOCK_MODELS,
    )
    asyn.add_argument("--frame-length", type=float, default=1.0)
    asyn.add_argument("--max-frames", type=int, default=100_000)
    asyn.add_argument("--start-spread", type=float, default=5.0)
    _add_faults_argument(asyn)

    tline = sub.add_parser(
        "timeline",
        help="render an asynchronous run's frame timeline (paper Fig. 2)",
    )
    tline.add_argument("scenario", choices=scenario_names())
    tline.add_argument("--seed", type=int, default=0)
    tline.add_argument("--delta-est", type=int, default=None)
    tline.add_argument("--drift", type=float, default=0.05)
    tline.add_argument("--start", type=float, default=10.0)
    tline.add_argument("--end", type=float, default=25.0)
    tline.add_argument("--width", type=int, default=100)
    tline.add_argument("--nodes", type=int, default=4, help="rows to show")

    comp = sub.add_parser(
        "compare",
        help="run several algorithms on one scenario and tabulate",
    )
    comp.add_argument("scenario", choices=scenario_names())
    comp.add_argument("--seed", type=int, default=0)
    comp.add_argument("--trials", type=int, default=5)
    comp.add_argument("--max-slots", type=int, default=200_000)
    comp.add_argument("--delta-est", type=int, default=None)
    comp.add_argument(
        "--protocols",
        nargs="+",
        default=list(SYNC_PROTOCOLS),
        choices=SYNC_PROTOCOLS,
    )

    batch = sub.add_parser(
        "batch",
        help=(
            "run a seeded multi-protocol campaign, optionally fanned out "
            "over worker processes, archiving JSON results"
        ),
    )
    _campaign_arguments(batch)
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial fan-out processes (1 = serial; output is identical)",
    )
    batch.add_argument(
        "--backend",
        choices=BACKENDS + (DISTRIBUTED_BACKEND,),
        default="auto",
    )
    batch.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="trials per worker dispatch (default: auto)",
    )
    batch.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "trials per vectorized batch (backend=vectorized only; "
            "default: one batch per dispatch unit)"
        ),
    )
    batch.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        help="per-trial wall-clock budget in seconds",
    )
    batch.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="archive directory (one JSON per experiment + manifest.json)",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "supervise execution: retry each failing trial chunk up to N "
            "times with seeded backoff before quarantining it"
        ),
    )
    batch.add_argument(
        "--no-quarantine",
        action="store_true",
        help=(
            "abort the campaign when a trial exhausts its retries instead "
            "of quarantining it into the manifest"
        ),
    )
    batch.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "journal completed trials to DIR so an interrupted campaign "
            "can be resumed (implies supervision)"
        ),
    )
    batch.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "resume from the checkpoint journals in DIR, skipping trials "
            "they already record (same as --checkpoint, but DIR must exist)"
        ),
    )
    batch.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "inject deterministic execution-layer faults for recovery "
            "drills: comma-separated mode@trial[xTIMES] with mode in "
            "raise|exit|timeout|worker-kill|lease-steal|stale-heartbeat, "
            "e.g. 'raise@3,exit@0x2'"
        ),
    )
    batch.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help=(
            "shared distributed work-queue directory: trial chunks are "
            "published for 'm2hew worker --queue DIR' processes (any "
            "host mounting DIR) and reclaimed from dead workers; output "
            "is byte-identical to a serial run (implies --backend "
            "distributed)"
        ),
    )
    batch.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "distributed lease time-to-live: a chunk lease whose worker "
            "heartbeat goes stale for this long is reclaimed (default 15)"
        ),
    )

    fingerprint = sub.add_parser(
        "fingerprint",
        help=(
            "compute a campaign's content fingerprint from its parameters "
            "without running it (the dedup key used by the service store "
            "and checkpoint journals)"
        ),
    )
    _campaign_arguments(fingerprint)
    fingerprint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit {fingerprint, request} as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the async HTTP campaign service (submit/status/result/"
            "cancel/list + health; fingerprint dedup, checkpoint resume, "
            "progress streaming)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--data-dir",
        default="m2hew-service",
        metavar="DIR",
        help="service state root (job records, result store, checkpoints)",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=1,
        help="campaigns executing concurrently",
    )
    serve.add_argument(
        "--max-queued", type=int, default=16, help="submissions allowed to wait"
    )
    serve.add_argument(
        "--max-per-client",
        type=int,
        default=8,
        help="open (queued+running) jobs per client",
    )
    serve.add_argument(
        "--min-interval",
        type=float,
        default=0.0,
        help="minimum seconds between one client's submissions",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial fan-out processes per campaign (output is identical)",
    )
    serve.add_argument("--backend", choices=BACKENDS, default="auto")
    serve.add_argument(
        "--chunk-size",
        type=int,
        default=1,
        help=(
            "trials per dispatch unit (default 1: per-trial journaling "
            "and progress; archives are chunking-invariant)"
        ),
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="supervised retry budget per failing trial chunk",
    )
    serve.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help=(
            "shared distributed work-queue directory: campaign chunks "
            "are published for 'm2hew worker --queue DIR' processes "
            "instead of running in the service process"
        ),
    )
    serve.add_argument(
        "--store-max-archives",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap the result store at N archives; least-recently-used "
            "verified archives are evicted after each job (in-flight "
            "jobs' archives are never evicted)"
        ),
    )
    serve.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="cap the result store's total archive bytes (LRU eviction)",
    )

    worker = sub.add_parser(
        "worker",
        help=(
            "run one distributed campaign worker: claim trial chunks "
            "from a shared queue directory by atomic lease, heartbeat, "
            "execute, publish results (crash-tolerant; see "
            "docs/resilience.md)"
        ),
    )
    worker.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="shared work-queue directory (same DIR the coordinator uses)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N chunks (default: run until idle-exit)",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "exit after this long with no claimable work "
            "(default: keep polling forever)"
        ),
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease time-to-live advertised by heartbeats (default 15)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between queue scans when idle (default 0.2)",
    )

    submit = sub.add_parser(
        "submit",
        help=(
            "submit a campaign to a running 'm2hew serve' instance over "
            "HTTP, stream its progress, and optionally download the "
            "verified archive"
        ),
    )
    _campaign_arguments(submit)
    submit.add_argument("--host", default="127.0.0.1", help="service host")
    submit.add_argument("--port", type=int, default=8642, help="service port")
    submit.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help=(
            "download the verified archive into DIR (it remains "
            "self-verifying: 'm2hew verify-archive DIR' checks it)"
        ),
    )
    submit.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="seconds between status polls while waiting",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting after this long (default: wait forever)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="submit and print the job record without waiting",
    )

    tour = sub.add_parser(
        "tournament",
        help=(
            "race registered protocols across the standing league of "
            "(workload x fault preset) cells; print Welch-ranked standings"
        ),
    )
    tour.add_argument(
        "--protocols",
        nargs="+",
        default=list(SYNC_PROTOCOLS),
        choices=SYNC_PROTOCOLS,
    )
    tour.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    tour.add_argument("--max-slots", type=int, default=DEFAULT_MAX_SLOTS)
    tour.add_argument("--seed", type=int, default=0, help="campaign base seed")
    tour.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial fan-out processes (1 = serial; output is identical)",
    )
    tour.add_argument("--backend", choices=BACKENDS, default="auto")
    tour.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="archive directory (one JSON per cell x protocol + manifest.json)",
    )

    varch = sub.add_parser(
        "verify-archive",
        help="check a campaign archive against its manifest checksums",
    )
    varch.add_argument("directory", help="archive directory to verify")
    varch.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable verification report as JSON",
    )

    bnd = sub.add_parser("bounds", help="print the paper's theorem budgets")
    bnd.add_argument("--s", type=int, required=True, help="S (max channel set size)")
    bnd.add_argument("--delta", type=int, required=True, help="max degree")
    bnd.add_argument("--rho", type=float, required=True, help="min span-ratio")
    bnd.add_argument("--n", type=int, required=True, help="number of nodes")
    bnd.add_argument("--epsilon", type=float, default=0.1)
    bnd.add_argument("--delta-est", type=int, required=True)
    bnd.add_argument("--frame-length", type=float, default=1.0)
    bnd.add_argument("--drift", type=float, default=0.0)

    lint = sub.add_parser(
        "lint",
        help="determinism & model-invariant static analysis (D/M/Q rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule ID (repeatable), e.g. --rule D102",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--list-rules", action="store_true", help="list rule IDs and exit"
    )

    audit = sub.add_parser(
        "audit",
        help=(
            "whole-program determinism audit: RNG stream provenance, "
            "parallel-ordering hazards, engine parity contracts "
            "(S/P/C rules + stream-registry drift)"
        ),
    )
    audit.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to audit (default: src)",
    )
    audit.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this audit rule ID (repeatable), e.g. --rule S401",
    )
    audit.add_argument("--format", choices=("text", "json"), default="text")
    audit.add_argument(
        "--list-rules", action="store_true", help="list audit rule IDs and exit"
    )
    audit.add_argument(
        "--registry",
        default=None,
        metavar="PATH",
        help=(
            "stream-registry snapshot to diff against (default: the "
            "committed src/repro/devtools/stream_registry.json)"
        ),
    )
    audit.add_argument(
        "--update-registry",
        action="store_true",
        help="rewrite the registry snapshot from the audited sources",
    )
    audit.add_argument(
        "--no-registry-check",
        action="store_true",
        help="skip the registry drift comparison",
    )

    return parser


def _cmd_scenarios() -> int:
    rows = []
    for name in scenario_names():
        s = scenario(name)
        rows.append(
            {
                "name": s.name,
                "delta_est": s.delta_est,
                "epsilon": s.epsilon,
                "description": s.description,
            }
        )
    print(format_table(rows, columns=["name", "delta_est", "epsilon", "description"]))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    s = scenario(args.scenario)
    network = s.build(args.seed)
    rows = [network.parameter_summary()]
    print(format_table(rows, title=f"{s.name} (seed {args.seed})"))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    s = scenario(args.scenario)
    network = s.build(args.seed)
    profile = profile_network(network)
    print(format_table([network.parameter_summary()], title=f"{s.name} parameters"))
    print()
    print(
        format_table(
            [
                {
                    "mean_span_ratio": round(profile.mean_span_ratio, 3),
                    "heterogeneity_index": round(profile.heterogeneity_index, 3),
                    "asymmetric_links": profile.asymmetric_links,
                    "isolated_nodes": len(profile.isolated_nodes),
                }
            ],
            title="Heterogeneity",
        )
    )
    print()
    print(format_table(profile.as_rows(), title="Per-channel structure"))
    return 0


def _cmd_terminate(args: argparse.Namespace) -> int:
    s = scenario(args.scenario)
    network = s.build(args.seed)
    delta_est = args.delta_est if args.delta_est is not None else s.delta_est
    threshold = recommended_quiet_threshold(
        network.max_channel_set_size,
        delta_est,
        network.min_span_ratio,
        args.local_epsilon,
    )
    outcome = run_terminating_sync(
        network,
        "algorithm3",
        seed=args.seed,
        max_slots=10 * threshold,
        quiet_threshold=threshold,
        delta_est=delta_est,
        policy=TerminationPolicy(args.policy),
    )
    report = energy_report(
        outcome.result, EnergyModel.cc2420(), slot_seconds=args.slot_ms / 1000.0
    )
    stops = sorted(
        t for t in outcome.terminated_at.values() if t is not None
    )
    print(
        format_table(
            [
                {
                    "quiet_threshold": threshold,
                    "policy": args.policy,
                    "all_stopped": outcome.all_stopped,
                    "false_stops": len(outcome.false_stops),
                    "output_complete": outcome.output_complete,
                    "median_stop_slot": stops[len(stops) // 2] if stops else None,
                    "total_joules": round(report.total_joules, 3),
                }
            ],
            title=f"{s.name} / algorithm3 with quiescence termination",
        )
    )
    return 0 if outcome.output_complete else 1


def _cmd_run_sync(args: argparse.Namespace) -> int:
    s = scenario(args.scenario)
    network = s.build(args.seed)
    delta_est = args.delta_est if args.delta_est is not None else s.delta_est
    offsets = None
    if args.stagger > 0:
        offsets = random_start_offsets(
            network, args.stagger, RngFactory(args.seed).stream("offsets")
        )
    result = run_synchronous(
        network,
        args.protocol,
        seed=args.seed,
        start_offsets=offsets,
        faults=_resolve_faults(args, s),
        **experiment_runner_params(
            args.protocol, network, delta_est=delta_est, max_slots=args.max_slots
        ),
    )
    print(format_table([dict(result.summary())], title=f"{s.name} / {args.protocol}"))
    if not result.completed:
        print(f"uncovered links: {result.uncovered_links()[:10]}", file=sys.stderr)
        return 1
    return 0


def _cmd_run_async(args: argparse.Namespace) -> int:
    s = scenario(args.scenario)
    network = s.build(args.seed)
    delta_est = args.delta_est if args.delta_est is not None else s.delta_est
    result = run_asynchronous(
        network,
        seed=args.seed,
        delta_est=delta_est,
        frame_length=args.frame_length,
        max_frames_per_node=args.max_frames,
        drift_bound=args.drift,
        clock_model=args.clock_model,
        start_spread=args.start_spread,
        faults=_resolve_faults(args, s),
    )
    print(
        format_table(
            [dict(result.summary())],
            title=f"{s.name} / algorithm4 (drift {args.drift})",
        )
    )
    return 0 if result.completed else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .analysis.timeline import render_trace
    from .sim.trace import ExecutionTrace

    s = scenario(args.scenario)
    network = s.build(args.seed)
    delta_est = args.delta_est if args.delta_est is not None else s.delta_est
    trace = ExecutionTrace()
    run_asynchronous(
        network,
        seed=args.seed,
        delta_est=delta_est,
        max_frames_per_node=max(50, int(args.end) + 10),
        drift_bound=args.drift,
        clock_model="constant",
        start_spread=min(args.start, 5.0),
        stop_on_full_coverage=False,
        trace=trace,
    )
    print(
        f"{s.name}: frames over real time [{args.start}, {args.end}] "
        f"(drift {args.drift}; T=transmit, L=listen, |=frame, .=slot)"
    )
    print(
        render_trace(
            trace,
            args.start,
            args.end,
            width=args.width,
            nodes=trace.node_ids[: args.nodes],
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.stats import summarize
    from .sim.runner import run_trials

    s = scenario(args.scenario)
    network = s.build(args.seed)
    delta_est = args.delta_est if args.delta_est is not None else s.delta_est
    rows = []
    failures = 0
    for protocol in args.protocols:
        params = experiment_runner_params(
            protocol, network, delta_est=delta_est, max_slots=args.max_slots
        )
        results = run_trials(
            lambda seed, p=protocol, kw=params: run_synchronous(
                network, p, seed=seed, **kw
            ),
            num_trials=args.trials,
            base_seed=args.seed,
        )
        times = [
            r.completion_time for r in results if r.completion_time is not None
        ]
        completed = sum(r.completed for r in results)
        failures += args.trials - completed
        row = {
            "protocol": protocol,
            "completed": f"{completed}/{args.trials}",
        }
        if times:
            summary = summarize(times)
            row["mean_slots"] = round(summary.mean, 1)
            row["p90_slots"] = round(summary.p90, 1)
            row["max_slots"] = summary.maximum
        rows.append(row)
    print(
        format_table(
            rows,
            title=(
                f"{s.name}: protocol comparison "
                f"(delta_est={delta_est}, {args.trials} trials)"
            ),
        )
    )
    return 0 if failures == 0 else 1


def _resolve_resilience(
    args: argparse.Namespace,
) -> "tuple[Any, Optional[str], Any]":
    """(retry policy, checkpoint dir, chaos plan) from batch flags."""
    from .exceptions import ConfigurationError
    from .resilience import RetryPolicy, parse_chaos_spec

    retry = None
    if args.retries is not None or args.no_quarantine:
        kwargs: Dict[str, Any] = {"quarantine": not args.no_quarantine}
        if args.retries is not None:
            kwargs["max_retries"] = args.retries
        retry = RetryPolicy(**kwargs)
    if args.checkpoint is not None and args.resume is not None:
        raise ConfigurationError(
            "pass either --checkpoint or --resume, not both (resume "
            "already journals the trials it runs)"
        )
    checkpoint_dir = args.checkpoint or args.resume
    if args.resume is not None and not Path(args.resume).is_dir():
        raise ConfigurationError(
            f"--resume {args.resume}: no such checkpoint directory"
        )
    chaos = parse_chaos_spec(args.chaos) if args.chaos is not None else None
    return retry, checkpoint_dir, chaos


def _lease_policy(
    lease_ttl: Optional[float], poll_interval: Optional[float] = None
) -> "Any":
    """A :class:`LeasePolicy` from CLI overrides, or ``None`` for defaults.

    A short ``--lease-ttl`` drags the heartbeat interval down with it so
    the policy stays self-consistent (heartbeats must outpace the TTL).
    """
    from .resilience.distributed import LeasePolicy

    if lease_ttl is None and poll_interval is None:
        return None
    kwargs: Dict[str, Any] = {}
    if lease_ttl is not None:
        kwargs["lease_ttl"] = lease_ttl
        kwargs["heartbeat_interval"] = min(2.0, lease_ttl / 4.0)
    if poll_interval is not None:
        kwargs["poll_interval"] = poll_interval
    return LeasePolicy(**kwargs)


def _cmd_batch(args: argparse.Namespace) -> int:
    from .exceptions import TrialExecutionError
    from .service.campaigns import campaign_specs
    from .sim.batch import batch_fingerprint, run_batch

    s = scenario(args.scenario)
    # The expansion is shared with the campaign service (m2hew serve) so
    # both surfaces hand run_batch identical specs — hence identical
    # archived bytes and identical fingerprints — for equal parameters.
    specs = campaign_specs(_campaign_request(args))
    retry, checkpoint_dir, chaos = _resolve_resilience(args)
    print(
        f"campaign fingerprint: {batch_fingerprint(specs, args.seed)}",
        file=sys.stderr,
    )
    try:
        outcomes = run_batch(
            specs,
            base_seed=args.seed,
            output_dir=args.output,
            max_workers=args.workers,
            backend=args.backend,
            chunk_size=args.chunk_size,
            batch_size=args.batch_size,
            trial_timeout=args.trial_timeout,
            retry=retry,
            checkpoint_dir=checkpoint_dir,
            chaos=chaos,
            queue_dir=args.queue,
            lease=_lease_policy(args.lease_ttl),
        )
    except TrialExecutionError as exc:
        # The campaign aborted (no supervision, quarantine disabled, or
        # the retry budget ran out); the message carries the replay
        # coordinates: derive_trial_seed(base_seed, trial).
        print(f"campaign failed: {exc}", file=sys.stderr)
        return 3
    print(
        format_table(
            [o.as_row() for o in outcomes],
            title=(
                f"{s.name}: campaign of {args.trials} trials "
                f"(base seed {args.seed}, {args.workers} worker(s))"
            ),
        )
    )
    restored = sum(o.restored for o in outcomes)
    if restored:
        print(
            f"resumed: {restored} trial(s) restored from checkpoint",
            file=sys.stderr,
        )
    for outcome in outcomes:
        for q in outcome.quarantined:
            print(
                f"quarantined: {q.experiment} trial {q.trial} "
                f"(replay seed derive_trial_seed({q.base_seed}, {q.trial})): "
                f"{q.error}",
                file=sys.stderr,
            )
    if args.output:
        print(f"archived to {args.output}/manifest.json", file=sys.stderr)
    return 0 if all(o.completed_fraction == 1.0 for o in outcomes) else 1


def _cmd_tournament(args: argparse.Namespace) -> int:
    from .analysis.tournament import run_tournament

    result = run_tournament(
        protocols=args.protocols,
        trials=args.trials,
        base_seed=args.seed,
        max_slots=args.max_slots,
        output_dir=args.output,
        max_workers=args.workers,
        backend=args.backend,
    )
    print(result.render())
    if args.output:
        print(f"archived to {args.output}/manifest.json", file=sys.stderr)
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from .service.campaigns import request_fingerprint

    request = _campaign_request(args)
    fingerprint = request_fingerprint(request)
    if args.as_json:
        print(
            json.dumps(
                {"fingerprint": fingerprint, "request": request.as_dict()},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(fingerprint)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .resilience import RetryPolicy
    from .service import CampaignService, QuotaPolicy

    service = CampaignService(
        args.data_dir,
        quota=QuotaPolicy(
            max_active=args.max_active,
            max_queued=args.max_queued,
            max_per_client=args.max_per_client,
            min_interval=args.min_interval,
        ),
        retry=RetryPolicy(max_retries=args.retries),
        max_workers=args.workers,
        backend=args.backend,
        chunk_size=args.chunk_size,
        queue_dir=args.queue,
        store_max_archives=args.store_max_archives,
        store_max_bytes=args.store_max_bytes,
    )
    try:
        asyncio.run(service.run_forever(args.host, args.port))
    except KeyboardInterrupt:
        print(
            "service interrupted; job records and checkpoints preserved — "
            "restart with the same --data-dir to resume",
            file=sys.stderr,
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .resilience.distributed import run_worker

    executed = run_worker(
        args.queue,
        worker_id=args.worker_id,
        lease=_lease_policy(args.lease_ttl, args.poll_interval),
        max_chunks=args.max_chunks,
        idle_exit=args.idle_exit,
        on_status=lambda line: print(line, file=sys.stderr, flush=True),
    )
    print(f"worker exiting after {executed} chunk(s)", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        envelope = client.submit(_campaign_request(args))
    except (ServiceError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    job = envelope["job"]
    job_id = job["job_id"]
    print(
        f"job {job_id}: {job['state']}"
        + (" (cache hit)" if envelope.get("cache_hit") else ""),
        file=sys.stderr,
    )
    if args.no_wait:
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0

    def on_event(event: Dict[str, Any]) -> None:
        if event.get("kind") == "progress":
            print(
                f"  {event.get('experiment')}: "
                f"{event.get('completed')}/{event.get('total')} trials",
                file=sys.stderr,
            )
        elif event.get("kind") == "state":
            print(f"job {job_id}: {event.get('state')}", file=sys.stderr)

    try:
        final = client.wait(
            job_id,
            poll_interval=args.poll_interval,
            timeout=args.timeout,
            on_event=on_event,
        )
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 4
    except (ServiceError, OSError) as exc:
        print(f"wait failed: {exc}", file=sys.stderr)
        return 2
    if final.get("state") != "done":
        error = final.get("error") or "no detail"
        print(f"job {job_id} ended {final.get('state')}: {error}", file=sys.stderr)
        return 1
    if args.output is not None:
        try:
            listing = client.fetch_result(job_id)
            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            for name in listing["files"]:
                (out / name).write_bytes(client.fetch_file(job_id, name))
        except (ServiceError, OSError) as exc:
            print(f"download failed: {exc}", file=sys.stderr)
            return 2
        print(
            f"archive downloaded to {out} "
            f"({len(listing['files'])} file(s), verified server-side); "
            f"check locally with: m2hew verify-archive {out}",
            file=sys.stderr,
        )
    print(json.dumps(final, indent=2, sort_keys=True))
    return 0


def _cmd_verify_archive(args: argparse.Namespace) -> int:
    from .resilience import verify_archive

    report = verify_archive(args.directory)
    if args.as_json:
        print(report.to_json())
        return 0 if report.ok else 1
    if report.ok:
        print(
            f"{args.directory}: OK ({report.files_checked} file(s) verified)"
        )
        return 0
    for issue in report.issues:
        print(str(issue), file=sys.stderr)
    print(
        f"{args.directory}: CORRUPT ({len(report.issues)} issue(s))",
        file=sys.stderr,
    )
    return 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    budget = bounds.summary(
        s=args.s,
        delta=args.delta,
        rho=args.rho,
        n=args.n,
        epsilon=args.epsilon,
        delta_est=args.delta_est,
        frame_length=args.frame_length,
        drift=args.drift,
    )
    rows = [{"bound": k, "value": v} for k, v in budget.items()]
    print(format_table(rows, columns=["bound", "value"]))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.lint import lint_paths
    from .devtools.rules import all_rules, select_rules

    if args.list_rules:
        rows = [
            {"id": rule.rule_id, "title": rule.title} for rule in all_rules()
        ]
        print(format_table(rows, columns=["id", "title"]))
        return 0
    if args.rule:
        try:
            rules = select_rules(args.rule)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        rules = None
    report = lint_paths(args.paths, rules=rules)
    print(report.to_json() if args.format == "json" else report.to_text())
    return 0 if report.ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from .devtools.audit import DEFAULT_REGISTRY_PATH, run_audit
    from .devtools.rules import all_audit_rules, select_audit_rules

    if args.list_rules:
        rows = [
            {"id": rule.rule_id, "title": rule.title}
            for rule in all_audit_rules()
        ]
        print(format_table(rows, columns=["id", "title"]))
        return 0
    if args.rule:
        try:
            rules = select_audit_rules(args.rule)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        rules = None
    registry_path = (
        Path(args.registry) if args.registry is not None else DEFAULT_REGISTRY_PATH
    )
    report = run_audit(
        args.paths,
        rules=rules,
        registry_path=registry_path,
        check_registry=not (args.no_registry_check or args.update_registry),
    )
    if args.update_registry:
        registry_path.write_text(
            json.dumps(report.registry, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"registry snapshot written to {registry_path}", file=sys.stderr)
    print(report.to_json() if args.format == "json" else report.to_text())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "terminate":
        return _cmd_terminate(args)
    if args.command == "run-sync":
        return _cmd_run_sync(args)
    if args.command == "run-async":
        return _cmd_run_async(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "tournament":
        return _cmd_tournament(args)
    if args.command == "fingerprint":
        return _cmd_fingerprint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "verify-archive":
        return _cmd_verify_archive(args)
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "audit":
        return _cmd_audit(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
