"""Channel-availability models.

The defining feature of an M2HeW network is *heterogeneity*: different
nodes perceive different subsets of the spectrum as available (paper
§I–II). These functions produce per-node available channel sets under
several models, from fully homogeneous (every node sees every channel,
``ρ = 1``) to adversarially heterogeneous (minimum span-ratio, the
worst case for the paper's bounds).

All functions return ``{node_id: frozenset(channels)}`` suitable for
:func:`repro.net.build_network`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .topology import Topology

__all__ = [
    "Assignment",
    "homogeneous",
    "uniform_random_subsets",
    "common_channel_plus_random",
    "adversarial_min_overlap",
    "repair_pair_overlap",
    "single_common_channel",
]

Assignment = Dict[int, FrozenSet[int]]


def homogeneous(num_nodes: int, num_channels: int) -> Assignment:
    """Every node sees channels ``0 .. num_channels - 1`` (``ρ = 1``).

    This is the homogeneous special case "made frequently in the
    literature" (§II) that minimizes the paper's running-time bounds.
    """
    if num_channels <= 0:
        raise ConfigurationError(f"num_channels must be positive, got {num_channels}")
    channels = frozenset(range(num_channels))
    return {nid: channels for nid in range(num_nodes)}


def uniform_random_subsets(
    num_nodes: int,
    universal_size: int,
    set_size: int,
    rng: np.random.Generator,
    set_size_max: Optional[int] = None,
) -> Assignment:
    """Each node draws a uniform random subset of the universal set.

    Args:
        num_nodes: Number of nodes.
        universal_size: ``|U|`` — size of the universal channel set.
        set_size: Available-set size per node, or the minimum size when
            ``set_size_max`` is given.
        rng: Source of randomness.
        set_size_max: If given, per-node sizes are drawn uniformly from
            ``[set_size, set_size_max]`` — hardware heterogeneity.

    Note: random subsets of neighbors may be disjoint; combine with
    :func:`repair_pair_overlap` (or use
    :func:`common_channel_plus_random`) when every radio-adjacent pair
    must share a channel.
    """
    _check_sizes(universal_size, set_size, set_size_max)
    high = set_size_max if set_size_max is not None else set_size
    assignment: Assignment = {}
    for nid in range(num_nodes):
        size = int(rng.integers(set_size, high + 1))
        chosen = rng.choice(universal_size, size=size, replace=False)
        assignment[nid] = frozenset(int(c) for c in chosen)
    return assignment


def common_channel_plus_random(
    num_nodes: int,
    universal_size: int,
    set_size: int,
    rng: np.random.Generator,
    common_channel: int = 0,
) -> Assignment:
    """Random subsets that all include one designated common channel.

    Guarantees every pair of nodes shares at least ``common_channel``, so
    every radio-adjacent pair is a neighbor pair.
    """
    _check_sizes(universal_size, set_size, None)
    if not 0 <= common_channel < universal_size:
        raise ConfigurationError(
            f"common_channel {common_channel} outside universal set of size {universal_size}"
        )
    others = [c for c in range(universal_size) if c != common_channel]
    assignment: Assignment = {}
    for nid in range(num_nodes):
        extra = rng.choice(len(others), size=set_size - 1, replace=False)
        channels = {common_channel} | {others[int(i)] for i in extra}
        assignment[nid] = frozenset(channels)
    return assignment


def single_common_channel(
    num_nodes: int,
    universal_size: int,
    set_size: int,
    rng: np.random.Generator,
) -> Assignment:
    """Adversarial case from §I: sets overlap in exactly one channel.

    Node sets are built from disjoint private blocks plus the shared
    channel 0, so ``|span| = 1`` for every link while ``|A(u)| =
    set_size``. This is the scenario where the universal-sweep baseline
    pays ``Θ(|U|)`` although one common channel exists. Requires
    ``universal_size >= num_nodes * (set_size - 1) + 1``.
    """
    _check_sizes(universal_size, set_size, None)
    needed = num_nodes * (set_size - 1) + 1
    if universal_size < needed:
        raise ConfigurationError(
            f"universal_size {universal_size} too small; single_common_channel "
            f"with {num_nodes} nodes of size {set_size} needs >= {needed}"
        )
    # Shuffle the non-shared channels so private blocks are not contiguous.
    private = list(rng.permutation(np.arange(1, universal_size)))
    assignment: Assignment = {}
    for nid in range(num_nodes):
        block = private[nid * (set_size - 1) : (nid + 1) * (set_size - 1)]
        assignment[nid] = frozenset({0} | {int(c) for c in block})
    return assignment


def adversarial_min_overlap(
    topology: Topology,
    set_size: int,
    overlap: int,
    rng: np.random.Generator,
) -> Assignment:
    """Per-edge assignment targeting span size ``overlap`` on every link.

    Each node receives ``overlap`` channels from a small shared pool and
    ``set_size - overlap`` channels private to itself, so every
    radio-adjacent pair shares exactly the pool channels it has in
    common. With a pool of exactly ``overlap`` channels the span of every
    link is exactly ``overlap`` and the span-ratio is
    ``overlap / set_size`` — a direct knob for ``ρ``.
    """
    if overlap <= 0:
        raise ConfigurationError(f"overlap must be positive, got {overlap}")
    if overlap > set_size:
        raise ConfigurationError(
            f"overlap {overlap} cannot exceed set_size {set_size}"
        )
    pool = frozenset(range(overlap))
    next_channel = overlap
    assignment: Assignment = {}
    for nid in range(topology.num_nodes):
        private = frozenset(range(next_channel, next_channel + set_size - overlap))
        next_channel += set_size - overlap
        assignment[nid] = pool | private
    return assignment


def repair_pair_overlap(
    topology: Topology,
    assignment: Assignment,
    rng: np.random.Generator,
) -> Assignment:
    """Ensure every radio-adjacent pair shares at least one channel.

    For each adjacent pair with disjoint sets, copy one uniformly chosen
    channel from one endpoint to the other (keeping set sizes as close to
    the original as possible by replacing, never growing past +1).

    Returns a new assignment; the input is not modified.
    """
    fixed = {nid: set(chs) for nid, chs in assignment.items()}
    for u, v in topology.pairs:
        if fixed[u] & fixed[v]:
            continue
        donor, taker = (u, v) if rng.random() < 0.5 else (v, u)
        channel = int(rng.choice(sorted(fixed[donor])))
        fixed[taker].add(channel)
    return {nid: frozenset(chs) for nid, chs in fixed.items()}


def _check_sizes(
    universal_size: int, set_size: int, set_size_max: Optional[int]
) -> None:
    if universal_size <= 0:
        raise ConfigurationError(f"universal_size must be positive, got {universal_size}")
    if set_size <= 0:
        raise ConfigurationError(f"set_size must be positive, got {set_size}")
    high = set_size_max if set_size_max is not None else set_size
    if high < set_size:
        raise ConfigurationError(
            f"set_size_max {set_size_max} is below set_size {set_size}"
        )
    if high > universal_size:
        raise ConfigurationError(
            f"set size {high} exceeds universal set size {universal_size}"
        )
