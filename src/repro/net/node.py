"""Node specification for an M2HeW network.

A node is a radio with an identifier, an optional position (used by
geometric topologies and the primary-user availability model) and an
*available channel set* — the set of channels the node perceives as free
for communication (denoted ``A(u)`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from ..exceptions import NetworkModelError

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Immutable description of one radio node.

    Attributes:
        node_id: Non-negative integer identifier, unique in a network.
        channels: The node's available channel set ``A(u)``. Must be
            non-empty — a node with no available channel cannot take part
            in neighbor discovery at all and the paper's model excludes it.
        position: Optional ``(x, y)`` coordinates. Present for geometric
            topologies; ``None`` for abstract graphs.
    """

    node_id: int
    channels: FrozenSet[int]
    position: Optional[Tuple[float, float]] = field(default=None)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise NetworkModelError(f"node_id must be non-negative, got {self.node_id}")
        if not isinstance(self.channels, frozenset):
            object.__setattr__(self, "channels", frozenset(self.channels))
        if not self.channels:
            raise NetworkModelError(
                f"node {self.node_id} has an empty available channel set; "
                "the M2HeW model requires |A(u)| >= 1"
            )
        if any(c < 0 for c in self.channels):
            raise NetworkModelError(
                f"node {self.node_id} has negative channel ids: {sorted(self.channels)}"
            )
        if self.position is not None:
            x, y = self.position
            object.__setattr__(self, "position", (float(x), float(y)))

    @property
    def channel_count(self) -> int:
        """``|A(u)|`` — the size of this node's available channel set."""
        return len(self.channels)

    def with_channels(self, channels: Iterable[int]) -> "NodeSpec":
        """Copy of this node with a different available channel set."""
        return NodeSpec(self.node_id, frozenset(channels), self.position)

    def distance_to(self, other: "NodeSpec") -> float:
        """Euclidean distance to ``other`` (both must have positions)."""
        if self.position is None or other.position is None:
            raise NetworkModelError(
                "distance_to requires both nodes to have positions "
                f"(nodes {self.node_id} and {other.node_id})"
            )
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return float((dx * dx + dy * dy) ** 0.5)
