"""Network substrate: the M2HeW model, topologies and channel models.

The typical construction pipeline is::

    topo = topology.random_geometric(num_nodes=30, radius=0.3, rng=rng)
    assignment = channels.common_channel_plus_random(30, 10, 4, rng)
    network = build_network(topo, assignment)

after which ``network`` exposes the paper's parameters (``N``, ``S``,
``Δ``, ``ρ``) and the directed-link structure that the simulators and
analysis code consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping

from ..exceptions import NetworkModelError
from . import channels, primary_users, propagation, topology
from .links import DirectedLink
from .network import M2HeWNetwork
from .node import NodeSpec
from .primary_users import PrimaryUser, PrimaryUserField
from .serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from .topology import DirectedTopology, Topology

__all__ = [
    "DirectedLink",
    "DirectedTopology",
    "build_asymmetric_network",
    "M2HeWNetwork",
    "NodeSpec",
    "PrimaryUser",
    "PrimaryUserField",
    "Topology",
    "build_network",
    "channels",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "primary_users",
    "propagation",
    "save_network",
    "topology",
]


def build_network(
    topo: Topology,
    assignment: Mapping[int, Iterable[int]],
) -> M2HeWNetwork:
    """Combine a radio topology with a channel assignment.

    Args:
        topo: Radio adjacency (who can hear whom, channels aside).
        assignment: Available channel set per node id; must cover every
            node of ``topo``.

    Returns:
        The corresponding :class:`M2HeWNetwork`.

    Raises:
        NetworkModelError: If the assignment misses a node of ``topo``.
    """
    nodes = _nodes_from_assignment(topo.num_nodes, topo.positions, assignment)
    return M2HeWNetwork(nodes, adjacency=topo.pairs)


def build_asymmetric_network(
    topo: DirectedTopology,
    assignment: Mapping[int, Iterable[int]],
) -> M2HeWNetwork:
    """Combine a directed radio topology with a channel assignment.

    The §V(a) extension: the pair ``(u, v)`` of ``topo`` means "v hears
    u", so links exist only along audible directions with shared
    channels, and a node may have to discover a neighbor it cannot
    reach back.
    """
    nodes = _nodes_from_assignment(topo.num_nodes, topo.positions, assignment)
    return M2HeWNetwork(nodes, directed_adjacency=topo.pairs)


def _nodes_from_assignment(num_nodes, positions, assignment):
    nodes = []
    positions = positions or {}
    for nid in range(num_nodes):
        if nid not in assignment:
            raise NetworkModelError(f"channel assignment missing node {nid}")
        nodes.append(
            NodeSpec(
                node_id=nid,
                channels=frozenset(assignment[nid]),
                position=positions.get(nid),
            )
        )
    return nodes
