"""Primary-user (PU) spectrum model.

The paper motivates channel heterogeneity with cognitive radio: licensed
*primary users* occupy parts of the spectrum in parts of space, and a
secondary (CR) node perceives a channel as available only if no nearby
primary user occupies it (§I–II, [11]).

This module realizes that story concretely: primary users are placed in
the plane, each occupying one channel within an interference radius; a
node's available channel set is the universal set minus the channels of
all PUs within radius of it. Spatial variation in PU placement then
produces exactly the heterogeneous availability the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .topology import Topology

__all__ = ["PrimaryUser", "PrimaryUserField", "availability_from_primary_users"]


@dataclass(frozen=True)
class PrimaryUser:
    """A licensed transmitter occupying one channel around a location.

    Attributes:
        position: ``(x, y)`` location of the primary user.
        channel: The licensed channel it occupies.
        radius: Interference radius: secondary nodes within this distance
            must treat ``channel`` as unavailable.
    """

    position: Tuple[float, float]
    channel: int
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError(f"PU radius must be positive, got {self.radius}")
        if self.channel < 0:
            raise ConfigurationError(f"PU channel must be non-negative, got {self.channel}")

    def blocks(self, position: Tuple[float, float]) -> bool:
        """Whether a node at ``position`` is inside this PU's footprint."""
        dx = self.position[0] - position[0]
        dy = self.position[1] - position[1]
        return (dx * dx + dy * dy) ** 0.5 <= self.radius


@dataclass
class PrimaryUserField:
    """A collection of primary users over a universal channel set."""

    universal_size: int
    users: List[PrimaryUser]

    def __post_init__(self) -> None:
        if self.universal_size <= 0:
            raise ConfigurationError(
                f"universal_size must be positive, got {self.universal_size}"
            )
        for pu in self.users:
            if pu.channel >= self.universal_size:
                raise ConfigurationError(
                    f"PU channel {pu.channel} outside universal set of size "
                    f"{self.universal_size}"
                )

    @classmethod
    def random(
        cls,
        universal_size: int,
        num_users: int,
        radius: float,
        rng: np.random.Generator,
        area: float = 1.0,
    ) -> "PrimaryUserField":
        """Place ``num_users`` PUs uniformly in an ``area x area`` square.

        Each PU occupies a uniformly random channel from the universal set.
        """
        if num_users < 0:
            raise ConfigurationError(f"num_users must be non-negative, got {num_users}")
        users = [
            PrimaryUser(
                position=(float(rng.uniform(0, area)), float(rng.uniform(0, area))),
                channel=int(rng.integers(0, universal_size)),
                radius=radius,
            )
            for _ in range(num_users)
        ]
        return cls(universal_size=universal_size, users=users)

    def available_channels(self, position: Tuple[float, float]) -> FrozenSet[int]:
        """Channels a secondary node at ``position`` may use."""
        blocked = {pu.channel for pu in self.users if pu.blocks(position)}
        return frozenset(c for c in range(self.universal_size) if c not in blocked)


def availability_from_primary_users(
    topology: Topology,
    field: PrimaryUserField,
    min_channels: int = 1,
) -> Dict[int, FrozenSet[int]]:
    """Per-node availability induced by a PU field on a geometric topology.

    Args:
        topology: Must carry node positions.
        field: The primary-user field.
        min_channels: Raise if any node ends up with fewer channels than
            this — the M2HeW model needs ``|A(u)| >= 1``, and experiments
            may want a higher floor.

    Raises:
        ConfigurationError: If the topology has no positions or a node
            falls below ``min_channels`` available channels (the caller
            should thin the PU field or grow the universal set).
    """
    if topology.positions is None:
        raise ConfigurationError(
            "availability_from_primary_users requires a geometric topology "
            "with node positions"
        )
    assignment: Dict[int, FrozenSet[int]] = {}
    for nid in range(topology.num_nodes):
        channels = field.available_channels(topology.positions[nid])
        if len(channels) < min_channels:
            raise ConfigurationError(
                f"node {nid} has only {len(channels)} available channels "
                f"(< {min_channels}); primary-user field is too dense"
            )
        assignment[nid] = channels
    return assignment
