"""Radio-topology generators.

Each generator returns node positions (where meaningful) and a symmetric
radio adjacency — the "who is within range of whom" relation of §II,
before channels are taken into account. Channel availability is assigned
separately by :mod:`repro.net.channels` and the two are combined into an
:class:`~repro.net.network.M2HeWNetwork` by
:func:`repro.net.build_network`.

All generators are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "AdjacencyPairs",
    "DirectedTopology",
    "Positions",
    "Topology",
    "asymmetric_random_geometric",
    "random_geometric",
    "grid",
    "line",
    "ring",
    "star",
    "clique",
    "erdos_renyi",
    "two_cliques_bridge",
]

AdjacencyPairs = List[Tuple[int, int]]
Positions = Dict[int, Tuple[float, float]]


@dataclass
class Topology:
    """A radio topology: node count, adjacency pairs, optional positions.

    Attributes:
        num_nodes: Number of nodes (ids are ``0 .. num_nodes - 1``).
        pairs: Symmetric adjacency as unordered pairs with ``u < v``.
        positions: Per-node coordinates, or ``None`` for abstract graphs.
        name: Human-readable generator label.
    """

    num_nodes: int
    pairs: AdjacencyPairs
    positions: Optional[Positions] = None
    name: str = "topology"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {self.num_nodes}")
        canonical = []
        for u, v in self.pairs:
            if u == v:
                raise ConfigurationError(f"self-loop at node {u}")
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise ConfigurationError(f"pair ({u}, {v}) references unknown node")
            canonical.append((u, v) if u < v else (v, u))
        self.pairs = sorted(set(canonical))

    def to_graph(self) -> nx.Graph:
        """The adjacency as a :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.pairs)
        return graph

    @property
    def is_connected(self) -> bool:
        """Whether the radio graph is connected."""
        return nx.is_connected(self.to_graph())

    @property
    def max_radio_degree(self) -> int:
        """Maximum degree in the radio graph (upper bound on ``Δ``)."""
        if not self.pairs:
            return 0
        degrees: Dict[int, int] = {}
        for u, v in self.pairs:
            degrees[u] = degrees.get(u, 0) + 1
            degrees[v] = degrees.get(v, 0) + 1
        return max(degrees.values())


@dataclass
class DirectedTopology:
    """An asymmetric radio topology (§V extension (a)).

    Attributes:
        num_nodes: Number of nodes (ids ``0 .. num_nodes - 1``).
        pairs: Directed hearing relation as ordered pairs
            ``(transmitter, receiver)`` — the receiver can hear the
            transmitter, not necessarily vice versa.
        positions: Per-node coordinates, or ``None``.
        tx_ranges: Per-node transmission range that induced the pairs,
            when generated geometrically.
        name: Human-readable generator label.
    """

    num_nodes: int
    pairs: AdjacencyPairs
    positions: Optional[Positions] = None
    tx_ranges: Optional[Dict[int, float]] = None
    name: str = "directed_topology"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(
                f"num_nodes must be positive, got {self.num_nodes}"
            )
        for u, v in self.pairs:
            if u == v:
                raise ConfigurationError(f"self-loop at node {u}")
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise ConfigurationError(
                    f"pair ({u}, {v}) references unknown node"
                )
        self.pairs = sorted(set(self.pairs))

    @property
    def asymmetric_pair_count(self) -> int:
        """Ordered pairs whose reverse is absent (one-way audibility)."""
        pair_set = set(self.pairs)
        return sum(1 for (u, v) in self.pairs if (v, u) not in pair_set)


def asymmetric_random_geometric(
    num_nodes: int,
    min_range: float,
    max_range: float,
    rng: np.random.Generator,
    area: float = 1.0,
) -> DirectedTopology:
    """Uniform placement with per-node transmission power (§V(a)).

    Each node draws a transmission range uniformly from
    ``[min_range, max_range]``; ``v`` hears ``u`` iff their distance is
    within *u's* range. Unequal ranges make the hearing relation
    asymmetric: a strong transmitter reaches a weak one that cannot
    answer.
    """
    if not 0 < min_range <= max_range:
        raise ConfigurationError(
            f"need 0 < min_range <= max_range, got [{min_range}, {max_range}]"
        )
    if area <= 0:
        raise ConfigurationError(f"area must be positive, got {area}")
    coords = rng.uniform(0.0, area, size=(num_nodes, 2))
    ranges = {
        i: float(rng.uniform(min_range, max_range)) for i in range(num_nodes)
    }
    pairs: AdjacencyPairs = []
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u == v:
                continue
            if np.hypot(*(coords[u] - coords[v])) <= ranges[u]:
                pairs.append((u, v))  # v hears u
    return DirectedTopology(
        num_nodes=num_nodes,
        pairs=pairs,
        positions={i: (float(coords[i][0]), float(coords[i][1])) for i in range(num_nodes)},
        tx_ranges=ranges,
        name="asymmetric_random_geometric",
    )


def random_geometric(
    num_nodes: int,
    radius: float,
    rng: np.random.Generator,
    area: float = 1.0,
    require_connected: bool = False,
    max_attempts: int = 50,
) -> Topology:
    """Uniform node placement in an ``area x area`` square, unit-disk links.

    Two nodes are radio-adjacent iff their distance is at most ``radius``
    — the standard unit-disk model for ad hoc networks.

    Args:
        num_nodes: Number of nodes to place.
        radius: Communication radius.
        rng: Source of randomness.
        area: Side length of the deployment square.
        require_connected: Re-sample placements until the radio graph is
            connected (raises after ``max_attempts`` failures).
        max_attempts: Placement retries when ``require_connected``.
    """
    if radius <= 0:
        raise ConfigurationError(f"radius must be positive, got {radius}")
    if area <= 0:
        raise ConfigurationError(f"area must be positive, got {area}")

    for _ in range(max_attempts):
        coords = rng.uniform(0.0, area, size=(num_nodes, 2))
        pairs: AdjacencyPairs = []
        for u, v in itertools.combinations(range(num_nodes), 2):
            if np.hypot(*(coords[u] - coords[v])) <= radius:
                pairs.append((u, v))
        topo = Topology(
            num_nodes=num_nodes,
            pairs=pairs,
            positions={i: (float(coords[i][0]), float(coords[i][1])) for i in range(num_nodes)},
            name="random_geometric",
            metadata={"radius": radius, "area": area},
        )
        if not require_connected or num_nodes == 1 or topo.is_connected:
            return topo
    raise ConfigurationError(
        f"could not generate a connected geometric topology in {max_attempts} "
        f"attempts (num_nodes={num_nodes}, radius={radius}, area={area})"
    )


def grid(rows: int, cols: int, diagonal: bool = False) -> Topology:
    """A ``rows x cols`` lattice; 4-neighborhood, or 8 with ``diagonal``."""
    if rows <= 0 or cols <= 0:
        raise ConfigurationError(f"rows and cols must be positive, got {rows}x{cols}")
    num = rows * cols

    def nid(r: int, c: int) -> int:
        return r * cols + c

    pairs: AdjacencyPairs = []
    offsets = [(0, 1), (1, 0)]
    if diagonal:
        offsets += [(1, 1), (1, -1)]
    for r in range(rows):
        for c in range(cols):
            for dr, dc in offsets:
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    pairs.append((nid(r, c), nid(rr, cc)))
    positions = {nid(r, c): (float(c), float(r)) for r in range(rows) for c in range(cols)}
    return Topology(num, pairs, positions, name="grid", metadata={"rows": rows, "cols": cols})


def line(num_nodes: int) -> Topology:
    """A path: node ``i`` adjacent to ``i + 1``."""
    pairs = [(i, i + 1) for i in range(num_nodes - 1)]
    positions = {i: (float(i), 0.0) for i in range(num_nodes)}
    return Topology(num_nodes, pairs, positions, name="line")


def ring(num_nodes: int) -> Topology:
    """A cycle. Requires at least three nodes."""
    if num_nodes < 3:
        raise ConfigurationError(f"ring requires >= 3 nodes, got {num_nodes}")
    pairs = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    positions = {
        i: (
            math.cos(2 * math.pi * i / num_nodes),
            math.sin(2 * math.pi * i / num_nodes),
        )
        for i in range(num_nodes)
    }
    return Topology(num_nodes, pairs, positions, name="ring")


def star(num_leaves: int) -> Topology:
    """A hub (node 0) with ``num_leaves`` leaves — controlled-``Δ`` workloads."""
    if num_leaves < 1:
        raise ConfigurationError(f"star requires >= 1 leaf, got {num_leaves}")
    pairs = [(0, i) for i in range(1, num_leaves + 1)]
    positions = {0: (0.0, 0.0)}
    for i in range(1, num_leaves + 1):
        angle = 2 * math.pi * (i - 1) / num_leaves
        positions[i] = (math.cos(angle), math.sin(angle))
    return Topology(num_leaves + 1, pairs, positions, name="star")


def clique(num_nodes: int) -> Topology:
    """A complete graph — the single-hop (fully connected) setting."""
    pairs = list(itertools.combinations(range(num_nodes), 2))
    return Topology(num_nodes, pairs, None, name="clique")


def erdos_renyi(
    num_nodes: int,
    edge_probability: float,
    rng: np.random.Generator,
    require_connected: bool = False,
    max_attempts: int = 50,
) -> Topology:
    """G(n, p) random graph adjacency."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    for _ in range(max_attempts):
        pairs = [
            (u, v)
            for u, v in itertools.combinations(range(num_nodes), 2)
            if rng.random() < edge_probability
        ]
        topo = Topology(
            num_nodes, pairs, None, name="erdos_renyi", metadata={"p": edge_probability}
        )
        if not require_connected or num_nodes == 1 or topo.is_connected:
            return topo
    raise ConfigurationError(
        f"could not generate a connected G(n,p) in {max_attempts} attempts "
        f"(num_nodes={num_nodes}, p={edge_probability})"
    )


def two_cliques_bridge(clique_size: int) -> Topology:
    """Two cliques joined by a single bridge edge — a multi-hop stressor.

    Nodes ``0 .. clique_size-1`` form one clique, the rest form the other;
    the bridge is ``(clique_size - 1, clique_size)``.
    """
    if clique_size < 2:
        raise ConfigurationError(f"clique_size must be >= 2, got {clique_size}")
    num = 2 * clique_size
    pairs = list(itertools.combinations(range(clique_size), 2))
    pairs += list(itertools.combinations(range(clique_size, num), 2))
    pairs.append((clique_size - 1, clique_size))
    return Topology(num, pairs, None, name="two_cliques_bridge")
