"""The M2HeW network model (paper §II, with the §V extensions).

An :class:`M2HeWNetwork` bundles a set of nodes (each with an available
channel set ``A(u)``) and a radio connectivity relation, given in one of
three forms:

* ``adjacency`` — symmetric pairs, channels propagate identically
  (the paper's base model): ``v`` is a neighbor of ``u`` on channel
  ``c`` iff the pair is adjacent and ``c ∈ A(u) ∩ A(v)``;
* ``directed_adjacency`` — ordered pairs ``(transmitter, receiver)``
  for asymmetric communication graphs (§V extension (a));
* ``channel_adjacency`` — a per-channel symmetric adjacency for
  channels with *diverse propagation characteristics* (§V extension
  (c)): low frequencies reach further than high ones, so the radio
  graph differs per channel. ``v`` is a neighbor of ``u`` on ``c`` iff
  the pair is adjacent **on c** and ``c ∈ A(u) ∩ A(v)``.

From these it derives every quantity the paper's analysis uses:

* ``N`` — number of nodes (:attr:`num_nodes`);
* ``S`` — largest available channel set size (:attr:`max_channel_set_size`);
* ``Δ`` — maximum degree of any node on any channel (:attr:`max_degree`);
* ``ρ`` — minimum span-ratio over directed links (:attr:`min_span_ratio`);
* the set of directed links with their spans (:meth:`links`).

With channel-dependent propagation the span of a link is no longer
simply ``A(v) ∩ A(u)`` — it is the subset of shared channels on which
the pair is actually connected, matching the paper's definition
``span(u, v) ⊆ A(u) ∩ A(v)``.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..exceptions import NetworkModelError
from .links import DirectedLink
from .node import NodeSpec

__all__ = ["M2HeWNetwork"]


class M2HeWNetwork:
    """A multi-hop multi-channel heterogeneous wireless network instance.

    Args:
        nodes: Node specifications; ids must be unique.
        adjacency: Symmetric radio adjacency as unordered pairs.
        directed_adjacency: Directed hearing relation as ordered pairs
            ``(transmitter, receiver)``.
        channel_adjacency: ``{channel: pairs}`` — symmetric adjacency per
            channel, for diverse propagation characteristics.

    Exactly one of the three connectivity arguments must be given.

    Raises:
        NetworkModelError: On duplicate ids, unknown ids, or self-loops.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec],
        adjacency: Optional[Iterable[Tuple[int, int]]] = None,
        directed_adjacency: Optional[Iterable[Tuple[int, int]]] = None,
        channel_adjacency: Optional[Mapping[int, Iterable[Tuple[int, int]]]] = None,
    ) -> None:
        provided = [
            arg is not None
            for arg in (adjacency, directed_adjacency, channel_adjacency)
        ]
        if sum(provided) != 1:
            raise NetworkModelError(
                "exactly one of adjacency / directed_adjacency / "
                "channel_adjacency must be provided"
            )

        self._nodes: Dict[int, NodeSpec] = {}
        for spec in nodes:
            if spec.node_id in self._nodes:
                raise NetworkModelError(f"duplicate node id {spec.node_id}")
            self._nodes[spec.node_id] = spec

        self._symmetric = directed_adjacency is None
        self._channel_dependent = channel_adjacency is not None

        # _hears[u]: nodes whose transmissions u can hear on at least one
        # channel. With channel-dependent propagation this is the union
        # over channels; use neighbors_on / hears_on for per-channel sets.
        self._hears: Dict[int, Set[int]] = {nid: set() for nid in self._nodes}
        # _channel_pairs[c][u]: per-channel hearing partners (only set in
        # channel-dependent mode).
        self._channel_pairs: Dict[int, Dict[int, Set[int]]] = {}

        if channel_adjacency is not None:
            for c, pairs in channel_adjacency.items():
                if c < 0:
                    raise NetworkModelError(f"negative channel id {c}")
                per_node: Dict[int, Set[int]] = {}
                for a, b in pairs:
                    self._check_pair(a, b)
                    per_node.setdefault(a, set()).add(b)
                    per_node.setdefault(b, set()).add(a)
                    self._hears[a].add(b)
                    self._hears[b].add(a)
                self._channel_pairs[c] = per_node
        else:
            pairs = adjacency if adjacency is not None else directed_adjacency
            assert pairs is not None
            for a, b in pairs:
                self._check_pair(a, b)
                if self._symmetric:
                    self._hears[a].add(b)
                    self._hears[b].add(a)
                else:
                    self._hears[b].add(a)

        self._per_channel_neighbors: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self._links: Dict[Tuple[int, int], DirectedLink] = {}
        self._build_derived()
        # The network is immutable after _build_derived, so the sorted
        # link list and the paper parameters are computed at most once;
        # engines call links() / parameter_summary() per trial and the
        # O(E) Python recomputation dominated large-N result building.
        self._sorted_links: Optional[List[DirectedLink]] = None
        self._summary: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _check_pair(self, a: int, b: int) -> None:
        if a == b:
            raise NetworkModelError(f"self-loop at node {a}")
        for nid in (a, b):
            if nid not in self._nodes:
                raise NetworkModelError(f"adjacency references unknown node {nid}")

    def _pair_connected_on(self, u: int, v: int, c: int) -> bool:
        """Whether radio propagation connects ``u`` and ``v`` on ``c``."""
        if not self._channel_dependent:
            return v in self._hears[u]
        partners = self._channel_pairs.get(c)
        return partners is not None and v in partners.get(u, ())

    def _build_derived(self) -> None:
        """Precompute per-channel neighbor sets and the directed links."""
        for u, spec in self._nodes.items():
            by_channel: Dict[int, Set[int]] = {c: set() for c in spec.channels}
            span_of: Dict[int, Set[int]] = {}
            for v in self._hears[u]:
                shared = spec.channels & self._nodes[v].channels
                for c in shared:
                    if self._pair_connected_on(u, v, c):
                        by_channel[c].add(v)
                        span_of.setdefault(v, set()).add(c)
            for v, span in span_of.items():
                link = DirectedLink(
                    transmitter=v,
                    receiver=u,
                    span=frozenset(span),
                    receiver_channel_count=spec.channel_count,
                )
                self._links[link.key] = link
            self._per_channel_neighbors[u] = {
                c: frozenset(vs) for c, vs in by_channel.items()
            }

    # ------------------------------------------------------------------
    # node / channel accessors
    # ------------------------------------------------------------------

    @property
    def is_symmetric(self) -> bool:
        """Whether the network was built from a symmetric relation."""
        return self._symmetric

    @property
    def is_channel_dependent(self) -> bool:
        """Whether propagation differs per channel (§V extension (c))."""
        return self._channel_dependent

    @property
    def node_ids(self) -> List[int]:
        """Sorted list of node identifiers."""
        return sorted(self._nodes)

    @property
    def num_nodes(self) -> int:
        """``N`` — the total number of radio nodes."""
        return len(self._nodes)

    def node(self, node_id: int) -> NodeSpec:
        """The :class:`NodeSpec` for ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkModelError(f"unknown node {node_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[NodeSpec]:
        for nid in self.node_ids:
            yield self._nodes[nid]

    def channels_of(self, node_id: int) -> FrozenSet[int]:
        """``A(u)`` — the available channel set of ``node_id``."""
        return self.node(node_id).channels

    @property
    def universal_channel_set(self) -> FrozenSet[int]:
        """Union of all nodes' available channel sets."""
        universal: Set[int] = set()
        for spec in self._nodes.values():
            universal |= spec.channels
        return frozenset(universal)

    # ------------------------------------------------------------------
    # neighbor relations
    # ------------------------------------------------------------------

    def hears(self, receiver: int) -> FrozenSet[int]:
        """Nodes whose transmissions ``receiver`` can hear on some channel."""
        self.node(receiver)
        return frozenset(self._hears[receiver])

    def hears_on(self, receiver: int, channel: int) -> FrozenSet[int]:
        """Nodes whose transmissions on ``channel`` reach ``receiver``.

        This is the interference set the engines use: only transmissions
        from these nodes can collide at ``receiver`` on ``channel``.
        Since a node only transmits on channels in its own set, and the
        receiver only listens on channels in its set, this equals
        ``N(receiver, channel)``.
        """
        return self.neighbors_on(receiver, channel)

    def neighbors_on(self, node_id: int, channel: int) -> FrozenSet[int]:
        """``N(u, c)`` — neighbors of ``node_id`` on ``channel``.

        Empty (not an error) when ``channel`` is outside ``A(u)``.
        """
        self.node(node_id)
        return self._per_channel_neighbors[node_id].get(channel, frozenset())

    def degree_on(self, node_id: int, channel: int) -> int:
        """``Δ(u, c)`` — number of neighbors of ``node_id`` on ``channel``."""
        return len(self.neighbors_on(node_id, channel))

    def discoverable_neighbors(self, node_id: int) -> FrozenSet[int]:
        """All nodes that ``node_id`` must discover (union over channels)."""
        found: Set[int] = set()
        for vs in self._per_channel_neighbors[node_id].values():
            found |= vs
        return frozenset(found)

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------

    def links(self) -> List[DirectedLink]:
        """All directed links, sorted by ``(transmitter, receiver)``."""
        if self._sorted_links is None:
            self._sorted_links = [self._links[k] for k in sorted(self._links)]
        return list(self._sorted_links)

    def link(self, transmitter: int, receiver: int) -> DirectedLink:
        """The link from ``transmitter`` to ``receiver``.

        Raises:
            NetworkModelError: If the pair is not neighbors on any channel.
        """
        try:
            return self._links[(transmitter, receiver)]
        except KeyError:
            raise NetworkModelError(
                f"no link from {transmitter} to {receiver}"
            ) from None

    @property
    def num_links(self) -> int:
        """Number of directed links in the network."""
        return len(self._links)

    def span(self, transmitter: int, receiver: int) -> FrozenSet[int]:
        """``span(v, u)`` for the link from ``transmitter`` to ``receiver``."""
        return self.link(transmitter, receiver).span

    # ------------------------------------------------------------------
    # paper parameters
    # ------------------------------------------------------------------

    @property
    def max_channel_set_size(self) -> int:
        """``S`` — size of the largest available channel set."""
        return max(spec.channel_count for spec in self._nodes.values())

    @property
    def max_degree(self) -> int:
        """``Δ`` — maximum degree of any node on any channel.

        Zero for a network with no links (isolated nodes only).
        """
        best = 0
        for u, by_channel in self._per_channel_neighbors.items():
            for vs in by_channel.values():
                if len(vs) > best:
                    best = len(vs)
        return best

    @property
    def min_span_ratio(self) -> float:
        """``ρ`` — minimum span-ratio over all directed links.

        Raises:
            NetworkModelError: If the network has no links (``ρ`` is then
                undefined and no discovery problem exists).
        """
        if not self._links:
            raise NetworkModelError("network has no links; rho is undefined")
        return min(link.span_ratio for link in self._links.values())

    def parameter_summary(self) -> Dict[str, float]:
        """The paper's parameters ``N, S, Δ, ρ`` plus link count, as a dict."""
        if self._summary is None:
            self._summary = {
                "N": self.num_nodes,
                "S": self.max_channel_set_size,
                "Delta": self.max_degree,
                "rho": self.min_span_ratio if self._links else float("nan"),
                "links": self.num_links,
            }
        return dict(self._summary)

    # ------------------------------------------------------------------
    # model checks / utilities
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check M2HeW model invariants; raise :class:`NetworkModelError`.

        Verifies that every link's span-ratio is within the paper's
        ``[1/S, 1]`` range, that spans are subsets of the endpoint
        channel intersections, and that symmetric channel-uniform
        networks have symmetric link sets.
        """
        s = self.max_channel_set_size
        for link in self._links.values():
            ratio = link.span_ratio
            if not (1.0 / s - 1e-12 <= ratio <= 1.0 + 1e-12):
                raise NetworkModelError(
                    f"link {link.key} span-ratio {ratio} outside [1/S, 1]"
                )
            both = (
                self.channels_of(link.transmitter)
                & self.channels_of(link.receiver)
            )
            if not link.span <= both:
                raise NetworkModelError(
                    f"link {link.key} span {sorted(link.span)} not within "
                    f"A(v) ∩ A(u) = {sorted(both)}"
                )
        if self._symmetric:
            for key in self._links:
                if (key[1], key[0]) not in self._links:
                    raise NetworkModelError(
                        f"symmetric network missing reverse link of {key}"
                    )

    def restricted_to(self, node_ids: Iterable[int]) -> "M2HeWNetwork":
        """Sub-network induced by ``node_ids`` (same channel sets)."""
        keep = set(node_ids)
        nodes = [self._nodes[nid] for nid in sorted(keep) if nid in self._nodes]
        if self._channel_dependent:
            channel_adjacency = {
                c: [
                    (u, v)
                    for u, partners in per_node.items()
                    for v in sorted(partners)
                    if u < v and u in keep and v in keep
                ]
                for c, per_node in self._channel_pairs.items()
            }
            return M2HeWNetwork(nodes, channel_adjacency=channel_adjacency)
        if self._symmetric:
            pairs = [
                (u, v)
                for (u, v) in self._iter_symmetric_pairs()
                if u in keep and v in keep
            ]
            return M2HeWNetwork(nodes, adjacency=pairs)
        pairs = [
            (v, u)
            for u in sorted(keep)
            if u in self._hears
            for v in sorted(self._hears[u])
            if v in keep
        ]
        return M2HeWNetwork(nodes, directed_adjacency=pairs)

    def _iter_symmetric_pairs(self) -> Iterator[Tuple[int, int]]:
        for u in sorted(self._hears):
            for v in sorted(self._hears[u]):
                if u < v:
                    yield (u, v)

    def channel_adjacency_pairs(self) -> Dict[int, List[Tuple[int, int]]]:
        """Per-channel adjacency (channel-dependent networks only)."""
        if not self._channel_dependent:
            raise NetworkModelError(
                "channel_adjacency_pairs requires a channel-dependent network"
            )
        return {
            c: sorted(
                (u, v)
                for u, partners in per_node.items()
                for v in partners
                if u < v
            )
            for c, per_node in self._channel_pairs.items()
        }

    def with_channel_assignment(
        self, assignment: Mapping[int, Iterable[int]]
    ) -> "M2HeWNetwork":
        """Copy of this network with new available channel sets."""
        nodes = [
            self._nodes[nid].with_channels(assignment[nid])
            for nid in self.node_ids
        ]
        if self._channel_dependent:
            return M2HeWNetwork(
                nodes, channel_adjacency=self.channel_adjacency_pairs()
            )
        if self._symmetric:
            return M2HeWNetwork(nodes, adjacency=list(self._iter_symmetric_pairs()))
        pairs = [
            (v, u) for u in sorted(self._hears) for v in sorted(self._hears[u])
        ]
        return M2HeWNetwork(nodes, directed_adjacency=pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._channel_dependent:
            kind = "channel-dependent"
        elif self._symmetric:
            kind = "symmetric"
        else:
            kind = "asymmetric"
        return (
            f"M2HeWNetwork(N={self.num_nodes}, links={self.num_links}, "
            f"S={self.max_channel_set_size}, Delta={self.max_degree}, {kind})"
        )
