"""Diverse propagation characteristics (paper §V extension (c)).

The base model assumes all channels propagate identically, so a link
operates on every shared channel. In reality lower frequencies travel
further: a pair of nodes may be connected on channel 3 but not on
channel 9. This module generates *per-channel* radio adjacencies from
node positions using a frequency-dependent range model, producing the
``channel_adjacency`` input of
:class:`~repro.net.network.M2HeWNetwork`.

Range model: channel ``c`` (0-based index into the universal set,
ordered low to high frequency) has communication radius

    ``radius(c) = base_radius * (1 - range_decay * c / (num_channels - 1))``

so channel 0 reaches ``base_radius`` and the highest channel reaches
``base_radius * (1 - range_decay)``. ``range_decay = 0`` recovers the
uniform model exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .network import M2HeWNetwork
from .node import NodeSpec
from .topology import Topology

__all__ = [
    "Positions",
    "channel_radius",
    "channel_dependent_adjacency",
    "build_channel_dependent_network",
]

Positions = Mapping[int, Tuple[float, float]]


def channel_radius(
    channel: int,
    num_channels: int,
    base_radius: float,
    range_decay: float,
) -> float:
    """Communication radius of ``channel`` under the linear decay model."""
    if num_channels < 1:
        raise ConfigurationError(f"num_channels must be >= 1, got {num_channels}")
    if not 0 <= channel < num_channels:
        raise ConfigurationError(
            f"channel {channel} outside universal set of size {num_channels}"
        )
    if base_radius <= 0:
        raise ConfigurationError(f"base_radius must be positive, got {base_radius}")
    if not 0.0 <= range_decay < 1.0:
        raise ConfigurationError(
            f"range_decay must be in [0, 1), got {range_decay}"
        )
    if num_channels == 1:
        return base_radius
    return base_radius * (1.0 - range_decay * channel / (num_channels - 1))


def channel_dependent_adjacency(
    positions: Positions,
    num_channels: int,
    base_radius: float,
    range_decay: float,
) -> Dict[int, List[Tuple[int, int]]]:
    """Per-channel unit-disk adjacency with frequency-dependent radii."""
    ids = sorted(positions)
    adjacency: Dict[int, List[Tuple[int, int]]] = {}
    for c in range(num_channels):
        radius = channel_radius(c, num_channels, base_radius, range_decay)
        pairs: List[Tuple[int, int]] = []
        for i, u in enumerate(ids):
            ux, uy = positions[u]
            for v in ids[i + 1 :]:
                vx, vy = positions[v]
                if ((ux - vx) ** 2 + (uy - vy) ** 2) ** 0.5 <= radius:
                    pairs.append((u, v))
        adjacency[c] = pairs
    return adjacency


def build_channel_dependent_network(
    topo: Topology,
    assignment: Mapping[int, Iterable[int]],
    base_radius: float,
    range_decay: float,
) -> M2HeWNetwork:
    """Network with diverse propagation from a geometric topology.

    Args:
        topo: A topology carrying node positions (its own pair list is
            ignored — connectivity is recomputed per channel).
        assignment: Available channel set per node. Channel ids must lie
            in ``range(num_channels)`` where ``num_channels`` is one more
            than the largest assigned channel.
        base_radius: Radius of channel 0 (the lowest frequency).
        range_decay: Fractional radius loss from the lowest to the
            highest channel.
    """
    if topo.positions is None:
        raise ConfigurationError(
            "build_channel_dependent_network requires node positions"
        )
    num_channels = 1 + max(
        (c for channels in assignment.values() for c in channels), default=0
    )
    adjacency = channel_dependent_adjacency(
        topo.positions, num_channels, base_radius, range_decay
    )
    nodes = []
    for nid in range(topo.num_nodes):
        if nid not in assignment:
            raise ConfigurationError(f"channel assignment missing node {nid}")
        nodes.append(
            NodeSpec(
                node_id=nid,
                channels=frozenset(assignment[nid]),
                position=topo.positions.get(nid),
            )
        )
    return M2HeWNetwork(nodes, channel_adjacency=adjacency)
