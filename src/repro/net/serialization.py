"""JSON (de)serialization of network instances.

Experiments record the exact network they ran on; these helpers
round-trip an :class:`~repro.net.network.M2HeWNetwork` through a plain
JSON-compatible dict so instances can be archived alongside results and
reloaded bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..exceptions import NetworkModelError
from .network import M2HeWNetwork
from .node import NodeSpec

__all__ = [
    "FORMAT_VERSION",
    "network_to_dict",
    "network_from_dict",
    "network_to_json",
    "network_from_json",
    "save_network",
    "load_network",
]

FORMAT_VERSION = 1


def network_to_dict(network: M2HeWNetwork) -> Dict[str, Any]:
    """Serialize ``network`` to a JSON-compatible dict."""
    nodes: List[Dict[str, Any]] = []
    for spec in network:
        entry: Dict[str, Any] = {
            "id": spec.node_id,
            "channels": sorted(spec.channels),
        }
        if spec.position is not None:
            entry["position"] = list(spec.position)
        nodes.append(entry)

    if network.is_channel_dependent:
        payload: Dict[str, Any] = {
            "channel_adjacency": {
                str(c): [list(p) for p in pairs]
                for c, pairs in network.channel_adjacency_pairs().items()
            }
        }
    elif network.is_symmetric:
        # Recover the raw radio adjacency from the hearing relation (not
        # from the link set) so that radio-adjacent pairs sharing no
        # channel survive the round trip.
        pairs = sorted(
            (u, v)
            for u in network.node_ids
            for v in network.hears(u)
            if u < v
        )
        payload = {"adjacency": [list(p) for p in pairs]}
    else:
        pairs = sorted(
            (v, u) for u in network.node_ids for v in network.hears(u)
        )
        payload = {"directed_adjacency": [list(p) for p in pairs]}

    return {
        "format_version": FORMAT_VERSION,
        "symmetric": network.is_symmetric,
        "channel_dependent": network.is_channel_dependent,
        "nodes": nodes,
        **payload,
    }


def network_from_dict(data: Dict[str, Any]) -> M2HeWNetwork:
    """Reconstruct a network from :func:`network_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise NetworkModelError(
            f"unsupported network format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    nodes = []
    for entry in data["nodes"]:
        position = tuple(entry["position"]) if "position" in entry else None
        nodes.append(
            NodeSpec(
                node_id=int(entry["id"]),
                channels=frozenset(int(c) for c in entry["channels"]),
                position=position,  # type: ignore[arg-type]
            )
        )
    if data.get("channel_dependent", False):
        channel_adjacency = {
            int(c): [(int(u), int(v)) for u, v in pairs]
            for c, pairs in data["channel_adjacency"].items()
        }
        return M2HeWNetwork(nodes, channel_adjacency=channel_adjacency)
    if data.get("symmetric", True):
        pairs = [(int(u), int(v)) for u, v in data["adjacency"]]
        return M2HeWNetwork(nodes, adjacency=pairs)
    pairs = [(int(u), int(v)) for u, v in data["directed_adjacency"]]
    return M2HeWNetwork(nodes, directed_adjacency=pairs)


def network_to_json(network: M2HeWNetwork) -> str:
    """Compact JSON form of ``network``.

    Used by the parallel campaign executor to ship one realized workload
    per worker chunk: a single flat string pickles far cheaper than the
    nested dict, and the round trip is bit-faithful, so workers rebuild
    exactly the instance the parent realized.
    """
    return json.dumps(
        network_to_dict(network), separators=(",", ":"), sort_keys=True
    )


def network_from_json(text: str) -> M2HeWNetwork:
    """Inverse of :func:`network_to_json`."""
    return network_from_dict(json.loads(text))


def save_network(network: M2HeWNetwork, path: Union[str, Path]) -> None:
    """Write ``network`` to ``path`` as JSON."""
    payload = network_to_dict(network)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_network(path: Union[str, Path]) -> M2HeWNetwork:
    """Load a network previously written by :func:`save_network`."""
    data = json.loads(Path(path).read_text())
    return network_from_dict(data)
