"""Directed links of an M2HeW network.

The paper treats discovery per *directed* link: if ``u`` and ``v`` are
neighbors on some channel, ``u`` discovering ``v`` and ``v`` discovering
``u`` are separate events. The link ``(v, u)`` carries traffic from
transmitter ``v`` to receiver ``u`` and can operate on the channels in
``span(v, u) ⊆ A(v) ∩ A(u)``.

The *span-ratio* of a link is ``|span| / |A(receiver)|`` — the paper's
heterogeneity measure. The minimum span-ratio over all links is ``ρ``;
all running-time bounds scale with ``1/ρ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..exceptions import NetworkModelError

__all__ = ["DirectedLink"]


@dataclass(frozen=True)
class DirectedLink:
    """A directed communication link from ``transmitter`` to ``receiver``.

    Attributes:
        transmitter: Node id of the sending endpoint (``v`` in ``(v, u)``).
        receiver: Node id of the listening endpoint (``u`` in ``(v, u)``).
        span: Channels the link can operate on. Non-empty by construction
            (pairs with empty span are not neighbors on any channel and
            therefore have no link).
        receiver_channel_count: ``|A(receiver)|``, used for the span-ratio.
    """

    transmitter: int
    receiver: int
    span: FrozenSet[int]
    receiver_channel_count: int

    def __post_init__(self) -> None:
        if self.transmitter == self.receiver:
            raise NetworkModelError(f"self-link at node {self.transmitter}")
        if not self.span:
            raise NetworkModelError(
                f"link ({self.transmitter}, {self.receiver}) has empty span"
            )
        if self.receiver_channel_count < len(self.span):
            raise NetworkModelError(
                f"link ({self.transmitter}, {self.receiver}): span size "
                f"{len(self.span)} exceeds |A(receiver)| = {self.receiver_channel_count}"
            )

    @property
    def key(self) -> tuple:
        """``(transmitter, receiver)`` pair identifying this link."""
        return (self.transmitter, self.receiver)

    @property
    def span_ratio(self) -> float:
        """``|span| / |A(receiver)|`` — in ``[1/S, 1]`` (paper, §II)."""
        return len(self.span) / self.receiver_channel_count

    def reverse_key(self) -> tuple:
        """Key of the opposite-direction link."""
        return (self.receiver, self.transmitter)
