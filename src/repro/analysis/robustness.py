"""Robustness analysis: degradation curves under fault injection.

The fault subsystem (:mod:`repro.faults`) turns a static trial into a
family parameterized by *fault intensity* (jamming duty cycle, loss
rate, churn rate, …). This module provides the common post-processing:

* :func:`degradation_curve` — run seeded trials along an intensity axis
  and aggregate coverage / completion per point;
* :func:`degradation_table` — row form for table rendering;
* :func:`is_monotone_non_improving` — sanity check that performance
  does not *improve* as faults intensify (within noise slack);
* :func:`rediscovery_delays` — how long after a spectrum blocker
  departs (a primary user switching off, a jamming burst ending) the
  protocol covers its next link.

Completion times are *censored at the horizon*: an uncompleted trial
contributes its horizon as a lower bound, so the difficulty scalar
stays defined when heavy faults prevent full coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..sim.results import DiscoveryResult

__all__ = [
    "RobustnessPoint",
    "RobustnessTrialFn",
    "aggregate_point",
    "degradation_curve",
    "degradation_table",
    "is_monotone_non_improving",
    "rediscovery_delays",
]

RobustnessTrialFn = Callable[[float, np.random.SeedSequence], DiscoveryResult]


@dataclass(frozen=True)
class RobustnessPoint:
    """Aggregated outcome of all trials at one fault intensity.

    Attributes:
        intensity: The swept fault-intensity value.
        results: The per-trial results.
        mean_coverage: Mean fraction of links covered.
        mean_censored_time: Mean time to full coverage, with uncompleted
            trials censored at their horizon (a lower bound).
        completed_fraction: Fraction of trials that fully completed.
    """

    intensity: float
    results: List[DiscoveryResult]
    mean_coverage: float
    mean_censored_time: float
    completed_fraction: float

    def as_row(self) -> Dict[str, object]:
        """Row form for table rendering."""
        return {
            "intensity": round(self.intensity, 4),
            "trials": len(self.results),
            "completed": round(self.completed_fraction, 3),
            "mean_coverage": round(self.mean_coverage, 4),
            "mean_time": round(self.mean_censored_time, 1),
        }


def aggregate_point(
    intensity: float, results: Sequence[DiscoveryResult]
) -> RobustnessPoint:
    """Aggregate already-run trials into one curve point (for callers
    that execute trials themselves, e.g. pooled benchmark campaigns)."""
    if not results:
        raise ConfigurationError("aggregate_point needs at least one result")
    coverages = [r.coverage_fraction for r in results]
    censored = [
        float(r.completion_time)
        if r.completion_time is not None
        else float(r.horizon)
        for r in results
    ]
    return RobustnessPoint(
        intensity=intensity,
        results=list(results),
        mean_coverage=float(np.mean(coverages)),
        mean_censored_time=float(np.mean(censored)),
        completed_fraction=sum(r.completed for r in results) / len(results),
    )


def degradation_curve(
    intensities: Sequence[float],
    trial_fn: RobustnessTrialFn,
    trials: int,
    base_seed: Optional[int],
) -> List[RobustnessPoint]:
    """Run ``trials`` seeded trials of ``trial_fn`` at every intensity.

    Per-trial seeds derive from ``(base_seed, point index, trial
    index)`` — the :func:`~repro.analysis.sweeps.run_sweep` convention —
    so extending the axis or adding trials never perturbs existing
    points.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not intensities:
        raise ConfigurationError("degradation curve needs at least one point")
    points: List[RobustnessPoint] = []
    for p_idx, intensity in enumerate(intensities):
        results = [
            trial_fn(
                float(intensity),
                np.random.SeedSequence(
                    entropy=base_seed, spawn_key=(p_idx, t_idx)
                ),
            )
            for t_idx in range(trials)
        ]
        points.append(aggregate_point(float(intensity), results))
    return points


def degradation_table(points: Sequence[RobustnessPoint]) -> List[Dict[str, object]]:
    """Rows for :func:`~repro.analysis.tables.format_table`."""
    return [p.as_row() for p in points]


def is_monotone_non_improving(
    points: Sequence[RobustnessPoint],
    coverage_slack: float = 0.02,
    time_slack: float = 0.1,
) -> bool:
    """Check that performance never *improves* as faults intensify.

    Sorted by intensity, each point's mean coverage may exceed its
    predecessor's by at most ``coverage_slack`` (absolute), and its mean
    censored completion time may undercut the predecessor's by at most
    a ``time_slack`` fraction. Slacks absorb trial noise; genuine
    improvement under heavier faults fails the check.
    """
    ordered = sorted(points, key=lambda p: p.intensity)
    for prev, cur in zip(ordered, ordered[1:]):
        if cur.mean_coverage > prev.mean_coverage + coverage_slack:
            return False
        if cur.mean_censored_time < prev.mean_censored_time * (1.0 - time_slack):
            return False
    return True


def rediscovery_delays(result: DiscoveryResult) -> List[Optional[float]]:
    """Delay from each spectrum blocker's departure to the next coverage.

    Reads the fault-event log from ``result.metadata["faults"]`` (the
    synchronous engines record one event per primary-user / jamming
    on-off flip). For every OFF flip at ``t``, the delay is how long
    until the *next* link becomes covered strictly after ``t`` —
    ``None`` when nothing was covered afterwards (already complete, or
    the run ended first). Results without fault events yield ``[]``.
    """
    faults_meta = result.metadata.get("faults")
    events = (
        faults_meta.get("events", ()) if isinstance(faults_meta, dict) else ()
    )
    cover_times = sorted(t for t in result.coverage.values() if t is not None)
    delays: List[Optional[float]] = []
    for event in events:
        if event.get("on"):
            continue
        t_off = float(event["time"])
        later = [t for t in cover_times if t > t_off]
        delays.append(later[0] - t_off if later else None)
    return delays
