"""Paper-bound vs measured comparisons.

Turns a batch of :class:`~repro.sim.results.DiscoveryResult` trials plus
the matching theorem budget into one comparison row: success rate at the
budget, measured completion-time statistics and the bound/measured
ratio. ``EXPERIMENTS.md`` is generated from these rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..sim.results import DiscoveryResult
from .stats import SampleSummary, summarize, wilson_interval

__all__ = [
    "BoundComparison",
    "compare_to_bound",
    "exact_pair_coverage_probability",
    "expected_pair_discovery_slots",
    "success_rate_within",
]


def exact_pair_coverage_probability(
    tx_channels: int,
    rx_channels: int,
    span: int,
    tx_prob: float,
    rx_prob: float,
) -> float:
    """Exact per-slot coverage probability for an isolated pair.

    For a two-node network (no interferers), the link from ``v`` to
    ``u`` is covered in a slot iff both pick the same span channel, ``v``
    transmits and ``u`` listens:

        ``q = span · (tx_prob / |A(v)|) · ((1 − rx_prob) / |A(u)|)``

    This closed form anchors the engines: measured mean discovery time
    must match the geometric expectation ``1/q`` (see
    ``tests/test_property_engines.py``).
    """
    if span < 1 or span > min(tx_channels, rx_channels):
        raise ConfigurationError(
            f"span {span} inconsistent with channel counts "
            f"{tx_channels}/{rx_channels}"
        )
    if not (0.0 < tx_prob <= 1.0) or not (0.0 <= rx_prob < 1.0):
        raise ConfigurationError(
            f"need 0 < tx_prob <= 1 and 0 <= rx_prob < 1, got "
            f"{tx_prob}, {rx_prob}"
        )
    return span * (tx_prob / tx_channels) * ((1.0 - rx_prob) / rx_channels)


def expected_pair_discovery_slots(
    tx_channels: int,
    rx_channels: int,
    span: int,
    tx_prob: float,
    rx_prob: float,
) -> float:
    """Geometric expectation ``1/q`` of the pair coverage time."""
    q = exact_pair_coverage_probability(
        tx_channels, rx_channels, span, tx_prob, rx_prob
    )
    return 1.0 / q


@dataclass(frozen=True)
class BoundComparison:
    """Measured behavior against one theorem's budget.

    Attributes:
        label: Experiment/theorem name.
        bound: The theorem's time budget (slots, frames, or seconds).
        epsilon: Target failure probability of the theorem.
        trials: Number of independent trials.
        successes_within_bound: Trials that completed within ``bound``.
        success_rate: ``successes_within_bound / trials``.
        success_ci: Wilson 95% interval for the success rate.
        meets_guarantee: The ``1 − ε`` guarantee is consistent with the
            measurement (its upper CI edge reaches ``1 − ε``).
        completion: Summary of completion times of completed trials
            (``None`` when no trial completed).
        bound_over_measured_mean: Slack factor — how loose the upper
            bound is relative to mean measured completion.
    """

    label: str
    bound: float
    epsilon: float
    trials: int
    successes_within_bound: int
    success_rate: float
    success_ci: tuple
    meets_guarantee: bool
    completion: Optional[SampleSummary]
    bound_over_measured_mean: Optional[float]

    def as_row(self) -> Dict[str, object]:
        """Row form for table rendering."""
        row: Dict[str, object] = {
            "experiment": self.label,
            "bound": self.bound,
            "target": 1.0 - self.epsilon,
            "trials": self.trials,
            "ok_within_bound": self.successes_within_bound,
            "success_rate": round(self.success_rate, 4),
            "meets_guarantee": self.meets_guarantee,
        }
        if self.completion is not None:
            row["measured_mean"] = round(self.completion.mean, 2)
            row["measured_p90"] = round(self.completion.p90, 2)
            row["measured_max"] = self.completion.maximum
        if self.bound_over_measured_mean is not None:
            row["bound/mean"] = round(self.bound_over_measured_mean, 2)
        return row


def _completion_times(
    results: Sequence[DiscoveryResult], after_all_started: bool
) -> List[float]:
    times = []
    for r in results:
        t = r.completion_after_all_started if after_all_started else r.completion_time
        if t is not None:
            times.append(float(t))
    return times


def success_rate_within(
    results: Sequence[DiscoveryResult],
    bound: float,
    after_all_started: bool = False,
) -> float:
    """Fraction of trials that completed within ``bound``."""
    if not results:
        raise ConfigurationError("no trials supplied")
    ok = 0
    for r in results:
        t = r.completion_after_all_started if after_all_started else r.completion_time
        if t is not None and t <= bound:
            ok += 1
    return ok / len(results)


def compare_to_bound(
    label: str,
    results: Sequence[DiscoveryResult],
    bound: float,
    epsilon: float,
    after_all_started: bool = False,
) -> BoundComparison:
    """Build a :class:`BoundComparison` for one experiment.

    Args:
        label: Name for the row.
        results: Independent trials.
        bound: The theorem's time budget in the results' time unit.
        epsilon: The theorem's failure-probability target.
        after_all_started: Measure completion relative to ``T_s``
            (Theorems 3, 9, 10) instead of absolute time.
    """
    if not results:
        raise ConfigurationError("no trials supplied")
    if bound <= 0:
        raise ConfigurationError(f"bound must be positive, got {bound}")
    successes = 0
    for r in results:
        t = r.completion_after_all_started if after_all_started else r.completion_time
        if t is not None and t <= bound:
            successes += 1
    rate = successes / len(results)
    ci = wilson_interval(successes, len(results))
    times = _completion_times(results, after_all_started)
    completion = summarize(times) if times else None
    slack = (bound / completion.mean) if completion and completion.mean > 0 else None
    return BoundComparison(
        label=label,
        bound=float(bound),
        epsilon=float(epsilon),
        trials=len(results),
        successes_within_bound=successes,
        success_rate=rate,
        success_ci=ci,
        meets_guarantee=ci[1] >= 1.0 - epsilon,
        completion=completion,
        bound_over_measured_mean=slack,
    )
