"""Coverage-progress analysis: how discovery unfolds over time.

A :class:`~repro.sim.results.DiscoveryResult` stores the first-coverage
time of every directed link; this module turns one or many results into

* a **coverage curve** — fraction of links covered by time ``t``;
* a **reliability curve** — empirical probability (across trials) that
  discovery has *completed* by time ``t``, directly comparable to the
  theorems' "within budget w.p. ≥ 1 − ε" statements;
* summary scalars (time to 50 %/90 %/100 % coverage, curve area).

These are the longitudinal views behind every table in EXPERIMENTS.md:
the theorems bound the curves' right tails.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..sim.results import DiscoveryResult
from .stats import percentile

__all__ = [
    "CoverageCurve",
    "coverage_curve",
    "mean_coverage_curve",
    "reliability_curve",
    "time_to_fraction",
]


@dataclass(frozen=True)
class CoverageCurve:
    """A non-decreasing step curve ``t -> fraction``.

    Attributes:
        times: Step positions, strictly increasing.
        fractions: Curve value from ``times[i]`` (inclusive) onward.
    """

    times: Tuple[float, ...]
    fractions: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.fractions):
            raise ConfigurationError("times and fractions must align")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ConfigurationError("times must be strictly increasing")
        if any(b < a - 1e-12 for a, b in zip(self.fractions, self.fractions[1:])):
            raise ConfigurationError("coverage curves are non-decreasing")

    def value_at(self, t: float) -> float:
        """Curve value at time ``t`` (0 before the first step)."""
        idx = bisect.bisect_right(self.times, t) - 1
        if idx < 0:
            return 0.0
        return self.fractions[idx]

    def first_time_reaching(self, fraction: float) -> Optional[float]:
        """Earliest time the curve reaches ``fraction``, or ``None``."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        for t, f in zip(self.times, self.fractions):
            if f >= fraction - 1e-12:
                return t
        return None

    def area_above(self, horizon: float) -> float:
        """``∫₀ᴴ (1 − curve(t)) dt`` — total link-waiting time, lower is
        better; a scalar for comparing protocols' whole curves."""
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        area = 0.0
        prev_t, prev_f = 0.0, 0.0
        for t, f in zip(self.times, self.fractions):
            if t >= horizon:
                break
            area += (t - prev_t) * (1.0 - prev_f)
            prev_t, prev_f = t, f
        area += (horizon - prev_t) * (1.0 - prev_f)
        return area


def coverage_curve(result: DiscoveryResult) -> CoverageCurve:
    """The coverage curve of one run.

    Raises:
        ConfigurationError: For a run with no links (the curve is
            degenerate and comparisons are meaningless).
    """
    if not result.coverage:
        raise ConfigurationError("result tracks no links")
    total = len(result.coverage)
    times = sorted(t for t in result.coverage.values() if t is not None)
    steps: List[Tuple[float, float]] = []
    covered = 0
    for t in times:
        covered += 1
        if steps and steps[-1][0] == t:
            steps[-1] = (t, covered / total)
        else:
            steps.append((t, covered / total))
    return CoverageCurve(
        times=tuple(s[0] for s in steps),
        fractions=tuple(s[1] for s in steps),
    )


def mean_coverage_curve(
    results: Sequence[DiscoveryResult],
    grid: Sequence[float],
) -> CoverageCurve:
    """Average of per-trial coverage curves sampled on ``grid``."""
    if not results:
        raise ConfigurationError("no trials supplied")
    if not grid or any(b <= a for a, b in zip(grid, list(grid)[1:])):
        raise ConfigurationError("grid must be non-empty and increasing")
    curves = [coverage_curve(r) for r in results]
    fractions = tuple(
        sum(c.value_at(t) for c in curves) / len(curves) for t in grid
    )
    return CoverageCurve(times=tuple(float(t) for t in grid), fractions=fractions)


def reliability_curve(
    results: Sequence[DiscoveryResult],
    grid: Sequence[float],
    after_all_started: bool = False,
) -> CoverageCurve:
    """Fraction of trials fully completed by each grid time.

    This is the empirical counterpart of the theorems' success
    probability: at the theorem budget the curve should be ≥ 1 − ε.
    """
    if not results:
        raise ConfigurationError("no trials supplied")
    completions = []
    for r in results:
        t = (
            r.completion_after_all_started
            if after_all_started
            else r.completion_time
        )
        completions.append(t)
    fractions = tuple(
        sum(1 for t in completions if t is not None and t <= g) / len(results)
        for g in grid
    )
    return CoverageCurve(times=tuple(float(g) for g in grid), fractions=fractions)


def time_to_fraction(
    results: Sequence[DiscoveryResult], fraction: float, q: float = 50.0
) -> Optional[float]:
    """Percentile (default median) across trials of the time to reach a
    link-coverage fraction; ``None`` if any trial never reaches it."""
    times = []
    for r in results:
        t = coverage_curve(r).first_time_reaching(fraction)
        if t is None:
            return None
        times.append(t)
    return percentile(times, q)
